//! Vendored, offline subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range and
//! regex-literal strategies, tuple strategies, `collection::{vec,
//! btree_set}`, `option::of`, `sample::select`, `Just` and `prop_oneof!`.
//!
//! Differences from upstream proptest, by design:
//!
//! * no shrinking — a failing case reports its case number and the seed is
//!   derived deterministically from the test name, so failures reproduce;
//! * regex strategies support only the literal/char-class/quantifier subset
//!   used in this workspace (e.g. `"[a-z]{2,10}"`);
//! * the default case count is 64 (upstream: 256) to keep `cargo test`
//!   fast; tests override it per-block with `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

pub mod strategy;

/// Test-runner configuration and plumbing used by the macros.
pub mod test_runner {
    /// Configuration of one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl std::fmt::Display) -> Self {
            TestCaseError {
                message: message.to_string(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The deterministic generator driving a test.
    pub type TestRng = rand::rngs::StdRng;

    /// Creates the deterministic generator for a named test.
    pub fn rng_for_test(name: &str) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

/// Sized-collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (the set may stay smaller when the element strategy cannot
    /// produce enough distinct values).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for a uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Optional-value strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling from fixed pools.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::seq::SliceRandom;

    /// Strategy drawing a uniformly random element of a non-empty slice.
    pub fn select<T: Clone + std::fmt::Debug>(options: &'static [T]) -> Select<T> {
        assert!(!options.is_empty(), "sample::select on an empty slice");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: 'static> {
        options: &'static [T],
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options.choose(rng).expect("non-empty pool").clone()
        }
    }
}

/// The types and macros tests usually glob-import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __err
                    );
                }
            }
        }
    )*};
}
