//! The [`Strategy`] trait and the combinators / base strategies the
//! workspace's tests use. No shrinking — see the crate docs.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over a non-empty list of strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

// ---------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------

/// `&str` patterns act as string strategies, supporting the literal /
/// char-class / `{m,n}` quantifier subset this workspace uses.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .expect("vendored proptest regex: unterminated character class");
        if c == ']' {
            break;
        }
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next();
            if lookahead.peek().is_some() && lookahead.peek() != Some(&']') {
                chars.next();
                let end = chars.next().expect("range end");
                ranges.push((c, end));
                continue;
            }
        }
        ranges.push((c, c));
    }
    assert!(
        !ranges.is_empty(),
        "vendored proptest regex: empty character class"
    );
    Atom::Class(ranges)
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<(usize, usize)> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (lo, hi) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            };
            Some((lo, hi))
        }
        Some('?') => {
            chars.next();
            Some((0, 1))
        }
        Some('*') => {
            chars.next();
            Some((0, 8))
        }
        Some('+') => {
            chars.next();
            Some((1, 8))
        }
        _ => None,
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => parse_class(&mut chars),
            '\\' => Atom::Literal(chars.next().expect("escaped character")),
            other => Atom::Literal(other),
        };
        let (lo, hi) = parse_quantifier(&mut chars).unwrap_or((1, 1));
        let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u32) - (*a as u32) + 1)
                        .sum();
                    let mut pick = rng.gen_range(0..total);
                    for (a, b) in ranges {
                        let span = (*b as u32) - (*a as u32) + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick).expect("valid char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Collection sizes
// ---------------------------------------------------------------------

/// Accepted size arguments for `collection::vec` / `collection::btree_set`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    pub(crate) fn draw(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi_inclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            lo: range.start,
            hi_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        let (lo, hi) = range.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = rng_for_test("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{2,10}", &mut rng);
            assert!((2..=10).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s}");

            let t = Strategy::generate(&"[a-z ]{1,16}", &mut rng);
            assert!((1..=16).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ' '));

            let u = Strategy::generate(&"ab[0-9]c", &mut rng);
            assert_eq!(u.len(), 4);
            assert!(u.starts_with("ab") && u.ends_with('c'));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = rng_for_test("combinators");
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 20);
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..=255, n));
        for _ in 0..50 {
            let v = dependent.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let constant = Just(7u8);
        assert_eq!(constant.generate(&mut rng), 7);
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = rng_for_test("union");
        let union = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let draws: std::collections::BTreeSet<u8> =
            (0..100).map(|_| union.generate(&mut rng)).collect();
        assert_eq!(draws, [1u8, 2].into_iter().collect());
    }
}
