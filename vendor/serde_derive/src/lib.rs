//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde subset in `vendor/serde`.
//!
//! The macros parse the item's token stream directly (no `syn`/`quote` in
//! the offline build environment) and support the shapes this workspace
//! uses:
//!
//! * structs with named fields (including `#[serde(with = "module")]`),
//! * tuple / newtype / unit structs,
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like upstream serde).
//!
//! Generic type parameters and non-`with` serde attributes are rejected
//! with a compile-time panic so unsupported shapes fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    ty: String,
    with: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        types: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Consumes leading outer attributes, returning the `with = "..."` target if
/// a `#[serde(with = "...")]` attribute is among them.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, Option<String>) {
    let mut with = None;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        if let Some(found) = parse_serde_attribute(g.stream()) {
            with = Some(found);
        }
        i += 2;
    }
    (i, with)
}

/// Extracts the `with` target from a `serde(...)` attribute body, panicking
/// on any other serde attribute so unsupported options are not silently
/// ignored.
fn parse_serde_attribute(stream: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return None;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match (args.first(), args.get(1), args.get(2)) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) if key.to_string() == "with" && eq.as_char() == '=' => {
            let raw = lit.to_string();
            Some(raw.trim_matches('"').to_string())
        }
        _ => panic!(
            "vendored serde_derive only supports #[serde(with = \"module\")], got: {}",
            args.iter().map(|t| t.to_string()).collect::<String>()
        ),
    }
}

/// Consumes a `pub` / `pub(...)` visibility prefix.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token slice on top-level commas (tracking `<...>` depth so type
/// arguments don't split).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

/// Parses the body of a braced named-field list: `a: Ty, pub b: Ty, ...`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, with) = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, next);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, got {}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        let mut ty = Vec::new();
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            ty.push(tokens[i].clone());
            i += 1;
        }
        fields.push(Field {
            name,
            ty: tokens_to_string(&ty),
            with,
        });
    }
    fields
}

fn parse_enum_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attributes(&tokens, i);
        i = next;
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, got {}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let parts: Vec<Vec<TokenTree>> =
                    split_top_level(&g.stream().into_iter().collect::<Vec<_>>());
                VariantKind::Tuple(parts.iter().map(|p| tokens_to_string(p)).collect())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (i, _) = skip_attributes(&tokens, 0);
    let mut i = skip_visibility(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let parts: Vec<Vec<TokenTree>> =
                    split_top_level(&g.stream().into_iter().collect::<Vec<_>>())
                        .into_iter()
                        .map(|part| {
                            let (skip, _) = skip_attributes(&part, 0);
                            let vis_end = skip_visibility(&part, skip);
                            part[vis_end..].to_vec()
                        })
                        .collect();
                Input::TupleStruct {
                    name,
                    types: parts.iter().map(|p| tokens_to_string(p)).collect(),
                }
            }
            _ => Input::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_enum_variants(g.stream()),
            },
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn field_serialize_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(path) => format!("{path}::serialize(&{access})"),
        None => format!("::serde::Serialize::serialize(&{access})"),
    }
}

fn field_deserialize_arm(field: &Field) -> String {
    let name = &field.name;
    match &field.with {
        Some(path) => format!(
            "match ::serde::__find(__fields, \"{name}\") {{ \
               ::std::option::Option::Some(__v) => {path}::deserialize(__v)?, \
               ::std::option::Option::None => \
                 return ::std::result::Result::Err(::serde::Error::missing_field(\"{name}\")), \
             }}"
        ),
        None => {
            let ty = &field.ty;
            format!(
                "match ::serde::__find(__fields, \"{name}\") {{ \
                   ::std::option::Option::Some(__v) => \
                     <{ty} as ::serde::Deserialize>::deserialize(__v)?, \
                   ::std::option::Option::None => \
                     <{ty} as ::serde::Deserialize>::missing(\"{name}\")?, \
                 }}"
            )
        }
    }
}

fn generate_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__out.push((\"{}\".to_string(), {}));",
                        f.name,
                        field_serialize_expr(f, &format!("self.{}", f.name))
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize(&self) -> ::serde::Value {{ \
                     let mut __out: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                       ::std::vec::Vec::new(); \
                     {pushes} \
                     ::serde::Value::Object(__out) \
                   }} \
                 }}"
            )
        }
        Input::TupleStruct { name, types } => {
            let body = if types.len() == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..types.len())
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{ \
               fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }} \
             }}"
        ),
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(types) => {
                            let binders: Vec<String> =
                                (0..types.len()).map(|i| format!("__f{i}")).collect();
                            let inner = if types.len() == 1 {
                                "::serde::Serialize::serialize(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\
                                   \"{vname}\".to_string(), {inner})]),",
                                binds = binders.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push((\"{}\".to_string(), {}));",
                                        f.name,
                                        field_serialize_expr(f, f.name.to_string().as_str())
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{ \
                                   let mut __inner: ::std::vec::Vec<(::std::string::String, \
                                     ::serde::Value)> = ::std::vec::Vec::new(); \
                                   {pushes} \
                                   ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                                     ::serde::Value::Object(__inner))]) \
                                 }},",
                                binds = binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize(&self) -> ::serde::Value {{ \
                     match self {{ {arms} }} \
                   }} \
                 }}"
            )
        }
    }
}

fn generate_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{}: {},", f.name, field_deserialize_arm(f)))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize(__v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ \
                     let __fields = __v.as_object().ok_or_else(|| \
                       ::serde::Error::expected(\"object\", \"{name}\"))?; \
                     ::std::result::Result::Ok({name} {{ {inits} }}) \
                   }} \
                 }}"
            )
        }
        Input::TupleStruct { name, types } => {
            let body = if types.len() == 1 {
                let ty = &types[0];
                format!(
                    "::std::result::Result::Ok({name}(\
                       <{ty} as ::serde::Deserialize>::deserialize(__v)?))"
                )
            } else {
                let len = types.len();
                let items: Vec<String> = types
                    .iter()
                    .enumerate()
                    .map(|(i, ty)| {
                        format!("<{ty} as ::serde::Deserialize>::deserialize(&__items[{i}])?")
                    })
                    .collect();
                format!(
                    "let __items = __v.as_array().filter(|a| a.len() == {len}).ok_or_else(|| \
                       ::serde::Error::expected(\"array of {len}\", \"{name}\"))?; \
                     ::std::result::Result::Ok({name}({items}))",
                    items = items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize(__v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{ \
               fn deserialize(_v: &::serde::Value) -> \
                   ::std::result::Result<Self, ::serde::Error> {{ \
                 ::std::result::Result::Ok({name}) \
               }} \
             }}"
        ),
        Input::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(types) if types.len() == 1 => {
                            let ty = &types[0];
                            Some(format!(
                                "if let ::std::option::Option::Some(__inner) = __v.get(\"{vname}\") {{ \
                                   return ::std::result::Result::Ok({name}::{vname}(\
                                     <{ty} as ::serde::Deserialize>::deserialize(__inner)?)); \
                                 }}"
                            ))
                        }
                        VariantKind::Tuple(types) => {
                            let len = types.len();
                            let items: Vec<String> = types
                                .iter()
                                .enumerate()
                                .map(|(i, ty)| {
                                    format!(
                                        "<{ty} as ::serde::Deserialize>::deserialize(&__items[{i}])?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "if let ::std::option::Option::Some(__inner) = __v.get(\"{vname}\") {{ \
                                   let __items = __inner.as_array()\
                                     .filter(|a| a.len() == {len}).ok_or_else(|| \
                                     ::serde::Error::expected(\"array of {len}\", \"{name}\"))?; \
                                   return ::std::result::Result::Ok({name}::{vname}({items})); \
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{}: {},", f.name, field_deserialize_arm(f)))
                                .collect();
                            Some(format!(
                                "if let ::std::option::Option::Some(__inner) = __v.get(\"{vname}\") {{ \
                                   let __fields = __inner.as_object().ok_or_else(|| \
                                     ::serde::Error::expected(\"object\", \"{name}::{vname}\"))?; \
                                   return ::std::result::Result::Ok({name}::{vname} {{ {inits} }}); \
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize(__v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ \
                     if let ::serde::Value::Str(__s) = __v {{ \
                       return match __s.as_str() {{ \
                         {unit_arms} \
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                           format!(\"unknown variant `{{__other}}` of {name}\"))), \
                       }}; \
                     }} \
                     {data_arms} \
                     ::std::result::Result::Err(::serde::Error::expected(\
                       \"variant of\", \"{name}\")) \
                   }} \
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
