//! Vendored, offline subset of the `rand` 0.8 API.
//!
//! Provides [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`] — the surface this workspace uses. `StdRng` is a
//! xoshiro256++ generator seeded through SplitMix64, so seeded sequences
//! are deterministic across platforms (but differ from upstream rand's
//! ChaCha-based `StdRng`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniformly random value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw; the bias is < span / 2^64, negligible for the
                // span sizes this workspace uses.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws a uniformly random value of `T`.
    #[allow(clippy::wrong_self_convention)]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// `amount` distinct elements in random order (fewer when the slice
        /// is shorter than `amount`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up random
            // and distinct.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probabilities_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let pool = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(pool.contains(pool.choose(&mut rng).unwrap()));
        }
        let mut deck: Vec<u32> = (0..52).collect();
        deck.shuffle(&mut rng);
        let mut sorted = deck.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..52).collect::<Vec<_>>());
    }
}
