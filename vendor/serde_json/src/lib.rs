//! Vendored, offline subset of `serde_json`: renders and parses the
//! [`serde::Value`] data model of the vendored serde crate.
//!
//! Supports `to_string`, `to_string_pretty`, `from_str`, `to_value` and
//! `from_value` — the surface this workspace uses. Non-finite floats render
//! as `null` (upstream errors instead); see `vendor/serde/src/lib.rs` for
//! the other documented divergences.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while rendering or parsing JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Result alias used by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Lowers a value into the serde data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Rebuilds a typed value from the serde data model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::deserialize(value).map_err(Error::from)
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    from_value(&value)
}

/// Parses JSON text into the untyped data model.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_break(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_break(out, indent, level);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream serde_json refuses non-finite floats; rendering null keeps
        // report writing infallible.
        out.push_str("null");
        return;
    }
    let formatted = f.to_string();
    out.push_str(&formatted);
    if !formatted.contains('.') && !formatted.contains('e') && !formatted.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse(&mut self) -> Result<Value> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        let value = match self.peek() {
            Some(b'n') => self.consume_literal("null", Value::Null),
            Some(b't') => self.consume_literal("true", Value::Bool(true)),
            Some(b'f') => self.consume_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }?;
        self.depth -= 1;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(Error::new(format!("invalid escape at {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-17", "1.5", "\"hi\\n\""] {
            let value = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &value, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let value = parse_value(text).unwrap();
        assert_eq!(to_string(&value).unwrap(), text);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse_value(&pretty).unwrap(), value);
    }

    #[test]
    fn floats_always_carry_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn unicode_escapes() {
        let value = parse_value(r#""A😀""#).unwrap();
        assert_eq!(value, Value::Str("A😀".to_string()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("[1,").is_err());
        assert!(parse_value("{\"a\" 1}").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<Option<u32>> = from_str("[1,null,3]").unwrap();
        assert_eq!(v, vec![Some(1), None, Some(3)]);
        assert_eq!(to_string(&v).unwrap(), "[1,null,3]");
    }
}
