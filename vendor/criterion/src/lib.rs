//! Vendored, offline subset of the `criterion` benchmarking API.
//!
//! Implements the surface the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box`, `criterion_group!` and
//! `criterion_main!` — with a simple fixed-budget measurement loop instead
//! of criterion's statistical machinery: each benchmark warms up briefly,
//! then runs batches of iterations until a time budget is spent, and the
//! mean iteration time is printed. When the binary is invoked with
//! `--test` (as `cargo test --benches` does), every benchmark runs exactly
//! one iteration so the run stays fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimizer from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher<'a> {
    budget: Duration,
    test_mode: bool,
    report: &'a mut Vec<(String, Duration, u64)>,
    label: String,
}

impl Bencher<'_> {
    /// Measures the mean wall-clock time of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.report.push((self.label.clone(), Duration::ZERO, 1));
            return;
        }
        // Warm-up: one untimed call (also gives a duration estimate).
        let warmup_start = Instant::now();
        black_box(routine());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));
        let target_iters = (self.budget.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.report
            .push((self.label.clone(), elapsed, target_iters as u64));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistical sampling with this; the vendored subset
    /// scales its time budget instead (smaller sample size → smaller
    /// budget).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.budget = Duration::from_millis((samples as u64 * 10).clamp(20, 2_000));
        self
    }

    /// Benches a closure under a name.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(label, |b| f(b));
        self
    }

    /// Benches a closure over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(label, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the vendored subset).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
    test_mode: bool,
    results: Vec<(String, Duration, u64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("IKRQ_BENCH_TEST_MODE").is_some();
        Criterion {
            budget: Duration::from_millis(300),
            test_mode,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, label: String, mut f: F) {
        let mut bencher = Bencher {
            budget: self.budget,
            test_mode: self.test_mode,
            report: &mut self.results,
            label: label.clone(),
        };
        f(&mut bencher);
        if let Some((name, elapsed, iters)) = self.results.last() {
            if self.test_mode {
                println!("bench {name}: ok (test mode)");
            } else {
                let mean = elapsed.as_secs_f64() / (*iters).max(1) as f64;
                println!("bench {name}: {:.3} ms/iter ({iters} iters)", mean * 1e3);
            }
        } else {
            println!("bench {label}: no measurement recorded");
        }
    }

    /// Benches a standalone closure.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(name.to_string(), |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Prints a closing summary.
    pub fn final_summary(&self) {
        println!("{} benchmark(s) completed", self.results.len());
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
