//! Vendored, offline subset of the `bytes` crate: [`Bytes`], [`BytesMut`]
//! and the little-endian [`Buf`]/[`BufMut`] accessors this workspace uses.
//!
//! `Bytes` is a cheaply-cloneable view into shared immutable storage;
//! reading through [`Buf`] advances the view without copying.

#![forbid(unsafe_code)]

use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Shared immutable byte storage with a movable read window.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copies a slice into owned shared storage.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// The bytes currently visible through the window.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Length of the remaining window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window sharing the same storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the window into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let end = vec.len();
        Bytes {
            data: vec.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Write-side accessors (little-endian where applicable).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

/// Read-side accessors (little-endian where applicable). Reading advances
/// the buffer; all accessors panic on underflow like upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `remaining >= dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Splits off the next `len` bytes without copying the storage.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32;

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        self.start += n;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        out
    }

    fn get_u8(&mut self) -> u8 {
        u8::from_le_bytes(self.take_array())
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = Bytes::copy_from_slice(&self[..len]);
        *self = &self[len..];
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        i32::from_le_bytes(raw)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        i64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        f64::from_le_bytes(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_i32_le(-5);
        buf.put_f64_le(2.5);
        buf.put_slice(b"abc");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 1 + 2 + 4 + 4 + 8 + 3);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 513);
        assert_eq!(bytes.get_u32_le(), 70_000);
        assert_eq!(bytes.get_i32_le(), -5);
        assert_eq!(bytes.get_f64_le(), 2.5);
        let tail = bytes.copy_to_bytes(3);
        assert_eq!(tail.as_slice(), b"abc");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn equality_and_hashing_use_the_window() {
        let a = Bytes::from(vec![1, 2, 3]);
        let mut b = Bytes::from(vec![0, 1, 2, 3]);
        b.advance(1);
        assert_eq!(a, b);
        let mut set = std::collections::HashMap::new();
        set.insert(a, 1.0f64);
        assert!(set.contains_key(&b));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }
}
