//! The unix [`Poller`]: the epoll backend (Linux), the portable
//! `poll(2)` backend, and the shared self-pipe waker.

use crate::sys;
use crate::{timeout_millis, Backend, Event, Interest, Token};
use std::collections::BTreeMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::Mutex;
use std::time::Duration;

/// The token value reserved for the internal waker pipe; never
/// reported to callers.
const NOTIFY_TOKEN: Token = usize::MAX;

/// Upper bound on events harvested per `epoll_wait` call. Readiness is
/// level-triggered, so anything past the batch is simply reported by
/// the next call — no starvation, just batching.
const EVENT_BATCH: usize = 1024;

/// A readiness multiplexer over registered file descriptors. See the
/// crate docs for the API contract and edge cases.
#[derive(Debug)]
pub struct Poller {
    backend: BackendImpl,
    /// Self-pipe read/write ends, both non-blocking and cloexec; the
    /// read end is registered in the backend under [`NOTIFY_TOKEN`].
    notify_read: RawFd,
    notify_write: RawFd,
}

#[derive(Debug)]
enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    Poll {
        /// fd → (token, interest); a BTreeMap so wait order (and thus
        /// event order) is deterministic.
        registered: Mutex<BTreeMap<RawFd, (Token, Interest)>>,
    },
}

impl Poller {
    /// A poller on the platform's preferred backend (epoll on Linux,
    /// `poll(2)` elsewhere).
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(Backend::default_for_platform())
    }

    /// A poller on an explicit backend. Requesting [`Backend::Epoll`]
    /// off Linux reports [`io::ErrorKind::Unsupported`].
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let backend = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => {
                let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
                BackendImpl::Epoll { epfd }
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "the epoll backend requires Linux",
                ))
            }
            Backend::Poll => BackendImpl::Poll {
                registered: Mutex::new(BTreeMap::new()),
            },
        };
        let (notify_read, notify_write) = new_pipe().inspect_err(|_| {
            #[cfg(target_os = "linux")]
            if let BackendImpl::Epoll { epfd } = &backend {
                unsafe { sys::close(*epfd) };
            }
        })?;
        let poller = Poller {
            backend,
            notify_read,
            notify_write,
        };
        poller.add(notify_read, NOTIFY_TOKEN, Interest::READABLE)?;
        Ok(poller)
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { .. } => Backend::Epoll,
            BackendImpl::Poll { .. } => Backend::Poll,
        }
    }

    /// Registers a descriptor under `token`. Registering an fd twice is
    /// an error (`EEXIST` on epoll; rejected to match on the fallback);
    /// use [`Poller::modify`].
    pub fn add(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                let mut event = sys::epoll_event {
                    events: epoll_bits(interest),
                    data: token as u64,
                };
                sys::cvt(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut event) })?;
                Ok(())
            }
            BackendImpl::Poll { registered } => {
                let mut registered = registered.lock().expect("netpoll registration lock");
                if registered.contains_key(&fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "descriptor is already registered",
                    ));
                }
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Re-arms an already-registered descriptor with a new token and/or
    /// interest.
    pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                let mut event = sys::epoll_event {
                    events: epoll_bits(interest),
                    data: token as u64,
                };
                sys::cvt(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut event) })?;
                Ok(())
            }
            BackendImpl::Poll { registered } => {
                let mut registered = registered.lock().expect("netpoll registration lock");
                match registered.get_mut(&fd) {
                    Some(entry) => {
                        *entry = (token, interest);
                        Ok(())
                    }
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "descriptor is not registered",
                    )),
                }
            }
        }
    }

    /// Removes a descriptor. Call this *before* closing the fd (see the
    /// crate docs).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                // The event pointer is unused for DEL on modern kernels
                // but must be non-null for pre-2.6.9 compatibility.
                let mut event = sys::epoll_event { events: 0, data: 0 };
                sys::cvt(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut event) })?;
                Ok(())
            }
            BackendImpl::Poll { registered } => {
                let mut registered = registered.lock().expect("netpoll registration lock");
                match registered.remove(&fd) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "descriptor is not registered",
                    )),
                }
            }
        }
    }

    /// Blocks until at least one registered descriptor is ready, a
    /// [`notify`](Poller::notify) arrives, or `timeout` passes (`None`
    /// blocks forever). Ready descriptors are appended to `events`
    /// (which is cleared first); the return value reports whether a
    /// notification was consumed. `EINTR` returns `Ok(false)` with no
    /// events, like a timeout.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        events.clear();
        let mut notified = false;
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                let mut buffer = [sys::epoll_event { events: 0, data: 0 }; EVENT_BATCH];
                let count = unsafe {
                    sys::epoll_wait(
                        *epfd,
                        buffer.as_mut_ptr(),
                        EVENT_BATCH as sys::c_int,
                        timeout_millis(timeout),
                    )
                };
                let count = match sys::cvt(count) {
                    Ok(count) => count as usize,
                    Err(error) if error.kind() == io::ErrorKind::Interrupted => 0,
                    Err(error) => return Err(error),
                };
                for raw in &buffer[..count] {
                    // A packed struct's fields must be copied out, not
                    // referenced.
                    let (bits, data) = (raw.events, raw.data);
                    if data as usize == NOTIFY_TOKEN {
                        notified = true;
                        self.drain_notify();
                        continue;
                    }
                    events.push(Event {
                        token: data as usize,
                        readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        closed: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                        error: bits & sys::EPOLLERR != 0,
                    });
                }
            }
            BackendImpl::Poll { registered } => {
                // Snapshot the registration set so other threads can
                // add/delete while this thread sleeps in poll(). A
                // descriptor deleted mid-wait can still produce one
                // stale event — the documented edge case.
                let mut fds: Vec<sys::pollfd> = {
                    let registered = registered.lock().expect("netpoll registration lock");
                    std::iter::once(sys::pollfd {
                        fd: self.notify_read,
                        events: sys::POLLIN,
                        revents: 0,
                    })
                    .chain(registered.iter().filter_map(|(&fd, &(token, interest))| {
                        (token != NOTIFY_TOKEN).then_some(sys::pollfd {
                            fd,
                            events: poll_bits(interest),
                            revents: 0,
                        })
                    }))
                    .collect()
                };
                let count = unsafe {
                    sys::poll(
                        fds.as_mut_ptr(),
                        fds.len() as sys::nfds_t,
                        timeout_millis(timeout),
                    )
                };
                match sys::cvt(count) {
                    Ok(_) => {}
                    Err(error) if error.kind() == io::ErrorKind::Interrupted => {
                        return Ok(false);
                    }
                    Err(error) => return Err(error),
                }
                if fds[0].revents != 0 {
                    notified = true;
                    self.drain_notify();
                }
                let registered = registered.lock().expect("netpoll registration lock");
                for slot in &fds[1..] {
                    if slot.revents == 0 {
                        continue;
                    }
                    // Re-resolve the token: registration may have
                    // changed while poll() slept.
                    let Some(&(token, _)) = registered.get(&slot.fd) else {
                        continue;
                    };
                    events.push(Event {
                        token,
                        readable: slot.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                        writable: slot.revents & sys::POLLOUT != 0,
                        closed: slot.revents & sys::POLLHUP != 0,
                        error: slot.revents & (sys::POLLERR | sys::POLLNVAL) != 0,
                    });
                }
            }
        }
        Ok(notified)
    }

    /// Wakes the thread blocked in [`wait`](Poller::wait) (or the next
    /// one to call it). Notifications coalesce: any number of calls
    /// before a wait produce one wake-up. Never blocks.
    pub fn notify(&self) -> io::Result<()> {
        let byte = 1u8;
        let wrote = unsafe { sys::write(self.notify_write, &byte, 1) };
        if wrote < 0 {
            let error = io::Error::last_os_error();
            // A full pipe already guarantees a pending wake-up.
            if error.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(error);
        }
        Ok(())
    }

    /// Consumes pending notification bytes (the pipe is non-blocking,
    /// so this never sleeps).
    fn drain_notify(&self) {
        let mut sink = [0u8; 64];
        loop {
            let got = unsafe { sys::read(self.notify_read, sink.as_mut_ptr(), sink.len()) };
            if got <= 0 {
                break;
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let BackendImpl::Epoll { epfd } = &self.backend {
            unsafe { sys::close(*epfd) };
        }
        unsafe {
            sys::close(self.notify_read);
            sys::close(self.notify_write);
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_bits(interest: Interest) -> u32 {
    let mut bits = sys::EPOLLRDHUP;
    if interest.is_readable() {
        bits |= sys::EPOLLIN;
    }
    if interest.is_writable() {
        bits |= sys::EPOLLOUT;
    }
    bits
}

fn poll_bits(interest: Interest) -> sys::c_short {
    let mut bits = 0;
    if interest.is_readable() {
        bits |= sys::POLLIN;
    }
    if interest.is_writable() {
        bits |= sys::POLLOUT;
    }
    bits
}

/// A non-blocking, close-on-exec pipe: `(read_end, write_end)`.
fn new_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as sys::c_int; 2];
    sys::cvt(unsafe { sys::pipe(fds.as_mut_ptr()) })?;
    for fd in fds {
        let configure = (|| -> io::Result<()> {
            let flags = sys::cvt(unsafe { sys::fcntl(fd, sys::F_GETFL, 0) })?;
            sys::cvt(unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) })?;
            sys::cvt(unsafe { sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC) })?;
            Ok(())
        })();
        if let Err(error) = configure {
            unsafe {
                sys::close(fds[0]);
                sys::close(fds[1]);
            }
            return Err(error);
        }
    }
    Ok((fds[0], fds[1]))
}
