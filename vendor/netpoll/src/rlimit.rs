//! `RLIMIT_NOFILE` helpers: querying and raising the open-file limit,
//! so a process holding tens of thousands of sockets does not die on
//! fd exhaustion with the distribution-default soft limit (often 1024).

use crate::sys;
use std::io;

/// Outcome of [`raise_nofile_limit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NofileLimit {
    /// The soft limit before the raise.
    pub previous_soft: u64,
    /// The effective soft limit after the raise.
    pub soft: u64,
    /// The hard limit (the ceiling; raising past it needs privilege
    /// the process does not have).
    pub hard: u64,
}

impl NofileLimit {
    /// Whether the call actually changed the soft limit.
    pub fn raised(&self) -> bool {
        self.soft != self.previous_soft
    }
}

/// The current `(soft, hard)` `RLIMIT_NOFILE` of the process.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut limit = sys::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    sys::cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut limit) })?;
    Ok((limit.rlim_cur, limit.rlim_max))
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and reports the
/// effective limits. A no-op (still `Ok`) when the soft limit already
/// equals the hard one.
///
/// On macOS the kernel rejects soft limits above `kern.maxfilesperproc`
/// even when the hard limit reads `RLIM_INFINITY`, so the target is
/// clamped to the traditional `OPEN_MAX` (10240) there.
pub fn raise_nofile_limit() -> io::Result<NofileLimit> {
    let (soft, hard) = nofile_limit()?;
    let target = if cfg!(target_os = "macos") {
        hard.min(10_240)
    } else {
        hard
    };
    if target <= soft {
        return Ok(NofileLimit {
            previous_soft: soft,
            soft,
            hard,
        });
    }
    let request = sys::rlimit {
        rlim_cur: target,
        rlim_max: hard,
    };
    sys::cvt(unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &request) })?;
    let (soft_after, hard_after) = nofile_limit()?;
    Ok(NofileLimit {
        previous_soft: soft,
        soft: soft_after,
        hard: hard_after,
    })
}
