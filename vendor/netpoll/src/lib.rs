//! Offline vendored readiness-polling shim (mio-style API subset).
//!
//! The workspace has no crates.io access, so this crate provides the
//! small slice of a readiness library that `ikrq-server`'s reactor
//! needs, over raw libc externs (no `libc` crate either):
//!
//! * [`Poller`] — `add` / `modify` / `delete` file descriptors with a
//!   [`Token`] and an [`Interest`], then block in [`Poller::wait`] until
//!   some of them become ready or a timeout passes. One `wait`-ing
//!   thread multiplexes any number of descriptors in O(ready), not
//!   O(registered) (on the epoll backend).
//! * [`Poller::notify`] — wake a blocked `wait` from another thread
//!   (self-pipe; no descriptor of the caller involved).
//! * [`nofile_limit`] / [`raise_nofile_limit`] — query and raise the
//!   process `RLIMIT_NOFILE` soft limit toward the hard limit, so
//!   holding tens of thousands of sockets does not die on fd
//!   exhaustion.
//!
//! # Backends
//!
//! * **Epoll** (Linux): `epoll_create1` / `epoll_ctl` / `epoll_wait`,
//!   level-triggered. The default on Linux.
//! * **Poll** (portable fallback, any unix): `poll(2)` over a snapshot
//!   of the registered set — O(registered) per wait, but it builds and
//!   behaves identically, so non-Linux dev boxes still work and the
//!   Linux CI can exercise both backends. Selected with
//!   [`Poller::with_backend`].
//!
//! On non-unix targets the crate still compiles but [`Poller::new`]
//! returns [`std::io::ErrorKind::Unsupported`]; callers are expected to
//! fall back to non-reactor code paths.
//!
//! # Documented edge cases
//!
//! * Registration is **level-triggered**: a descriptor with unread data
//!   is reported on every `wait` until it is read or deleted. The
//!   intended pattern (and what the reactor does) is delete-on-ready:
//!   take the descriptor out of the poller before handing it to a
//!   worker.
//! * **Delete before close.** Closing a registered descriptor without
//!   [`Poller::delete`] leaves a stale entry on the poll backend (the
//!   next `wait` reports it as `error`) — and on the epoll backend the
//!   kernel auto-removes the entry only once the *description* has no
//!   other handles (`dup`/fork can keep it alive). Always delete first.
//! * A peer that closed or reset shows up as `readable` and/or
//!   `closed`/`error` — reading the descriptor yields the EOF or error.
//!   Hangup conditions are always reported, even though only
//!   read/write interest can be requested.
//! * `wait` interrupted by a signal (`EINTR`) returns `Ok` with no
//!   events, like a timeout — callers loop.
//! * Timeouts are rounded **up** to the backend's millisecond
//!   resolution, so a 100 µs timeout cannot spin the CPU.
//!
//! Upstream divergences (this is a subset, not mio): no edge-triggered
//! mode, no oneshot, no `Waker` type (the waker is built into the
//! poller), unix only.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(not(unix))]
use std::io;
#[cfg(unix)]
use std::time::Duration;

#[cfg(unix)]
mod sys;
#[cfg(unix)]
mod unix_impl;
#[cfg(unix)]
pub use unix_impl::Poller;

#[cfg(unix)]
mod rlimit;
#[cfg(unix)]
pub use rlimit::{nofile_limit, raise_nofile_limit, NofileLimit};

/// Caller-chosen identifier carried by a registration and handed back
/// on its [`Event`]s. [`Token::MAX`](usize::MAX) is reserved for the
/// poller's internal waker.
pub type Token = usize;

/// What to watch a descriptor for.
///
/// Error and hangup conditions are always watched and reported; only
/// the read/write interest is selectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the descriptor becomes readable (data, EOF, or a
    /// pending error that a read would surface).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the descriptor becomes writable.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether read interest is included.
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether write interest is included.
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: Token,
    /// A read would not block (data, EOF, or an error to collect).
    pub readable: bool,
    /// A write would not block.
    pub writable: bool,
    /// The peer hung up (EPOLLHUP/EPOLLRDHUP/POLLHUP); a read yields
    /// whatever data remains, then EOF.
    pub closed: bool,
    /// An error condition is pending on the descriptor.
    pub error: bool,
}

/// Which readiness mechanism a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) waits, the production backend.
    Epoll,
    /// Portable `poll(2)` — O(registered) waits, the fallback backend.
    Poll,
}

impl Backend {
    /// The preferred backend of the current platform.
    pub fn default_for_platform() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Poll
        }
    }
}

/// Stub poller so the crate (and its dependents) still build on
/// non-unix targets; every constructor reports `Unsupported`.
#[cfg(not(unix))]
#[derive(Debug)]
pub struct Poller {
    _private: (),
}

#[cfg(not(unix))]
impl Poller {
    /// Unsupported on this platform.
    pub fn new() -> io::Result<Poller> {
        Err(unsupported())
    }

    /// Unsupported on this platform.
    pub fn with_backend(_backend: Backend) -> io::Result<Poller> {
        Err(unsupported())
    }
}

#[cfg(not(unix))]
fn unsupported() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "netpoll requires a unix platform",
    )
}

/// Rounds a timeout up to whole milliseconds for the syscall interface
/// (`None` means block forever). Rounding *up* matters: a sub-ms
/// timeout truncated to 0 would turn a blocking wait into a busy spin.
#[cfg(unix)]
fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(duration) => {
            let millis = duration.as_millis();
            let rounded = if duration.subsec_nanos() % 1_000_000 != 0 {
                millis + 1
            } else {
                millis
            };
            rounded.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    /// A connected TCP pair — real descriptors for readiness tests.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn register_wake_deregister_round_trip() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            assert_eq!(poller.backend(), backend);
            let (mut client, server) = tcp_pair();
            poller
                .add(server.as_raw_fd(), 7, Interest::READABLE)
                .unwrap();

            // Quiet socket: the wait times out with no events.
            let mut events = Vec::new();
            let notified = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!notified, "{backend:?}");
            assert!(events.is_empty(), "{backend:?}: {events:?}");

            // Bytes arrive: the wait reports the token readable.
            client.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Deregistered: the same readable socket no longer reports.
            poller.delete(server.as_raw_fd()).unwrap();
            let notified = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!notified);
            assert!(events.is_empty(), "{backend:?}: {events:?}");
        }
    }

    #[test]
    fn level_triggered_until_drained() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut client, mut server) = tcp_pair();
            poller
                .add(server.as_raw_fd(), 1, Interest::READABLE)
                .unwrap();
            client.write_all(b"abc").unwrap();

            let mut events = Vec::new();
            for _ in 0..2 {
                poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .unwrap();
                assert_eq!(events.len(), 1, "{backend:?} re-reports until read");
                assert!(events[0].readable);
            }
            let mut sink = [0u8; 8];
            let n = server.read(&mut sink).unwrap();
            assert_eq!(n, 3);
            let notified = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!notified);
            assert!(events.is_empty(), "{backend:?} drained socket is quiet");
        }
    }

    #[test]
    fn peer_hangup_is_reported_readable() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (client, server) = tcp_pair();
            poller
                .add(server.as_raw_fd(), 3, Interest::READABLE)
                .unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            // A clean FIN surfaces as readable (read returns 0) and/or
            // an explicit closed flag, depending on the backend.
            assert!(
                events[0].readable || events[0].closed,
                "{backend:?}: {:?}",
                events[0]
            );
        }
    }

    #[test]
    fn modify_switches_interest() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut client, server) = tcp_pair();
            // Watch for writable first: a fresh socket's send buffer has
            // room, so this fires immediately.
            poller
                .add(server.as_raw_fd(), 9, Interest::WRITABLE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(events[0].writable);

            // Switch to readable-only: quiet until bytes arrive.
            poller
                .modify(server.as_raw_fd(), 9, Interest::READABLE)
                .unwrap();
            let notified = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!notified);
            assert!(events.is_empty(), "{backend:?}: {events:?}");
            client.write_all(b"y").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1);
            assert!(events[0].readable && !events[0].writable, "{backend:?}");
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for backend in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(backend).unwrap());
            let waker = std::sync::Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Vec::new();
            let started = Instant::now();
            let notified = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert!(notified, "{backend:?} must report the notify");
            assert!(events.is_empty());
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "{backend:?} wait did not wake on notify"
            );
            handle.join().unwrap();

            // The notification is consumed: the next wait times out.
            let notified = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!notified, "{backend:?} notify must be one-shot");

            // Coalescing: many notifies before one wait wake it once.
            for _ in 0..100 {
                poller.notify().unwrap();
            }
            let notified = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(notified);
            let notified = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!notified, "{backend:?} notifications must coalesce");
        }
    }

    #[test]
    fn wait_times_out_close_to_the_requested_duration() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let mut events = Vec::new();
            let started = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(60)))
                .unwrap();
            let elapsed = started.elapsed();
            assert!(
                elapsed >= Duration::from_millis(50),
                "{backend:?} returned early: {elapsed:?}"
            );
            assert!(
                elapsed < Duration::from_secs(5),
                "{backend:?} overslept: {elapsed:?}"
            );
        }
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_to_zero() {
        assert_eq!(timeout_millis(None), -1);
        assert_eq!(timeout_millis(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_millis(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_millis(5))), 5);
        assert_eq!(
            timeout_millis(Some(Duration::from_micros(5_200))),
            6,
            "partial milliseconds round up"
        );
        assert_eq!(timeout_millis(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }

    #[test]
    fn many_registrations_wake_only_the_ready_one() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let mut pairs = Vec::new();
            for token in 0..64 {
                let (client, server) = tcp_pair();
                poller
                    .add(server.as_raw_fd(), token, Interest::READABLE)
                    .unwrap();
                pairs.push((client, server));
            }
            pairs[17].0.write_all(b"!").unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: {events:?}");
            assert_eq!(events[0].token, 17);
        }
    }

    #[test]
    fn nofile_limit_is_queryable_and_raisable() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        let raised = raise_nofile_limit().unwrap();
        assert_eq!(raised.hard, hard);
        assert_eq!(raised.soft, hard, "soft must reach the hard limit");
        let (soft_after, _) = nofile_limit().unwrap();
        assert_eq!(soft_after, hard);
        // Idempotent.
        let again = raise_nofile_limit().unwrap();
        assert_eq!(again.soft, raised.soft);
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE.add(Interest::WRITABLE);
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
