//! Raw libc externs and the constants this crate needs. The build
//! environment has no `libc` crate, so the handful of symbols are
//! declared here directly against the platform C library (which the
//! Rust standard library already links).
//!
//! Everything below is unix-only; the constants carry per-OS `cfg`s
//! where the ABIs diverge (Linux vs the BSD family).

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_short = i16;
#[cfg(not(target_os = "linux"))]
pub type c_uint = u32;

/// `nfds_t` of `poll(2)`: `unsigned long` on Linux/glibc/musl,
/// `unsigned int` on the BSDs and macOS.
#[cfg(target_os = "linux")]
pub type nfds_t = core::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
pub type nfds_t = c_uint;

// --- poll(2), the portable backend -----------------------------------

pub const POLLIN: c_short = 0x001;
pub const POLLOUT: c_short = 0x004;
pub const POLLERR: c_short = 0x008;
pub const POLLHUP: c_short = 0x010;
pub const POLLNVAL: c_short = 0x020;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

// --- epoll(7), the Linux backend --------------------------------------

#[cfg(target_os = "linux")]
pub const EPOLL_CLOEXEC: c_int = 0o2000000;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;
#[cfg(target_os = "linux")]
pub const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86-64 (and x32) the kernel
/// declares it packed so the 64-bit data field sits at offset 4; other
/// architectures use natural alignment. Getting this wrong corrupts
/// every token the kernel hands back.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

// --- fcntl(2) flags for the self-pipe ---------------------------------

pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;
pub const F_SETFD: c_int = 2;
pub const FD_CLOEXEC: c_int = 1;
#[cfg(target_os = "linux")]
pub const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
pub const O_NONBLOCK: c_int = 0x0004;

// --- getrlimit(2) ------------------------------------------------------

/// `RLIMIT_NOFILE`: 7 on Linux, 8 on the BSD family (incl. macOS).
#[cfg(target_os = "linux")]
pub const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
pub const RLIMIT_NOFILE: c_int = 8;

/// `rlim_t` is a 64-bit quantity on every supported target (glibc and
/// musl use `unsigned long` with LFS on by default in Rust targets;
/// Darwin uses `rlim_t = __uint64_t`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct rlimit {
    pub rlim_cur: u64,
    pub rlim_max: u64,
}

extern "C" {
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn pipe(fds: *mut c_int) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    pub fn close(fd: c_int) -> c_int;
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
}

/// `-1` from a syscall → the `errno`-carrying `io::Error`.
pub fn cvt(result: c_int) -> std::io::Result<c_int> {
    if result < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(result)
    }
}
