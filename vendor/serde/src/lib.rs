//! Vendored, offline subset of `serde`.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this crate provides the slice of the serde surface the workspace actually
//! uses: the `Serialize` / `Deserialize` traits, the derive macros, and a
//! self-describing [`Value`] data model that `serde_json` (also vendored)
//! renders and parses.
//!
//! Differences from upstream serde, by design:
//!
//! * Serialization is eager: `Serialize::serialize(&self) -> Value` builds an
//!   owned tree instead of driving a `Serializer` visitor.
//! * Maps always serialize as arrays of `[key, value]` pairs (upstream
//!   serde_json only supports string keys in objects; several workspace
//!   types use struct keys). `HashMap` / `HashSet` entries are sorted by
//!   their serialized key so output is deterministic.
//! * `#[serde(with = "module")]` resolves to `module::serialize(&field) ->
//!   Value` and `module::deserialize(&Value) -> Result<T, serde::Error>`.
//!
//! The wire formats produced through this crate are therefore stable within
//! this workspace but not interchangeable with upstream serde_json for
//! map-valued or non-self-describing types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side names, mirroring upstream's module layout. In this
/// vendored subset every deserialization is owned, so `DeserializeOwned` is
/// the same trait as [`Deserialize`].
pub mod de {
    pub use crate::{Deserialize, Deserialize as DeserializeOwned, Error};
}

/// Serialization-side names, mirroring upstream's module layout.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// The self-describing data model every serializable type lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers (and any integer parsed with a leading `-`).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects: ordered key/value pairs (order is preserved, not sorted).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// The string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A total order over values (floats compare with `total_cmp`), used to
    /// sort hash-map entries deterministically.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | UInt(_) | Float(_) => 2,
                Str(_) => 3,
                Array(_) => 4,
                Object(_) => 5,
            }
        }
        fn as_float(v: &Value) -> f64 {
            match v {
                Int(i) => *i as f64,
                UInt(u) => *u as f64,
                Float(f) => *f,
                _ => f64::NAN,
            }
        }
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (UInt(a), UInt(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Object(a), Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) if rank(a) == 2 && rank(b) == 2 => as_float(a).total_cmp(&as_float(b)),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Error produced while deserializing a [`Value`] into a Rust type.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, for_type: &str) -> Self {
        Error::custom(format!("expected {what} for {for_type}"))
    }

    /// A missing-field error.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent. Defaults to an
    /// error; `Option<T>` overrides it to `None` (matching upstream serde's
    /// treatment of missing optional fields).
    fn missing(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

/// Field lookup helper used by derived `Deserialize` impls.
#[doc(hidden)]
pub fn __find<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f)
                        if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
                    {
                        *f as i64
                    }
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

// ---------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(items.map(Serialize::serialize).collect())
}

fn deserialize_seq<T: Deserialize>(value: &Value, for_type: &str) -> Result<Vec<T>, Error> {
    value
        .as_array()
        .ok_or_else(|| Error::expected("array", for_type))?
        .iter()
        .map(T::deserialize)
        .collect()
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value, "Vec")
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = deserialize_seq(value, "array")?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value, "VecDeque").map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value, "BTreeSet").map(|v: Vec<T>| v.into_iter().collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize).collect();
        items.sort_by(|a, b| a.total_cmp(b));
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value, "HashSet").map(|v: Vec<T>| v.into_iter().collect())
    }
}

// ---------------------------------------------------------------------
// Maps: arrays of [key, value] pairs (keys need not be strings)
// ---------------------------------------------------------------------

fn serialize_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    sort: bool,
) -> Value {
    let mut pairs: Vec<Value> = entries
        .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
        .collect();
    if sort {
        pairs.sort_by(|a, b| a.total_cmp(b));
    }
    Value::Array(pairs)
}

fn deserialize_map<K: Deserialize, V: Deserialize>(
    value: &Value,
    for_type: &str,
) -> Result<Vec<(K, V)>, Error> {
    value
        .as_array()
        .ok_or_else(|| Error::expected("array of [key, value] pairs", for_type))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_array()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| Error::expected("[key, value] pair", for_type))?;
            Ok((K::deserialize(&items[0])?, V::deserialize(&items[1])?))
        })
        .collect()
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter(), false)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_map(value, "BTreeMap").map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter(), true)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_map(value, "HashMap").map(|pairs| pairs.into_iter().collect())
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value
                    .as_array()
                    .filter(|items| items.len() == LEN)
                    .ok_or_else(|| Error::expected("tuple array", "tuple"))?;
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------
// std types with a natural stable encoding
// ---------------------------------------------------------------------

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            Value::UInt(self.as_secs()),
            Value::UInt(self.subsec_nanos() as u64),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let (secs, nanos) = <(u64, u32)>::deserialize(value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for std::path::PathBuf {
    fn serialize(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        String::deserialize(value).map(std::path::PathBuf::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        assert_eq!(<Option<u32>>::missing("x").unwrap(), None);
        assert!(<u32>::missing("x").is_err());
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), "x".to_string());
        assert_eq!(
            BTreeMap::<(u32, u32), String>::deserialize(&m.serialize()).unwrap(),
            m
        );
        let t = (Some(3u32), vec![1.0f64]);
        assert_eq!(
            <(Option<u32>, Vec<f64>)>::deserialize(&t.serialize()).unwrap(),
            t
        );
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::deserialize(&arr.serialize()).unwrap(), arr);
    }

    #[test]
    fn hash_maps_serialize_deterministically() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..32u32 {
            a.insert(i, i * 2);
        }
        for i in (0..32u32).rev() {
            b.insert(i, i * 2);
        }
        assert_eq!(a.serialize(), b.serialize());
    }
}
