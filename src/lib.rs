//! # ikrq — facade crate
//!
//! Re-exports the whole Indoor Top-k Keyword-aware Routing Query (IKRQ,
//! ICDE 2020) reproduction workspace under one roof so examples and
//! downstream users can depend on a single crate.
//!
//! See the individual crates for details:
//!
//! * [`geom`] — planar geometry kernel,
//! * [`space`] — partitions, doors, topology, indoor distances,
//! * [`keywords`] — i-word/t-word organisation and keyword relevance,
//! * [`data`] — synthetic and simulated-real venues plus workloads,
//! * [`core`] — the IKRQ engine and the multi-venue `IkrqService` layer
//!   (ToE/KoE search, pruning, prime routes, request/response envelopes,
//!   parallel `search_batch`, optional soft-constraint and popularity
//!   extensions),
//! * [`persist`] — venue / workload / result documents (JSON + binary),
//! * [`viz`] — SVG floorplan, route-overlay and figure-chart rendering,
//! * [`server`] — the HTTP/JSON wire front end over the service envelopes
//!   (protocol v1, see `docs/PROTOCOL.md`),
//! * [`router`] — the venue-sharded scale-out tier in front of many
//!   servers (consistent hashing, replica failover, hot venue reload —
//!   see `docs/ROUTER.md`).

#![forbid(unsafe_code)]

pub use ikrq_core as core;
pub use ikrq_router as router;
pub use ikrq_server as server;
pub use indoor_data as data;
pub use indoor_geom as geom;
pub use indoor_keywords as keywords;
pub use indoor_persist as persist;
pub use indoor_space as space;
pub use indoor_viz as viz;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use ikrq_core::prelude::*;
    pub use indoor_data::prelude::*;
    pub use indoor_geom::Point;
    pub use indoor_keywords::prelude::*;
    pub use indoor_persist::prelude::*;
    pub use indoor_space::prelude::*;
    pub use indoor_viz::prelude::*;
}
