//! Workspace-level integration tests for the persistence and visualisation
//! layers driven through the `ikrq` facade crate: capture a generated venue,
//! round-trip it through both document encodings, replay a saved workload on
//! the rebuilt venue, and render the resulting routes and figure charts.

use ikrq::persist::{binary, json, VenueDocument, WorkloadDocument};
use ikrq::prelude::*;
use ikrq::viz::{render_floor, render_routes_on_floor, ChartSeries, LineChart, RenderStyle};
use indoor_keywords::QueryKeywords;
use indoor_space::FloorId;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn synthetic_venue_survives_persistence_and_replays_a_saved_workload() {
    // Generate a single-floor synthetic mall and a small workload against it.
    let venue = Venue::synthetic(&SyntheticVenueConfig::small(23)).unwrap();
    let generator = QueryGenerator::new(&venue);
    let mut rng = StdRng::seed_from_u64(5);
    let config = WorkloadConfig {
        s2t: 500.0,
        qw_len: 2,
        k: 3,
        ..WorkloadConfig::default()
    };
    let instances = generator.generate_batch(&config, 2, &mut rng);
    assert!(!instances.is_empty());

    // Save venue + workload.
    let doc = VenueDocument::from_venue(&venue.space, &venue.directory, 25.0, Some("test".into()));
    let payload = binary::encode_venue(&doc).unwrap();
    let mut workload = WorkloadDocument::new("integration workload");
    let queries: Vec<IkrqQuery> = instances
        .iter()
        .map(|instance| {
            IkrqQuery::new(
                instance.start,
                instance.terminal,
                instance.delta,
                QueryKeywords::new(instance.keywords.iter().cloned()).unwrap(),
                instance.k,
            )
            .with_alpha(instance.alpha)
            .with_tau(instance.tau)
        })
        .collect();
    for q in &queries {
        workload.push_query(q);
    }
    let workload_json = json::to_json_string(&workload).unwrap();

    // Reload everything and replay: the rebuilt venue must return identical
    // scores for every replayed query.
    let rebuilt_doc = binary::decode_venue(&payload).unwrap();
    assert_eq!(rebuilt_doc, doc);
    let (space, directory) = rebuilt_doc.build().unwrap();
    let original_engine = IkrqEngine::new(venue.space.clone(), venue.directory.clone());
    let rebuilt_engine = IkrqEngine::new(space, directory);
    let replayed: WorkloadDocument = json::from_json_str(&workload_json).unwrap();
    for (query, record) in queries.iter().zip(replayed.queries.iter()) {
        let replay_query = record.to_query().unwrap();
        let a = original_engine
            .execute(query, &ikrq_core::ExecOptions::default())
            .unwrap();
        let b = rebuilt_engine
            .execute(&replay_query, &ikrq_core::ExecOptions::default())
            .unwrap();
        assert_eq!(a.results.len(), b.results.len());
        for (ra, rb) in a.results.routes().iter().zip(b.results.routes()) {
            assert!((ra.score - rb.score).abs() < 1e-9);
            assert_eq!(ra.route.doors(), rb.route.doors());
        }
    }
}

#[test]
fn floorplans_routes_and_charts_render_through_the_facade() {
    let example = ikrq::data::paper_example_venue();
    let engine = IkrqEngine::new(example.venue.space.clone(), example.venue.directory.clone());

    // Floorplan with labels.
    let floor_svg = render_floor(
        engine.space(),
        Some(engine.directory()),
        FloorId(0),
        &RenderStyle::default(),
    )
    .unwrap();
    assert!(floor_svg.contains("samsung"));

    // Route overlay of a query result.
    let query = IkrqQuery::new(
        example.ps,
        example.pt,
        300.0,
        QueryKeywords::new(["coffee", "laptop"]).unwrap(),
        2,
    );
    let outcome = engine
        .execute(&query, &ikrq_core::ExecOptions::default())
        .unwrap();
    let routes: Vec<&indoor_space::Route> =
        outcome.results.routes().iter().map(|r| &r.route).collect();
    assert!(!routes.is_empty());
    let overlay =
        render_routes_on_floor(engine.space(), &routes, FloorId(0), &RenderStyle::default())
            .unwrap();
    assert!(overlay.contains("<polyline"));

    // A figure-style chart from measured running times.
    let mut chart = LineChart::new("time vs k", "k", "time (ms)");
    let mut points = Vec::new();
    for k in [1usize, 3, 5] {
        let mut q = query.clone();
        q.k = k;
        let o = engine
            .execute(&q, &ikrq_core::ExecOptions::default())
            .unwrap();
        points.push((k as f64, o.metrics.elapsed_millis().max(0.001)));
    }
    chart.push_series(ChartSeries::new("ToE", points));
    let chart_svg = chart.to_svg().unwrap();
    assert!(chart_svg.contains("series-0"));
    assert!(chart_svg.contains("time vs k"));
}

#[test]
fn extensions_compose_with_generated_venues_through_the_facade() {
    use ikrq::core::extensions::{PopularityModel, SoftDeltaConfig, VisitCountPopularity};

    let venue = Venue::synthetic(&SyntheticVenueConfig::small(31)).unwrap();
    let engine = IkrqEngine::new(venue.space.clone(), venue.directory.clone());
    let generator = QueryGenerator::new(&venue);
    let mut rng = StdRng::seed_from_u64(11);
    let config = WorkloadConfig {
        s2t: 500.0,
        qw_len: 2,
        k: 4,
        ..WorkloadConfig::default()
    };
    let Some(instance) = generator.generate(&config, &mut rng) else {
        panic!("workload generation must succeed on the small synthetic venue");
    };
    let query = IkrqQuery::new(
        instance.start,
        instance.terminal,
        instance.delta,
        QueryKeywords::new(instance.keywords.iter().cloned()).unwrap(),
        instance.k,
    )
    .with_alpha(instance.alpha)
    .with_tau(instance.tau);

    let hard = engine
        .execute(&query, &ikrq_core::ExecOptions::default())
        .unwrap();
    let soft = engine
        .search_soft(&query, VariantConfig::toe(), SoftDeltaConfig::default())
        .unwrap();
    assert!(soft.routes.len() >= hard.results.len().min(query.k));

    let popularity =
        VisitCountPopularity::from_routes(hard.results.routes().iter().map(|r| &r.route));
    let reranked = engine
        .search_with_popularity(
            &query,
            VariantConfig::toe(),
            &popularity,
            PopularityModel::new(0.25),
            2,
        )
        .unwrap();
    assert!(reranked.len() <= query.k);
    for pair in reranked.windows(2) {
        assert!(pair[0].combined_score + 1e-9 >= pair[1].combined_score);
    }
}
