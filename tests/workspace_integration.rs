//! Workspace-level integration tests exercising the full stack through the
//! `ikrq` facade crate: venue generation (`indoor-data`), keyword handling
//! (`indoor-keywords`), the space model (`indoor-space`) and the query engine
//! (`ikrq-core`), the way a downstream user would consume the library.

use ikrq::core::RankingModel;
use ikrq::prelude::*;
use indoor_keywords::QueryKeywords;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn facade_prelude_supports_the_full_query_pipeline() {
    // Build the example venue through the facade re-exports only.
    let example = ikrq::data::paper_example_venue();
    let engine = IkrqEngine::new(example.venue.space.clone(), example.venue.directory.clone());
    let query = IkrqQuery::new(
        example.ps,
        example.pt,
        300.0,
        QueryKeywords::new(["coffee"]).unwrap(),
        2,
    );
    let outcome = engine
        .execute(&query, &ikrq_core::ExecOptions::default())
        .unwrap();
    assert!(!outcome.results.is_empty());
    let best = outcome.results.best().unwrap();
    assert!(
        best.relevance > 0.0,
        "coffee is coverable in the example venue"
    );
    // The reported score matches the ranking definition accessible from the
    // facade as well.
    let ranking = RankingModel::new(query.alpha, query.delta, query.num_keywords());
    assert!((ranking.score(best.relevance, best.distance) - best.score).abs() < 1e-9);
}

#[test]
fn synthetic_venue_statistics_match_the_paper_through_the_facade() {
    let venue = Venue::synthetic(&SyntheticVenueConfig::small(1)).unwrap();
    let stats = venue.space.stats();
    assert_eq!(stats.partitions, 141);
    assert_eq!(stats.doors, 220);
    assert_eq!(venue.rooms.len(), 96);
    // Every room carries an i-word and its t-words are disjoint from i-words.
    for &room in &venue.rooms {
        let iword = venue.directory.partition_iword(room).unwrap();
        assert!(venue.directory.vocab().is_iword(iword));
        for t in venue.directory.twords_of(iword) {
            assert!(venue.directory.vocab().is_tword(t));
            assert!(!venue.directory.vocab().is_iword(t));
        }
    }
}

#[test]
fn workload_generation_and_search_compose_end_to_end() {
    let venue = Venue::synthetic(&SyntheticVenueConfig::small(17)).unwrap();
    let engine = IkrqEngine::new(venue.space.clone(), venue.directory.clone());
    let generator = QueryGenerator::new(&venue);
    let mut rng = StdRng::seed_from_u64(4);
    let workload = WorkloadConfig {
        s2t: 500.0,
        qw_len: 2,
        k: 3,
        ..WorkloadConfig::default()
    };
    let instances = generator.generate_batch(&workload, 3, &mut rng);
    assert!(!instances.is_empty());
    for instance in instances {
        let query = IkrqQuery::new(
            instance.start,
            instance.terminal,
            instance.delta,
            QueryKeywords::new(instance.keywords.iter().cloned()).unwrap(),
            instance.k,
        )
        .with_alpha(instance.alpha)
        .with_tau(instance.tau);
        let toe = engine
            .execute(&query, &ikrq_core::ExecOptions::default())
            .unwrap();
        let koe = engine
            .execute(
                &query,
                &ikrq_core::ExecOptions::with_variant(ikrq_core::VariantConfig::koe()),
            )
            .unwrap();
        // Both algorithms respect the constraint and agree on the optimum.
        for outcome in [&toe, &koe] {
            for route in outcome.results.routes() {
                assert!(route.distance <= query.delta + 1e-6);
                assert!(route.route.is_regular());
            }
        }
        let a = toe.results.best().map(|r| r.score).unwrap_or(0.0);
        let b = koe.results.best().map(|r| r.score).unwrap_or(0.0);
        assert!((a - b).abs() < 1e-6, "ToE {a} vs KoE {b}");
    }
}

#[test]
fn real_venue_simulation_is_queryable() {
    // A reduced-size instance of the simulated real mall keeps this test
    // quick while exercising the same code paths.
    let config = ikrq::data::real_mall::RealMallConfig {
        floors: 2,
        stores: 120,
        brands: 100,
        ..Default::default()
    };
    let venue = RealMallSimulator::generate(&config).unwrap();
    assert_eq!(venue.rooms.len(), 120);
    let engine = IkrqEngine::new(venue.space.clone(), venue.directory.clone());
    let generator = QueryGenerator::new(&venue);
    let mut rng = StdRng::seed_from_u64(8);
    let workload = WorkloadConfig {
        s2t: 800.0,
        qw_len: 2,
        k: 3,
        alpha: 0.7,
        ..WorkloadConfig::default()
    };
    if let Some(instance) = generator.generate(&workload, &mut rng) {
        let query = IkrqQuery::new(
            instance.start,
            instance.terminal,
            instance.delta,
            QueryKeywords::new(instance.keywords.iter().cloned()).unwrap(),
            instance.k,
        )
        .with_alpha(instance.alpha);
        let outcome = engine
            .execute(&query, &ikrq_core::ExecOptions::default())
            .unwrap();
        assert!(outcome.metrics.stamps_expanded > 0);
    }
}

#[test]
fn http_server_round_trips_a_search_through_the_facade() {
    use std::io::{Read, Write};
    use std::sync::Arc;

    let example = ikrq::data::paper_example_venue();
    let service = Arc::new(IkrqService::new());
    service
        .register_venue(
            "fig1",
            example.venue.space.clone(),
            example.venue.directory.clone(),
        )
        .unwrap();
    let request = SearchRequest::builder("fig1")
        .from(example.ps)
        .to(example.pt)
        .delta(400.0)
        .keywords(QueryKeywords::new(["latte", "apple"]).unwrap())
        .k(3)
        .build()
        .unwrap();
    let expected = service.search(&request).unwrap().deterministic_json();

    let handle = ikrq::server::serve(
        Arc::clone(&service),
        "127.0.0.1:0",
        ikrq::server::ServerConfig::default(),
    )
    .unwrap();
    let body = serde_json::to_string(&request).unwrap();
    // The server defaults to keep-alive, so a read-to-end client must ask
    // for close explicitly.
    let wire = format!(
        "POST /v1/search HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut reply = String::new();
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    stream.write_all(wire.as_bytes()).unwrap();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 200"), "reply: {reply}");
    let (_, response_body) = reply.split_once("\r\n\r\n").unwrap();
    let response: SearchResponse = serde_json::from_str(response_body).unwrap();
    assert_eq!(response.deterministic_json(), expected);

    // The facade also re-exports the keep-alive client: two requests, one
    // connection, identical deterministic payloads.
    let mut client = ikrq::server::KeepAliveClient::new(handle.local_addr());
    for _ in 0..2 {
        let reply = client.request("POST", "/v1/search", &body).unwrap();
        assert_eq!(reply.status, 200);
        let response: SearchResponse = serde_json::from_str(&reply.body).unwrap();
        assert_eq!(response.deterministic_json(), expected);
    }
    assert_eq!(client.connects(), 1);
}
