//! Ablation tour: run every algorithm variant of Table III (plus the
//! extensions of this reproduction) on one query and compare search effort,
//! memory and result quality side by side.
//!
//! ```text
//! cargo run --release --example ablation_tour
//! ```

use ikrq::prelude::*;
use indoor_keywords::QueryKeywords;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A single-floor synthetic mall keeps this example quick while still
    // exercising all pruning rules.
    let venue = Venue::synthetic(&SyntheticVenueConfig::small(99)).expect("venue generation");
    let service = IkrqService::new();
    service
        .register_venue("ablation", venue.space.clone(), venue.directory.clone())
        .expect("venue registers");

    // Generate one workload instance with the experiment generator.
    let generator = QueryGenerator::new(&venue);
    let mut rng = StdRng::seed_from_u64(5);
    let instance = generator
        .generate(
            &WorkloadConfig {
                s2t: 700.0,
                qw_len: 3,
                k: 5,
                ..WorkloadConfig::default()
            },
            &mut rng,
        )
        .expect("workload instance");
    let query = IkrqQuery::new(
        instance.start,
        instance.terminal,
        instance.delta,
        QueryKeywords::new(instance.keywords.iter().cloned()).expect("keywords"),
        instance.k,
    )
    .with_alpha(instance.alpha)
    .with_tau(instance.tau);
    println!(
        "query: s2t = {:.0} m, delta = {:.0} m, keywords = {:?}, k = {}\n",
        instance.actual_s2t, instance.delta, instance.keywords, instance.k
    );

    let variants = vec![
        VariantConfig::toe(),
        VariantConfig::toe_no_distance(),
        VariantConfig::toe_no_kbound(),
        VariantConfig::toe_no_prime().with_expansion_budget(200_000),
        VariantConfig::toe().with_strict_terminal_expansion(),
        VariantConfig::koe(),
        VariantConfig::koe_no_distance(),
        VariantConfig::koe_no_kbound(),
        VariantConfig::koe_star(),
    ];

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>8} {:>12}",
        "variant", "time(ms)", "mem(MB)", "expanded", "routes", "best", "homog.rate"
    );
    for variant in variants {
        let label = if variant.strict_terminal_expansion {
            format!("{}+strict", variant.label())
        } else {
            variant.label()
        };
        let request = SearchRequest::builder("ablation")
            .query(query.clone())
            .variant(variant)
            .build()
            .expect("valid request");
        match service.search(&request) {
            Ok(response) => {
                let metrics = response.to_outcome().metrics;
                println!(
                    "{:<22} {:>10.2} {:>10.3} {:>10} {:>10} {:>8.4} {:>12.2}",
                    label,
                    metrics.elapsed_millis(),
                    metrics.peak_memory_mb(),
                    metrics.stamps_expanded,
                    response.results.len(),
                    response.results.best().map(|r| r.score).unwrap_or(0.0),
                    response.results.homogeneous_rate(),
                );
            }
            Err(error) => println!("{label:<22} failed: {error}"),
        }
    }
}
