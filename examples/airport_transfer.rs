//! Airport transfer scenario: the introduction's Copenhagen-airport example.
//!
//! ```text
//! cargo run --example airport_transfer
//! ```
//!
//! Jesper has passed the security check and must reach his boarding gate
//! within 1.5 hours. On the way he wants Danish cookies, euros in cash and a
//! bowl of noodles. The time budget is converted into a distance constraint
//! `∆ = v_max · T` exactly as footnote 1 of the paper prescribes.
//!
//! The terminal is modelled with the builder API directly (a pier with gates,
//! shops and a service corridor), showing how to create venues without the
//! generators; it also demonstrates the elevator extension (a vertical
//! connector between the two pier levels).

use ikrq::prelude::*;
use indoor_geom::{Point, Rect};
use indoor_keywords::{KeywordDirectory, QueryKeywords};
use indoor_space::DoorKind;

/// Builds a two-level airport pier and its keyword directory.
fn build_airport() -> (IndoorSpace, KeywordDirectory, IndoorPoint, IndoorPoint) {
    let mut b = IndoorSpaceBuilder::new().with_grid_cell(30.0);
    let ground = FloorId(0);
    let upper = FloorId(1);
    b.add_floor(
        ground,
        Rect::from_origin_size(Point::ORIGIN, 600.0, 120.0).unwrap(),
    );
    b.add_floor(
        upper,
        Rect::from_origin_size(Point::ORIGIN, 600.0, 120.0).unwrap(),
    );

    // Ground level: a long concourse with shops on one side.
    let concourse = b.add_partition(
        ground,
        PartitionKind::Hallway,
        Rect::from_origin_size(Point::new(0.0, 40.0), 600.0, 40.0).unwrap(),
        Some("concourse".into()),
    );
    let shops = [
        ("security", 0.0, 60.0),
        ("cookieshop", 80.0, 140.0),
        ("bank", 180.0, 240.0),
        ("noodlebar", 300.0, 370.0),
        ("dutyfree", 420.0, 520.0),
    ];
    let mut shop_ids = Vec::new();
    for (name, x0, x1) in shops {
        let id = b.add_partition(
            ground,
            PartitionKind::Room,
            Rect::new(Point::new(x0, 0.0), Point::new(x1, 40.0)).unwrap(),
            Some(name.to_string()),
        );
        let door = b.add_door(Point::new((x0 + x1) / 2.0, 40.0), ground, DoorKind::Normal);
        b.connect_bidirectional(door, id, concourse);
        shop_ids.push((name, id));
    }

    // Upper level: the gate area, reached by an elevator at the east end.
    let gate_area = b.add_partition(
        upper,
        PartitionKind::Hallway,
        Rect::from_origin_size(Point::new(400.0, 40.0), 200.0, 40.0).unwrap(),
        Some("gates".into()),
    );
    let elevator_ground = b.add_partition(
        ground,
        PartitionKind::Elevator,
        Rect::from_origin_size(Point::new(560.0, 80.0), 30.0, 30.0).unwrap(),
        Some("elevator-0".into()),
    );
    let elevator_upper = b.add_partition(
        upper,
        PartitionKind::Elevator,
        Rect::from_origin_size(Point::new(560.0, 80.0), 30.0, 30.0).unwrap(),
        Some("elevator-1".into()),
    );
    let d_elev_ground = b.add_door(Point::new(575.0, 80.0), ground, DoorKind::Normal);
    b.connect_bidirectional(d_elev_ground, concourse, elevator_ground);
    let d_elev_upper = b.add_door(Point::new(575.0, 80.0), upper, DoorKind::Normal);
    b.connect_bidirectional(d_elev_upper, gate_area, elevator_upper);
    // The cabin ride between the two levels costs a flat 15 m equivalent.
    let cabin = b.add_door(Point::new(575.0, 95.0), ground, DoorKind::Elevator);
    b.connect_bidirectional(cabin, elevator_ground, elevator_upper);
    b.set_intra_distance(elevator_ground, d_elev_ground, cabin, 7.5);
    b.set_intra_distance(elevator_upper, d_elev_upper, cabin, 7.5);

    let space = b.build().expect("airport model is valid");

    // Keywords: i-words are the named areas, t-words describe what they offer.
    let mut directory = KeywordDirectory::new();
    let twords: &[(&str, &[&str])] = &[
        ("security", &[]),
        (
            "cookieshop",
            &["cookies", "danish", "chocolate", "souvenir"],
        ),
        ("bank", &["euro", "cash", "currency", "exchange", "krone"]),
        ("noodlebar", &["noodle", "ramen", "soup", "dumpling"]),
        ("dutyfree", &["perfume", "whisky", "chocolate", "souvenir"]),
    ];
    for ((name, id), (_, words)) in shop_ids.iter().zip(twords) {
        let iword = directory.add_iword(name).unwrap();
        directory.name_partition(*id, iword).unwrap();
        for w in *words {
            directory.add_tword_for(iword, w);
        }
    }

    // Start: just after security. Terminal: the boarding gate upstairs.
    let start = IndoorPoint::from_xy(30.0, 20.0, ground);
    let gate = IndoorPoint::from_xy(430.0, 60.0, upper);
    (space, directory, start, gate)
}

fn main() {
    let (space, directory, start, gate) = build_airport();
    println!("airport model: {}", space.stats());

    let service = IkrqService::new();
    service
        .register_venue("airport", space, directory)
        .expect("venue registers");

    // 1.5 hours at 1.1 m/s of maximum indoor walking speed (footnote 1).
    let v_max = 1.1;
    let time_budget_s = 0.4 * 3600.0; // Jesper keeps a safety margin.
    let delta = v_max * time_budget_s;

    let request = SearchRequest::builder("airport")
        .from(start)
        .to(gate)
        .delta(delta)
        .keywords(QueryKeywords::new(["cookies", "euro", "noodle"]).expect("keywords"))
        .k(3)
        .alpha(0.4) // passengers are distance-sensitive (paper §III-C)
        .tau(0.1)
        .build()
        .expect("valid request");

    println!("\nfrom security to the gate, ∆ = {delta:.0} m, keywords cookies / euro / noodle\n");
    let response = service.search(&request).expect("valid query");
    for (rank, route) in response.results.routes().iter().enumerate() {
        println!(
            "#{rank}: score {:.4} | covers {:.3} | {:.0} m",
            route.score, route.relevance, route.distance
        );
        println!("    {}", route.route);
    }
    if let Some(metrics) = &response.metrics {
        println!("\nsearch effort: {metrics}");
    }
}
