//! Persist-and-render tour: capture a venue into a portable document, save it
//! as JSON and in the compact binary format, reload it, run an IKRQ against
//! the reloaded venue, apply the two optional extensions (soft distance
//! constraint and popularity re-ranking), and render the best route as SVG.
//!
//! ```text
//! cargo run --example persist_and_render
//! ```
//!
//! Output files are written to `target/persist_and_render/`.

use ikrq::core::extensions::{PopularityModel, SoftDeltaConfig, VisitCountPopularity};
use ikrq::persist::{binary, json, VenueDocument, WorkloadDocument};
use ikrq::prelude::*;
use ikrq::viz::{render_routes_on_floor, RenderStyle};
use indoor_keywords::QueryKeywords;
use indoor_space::FloorId;
use std::path::PathBuf;

fn main() {
    let out_dir = PathBuf::from("target/persist_and_render");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // 1. Build the Fig. 1 example venue and capture it into a document.
    let example = indoor_data::paper_example_venue();
    let doc = VenueDocument::from_venue(
        &example.venue.space,
        &example.venue.directory,
        10.0,
        Some("fig1-example".into()),
    );
    let json_path = out_dir.join("venue.json");
    let bin_path = out_dir.join("venue.ikrq");
    json::save_venue_json(&doc, &json_path).expect("save JSON venue");
    binary::save_venue_binary(&doc, &bin_path).expect("save binary venue");
    println!(
        "saved venue: {} ({} bytes JSON, {} bytes binary)",
        doc.name.as_deref().unwrap_or("unnamed"),
        std::fs::metadata(&json_path).unwrap().len(),
        std::fs::metadata(&bin_path).unwrap().len(),
    );

    // 2. Reload the binary document and rebuild the venue. The two encodings
    //    describe exactly the same model.
    let reloaded = binary::load_venue_binary(&bin_path).expect("load binary venue");
    assert_eq!(reloaded, doc);
    let (space, directory) = reloaded.build().expect("rebuild venue");
    let service = IkrqService::new();
    let engine = service
        .register_venue("fig1-example", space, directory)
        .expect("venue registers");

    // 3. The running-example query, saved into a replayable workload.
    let query = IkrqQuery::new(
        example.ps,
        example.pt,
        300.0,
        QueryKeywords::new(["coffee", "laptop"]).expect("keywords"),
        3,
    )
    .with_alpha(0.5)
    .with_tau(0.1);
    let mut workload = WorkloadDocument::new("persist_and_render example workload");
    workload.venue = Some("fig1-example".into());
    workload.push_query(&query);
    json::save_workload_json(&workload, out_dir.join("workload.json")).expect("save workload");

    // 4. Answer the query on the reloaded venue through the service.
    let request = SearchRequest::builder("fig1-example")
        .query(query.clone())
        .build()
        .expect("valid request");
    let outcome = service.search(&request).expect("search").to_outcome();
    println!("\n{} routes ({}):", outcome.results.len(), outcome.label);
    for (i, route) in outcome.results.routes().iter().enumerate() {
        println!(
            "  #{} score {:.3}  relevance {:.2}  distance {:.1} m",
            i + 1,
            route.score,
            route.relevance,
            route.distance
        );
    }

    // 5. Soft distance constraint: admit routes up to 25% above the budget
    //    with a penalty on the overrun.
    let soft = engine
        .search_soft(&query, VariantConfig::toe(), SoftDeltaConfig::default())
        .expect("soft search");
    println!(
        "\nsoft constraint (∆' = {:.0} m): {} routes, {} over the hard ∆",
        soft.relaxed_delta,
        soft.routes.len(),
        soft.num_over_delta()
    );

    // 6. Popularity re-ranking: prefer routes through partitions visited by
    //    earlier results (a stand-in for mobility data).
    let popularity =
        VisitCountPopularity::from_routes(outcome.results.routes().iter().map(|r| &r.route));
    let reranked = engine
        .search_with_popularity(
            &query,
            VariantConfig::toe(),
            &popularity,
            PopularityModel::new(0.3),
            2,
        )
        .expect("popularity search");
    println!("popularity re-ranking (γ = 0.3):");
    for (i, r) in reranked.iter().enumerate() {
        println!(
            "  #{} combined {:.3}  ψ {:.3}  popularity {:.2}",
            i + 1,
            r.combined_score,
            r.result.score,
            r.popularity
        );
    }

    // 7. Render the top routes over the floorplan.
    let routes: Vec<&indoor_space::Route> =
        outcome.results.routes().iter().map(|r| &r.route).collect();
    let svg = render_routes_on_floor(engine.space(), &routes, FloorId(0), &RenderStyle::default())
        .expect("render routes");
    let svg_path = out_dir.join("routes.svg");
    std::fs::write(&svg_path, svg).expect("write SVG");
    println!("\nwrote {}", svg_path.display());
}
