//! Mall shopping scenario: the paper's motivating use case on the synthetic
//! multi-floor mall of §V-A1.
//!
//! ```text
//! cargo run --release --example mall_shopping
//! ```
//!
//! A shopper enters the mall, wants to pass by shops related to `coffee` and
//! `sneakers` plus one specific brand, and must reach the exit within a
//! distance budget. Because shoppers care more about keyword coverage than
//! about walking distance, the ranking trade-off `alpha` is raised to 0.7
//! (as the paper does for its real-data experiments).

use ikrq::prelude::*;
use indoor_keywords::QueryKeywords;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A single-floor instance of the synthetic mall keeps the example fast;
    // pass `.with_floors(5)` for the paper-scale venue.
    let venue = Venue::synthetic(&SyntheticVenueConfig::small(2024)).expect("venue generation");
    println!("generated venue: {}", venue.space.stats());
    println!(
        "keyword directory: {} i-words, {} t-words",
        venue.directory.vocab().num_iwords(),
        venue.directory.vocab().num_twords()
    );

    let service = IkrqService::new();
    service
        .register_venue("mall", venue.space.clone(), venue.directory.clone())
        .expect("venue registers");

    // Entrance and exit: two far-apart rooms of the mall.
    let entrance = venue.point_in_partition(venue.rooms[0], (0.5, 0.5));
    let exit = venue.point_in_partition(venue.rooms[venue.rooms.len() - 1], (0.5, 0.5));
    let direct = venue.space.point_to_point_distance(&entrance, &exit);
    println!("\nentrance {entrance}, exit {exit}, direct distance {direct:.0} m");

    // Keywords: two thematic needs plus one concrete brand present in the
    // venue (picked from the directory so the example is self-contained).
    let some_brand = venue
        .directory
        .partition_iword(venue.rooms[venue.rooms.len() / 2])
        .and_then(|w| venue.directory.resolve(w))
        .unwrap_or("coffee")
        .to_string();
    let keywords = vec![
        "coffee".to_string(),
        "sneakers".to_string(),
        some_brand.clone(),
    ];
    println!("shopping list: {keywords:?}");

    let request = SearchRequest::builder("mall")
        .from(entrance)
        .to(exit)
        .delta(1.8 * direct)
        .keywords(QueryKeywords::new(keywords).expect("keywords"))
        .k(5)
        .alpha(0.7)
        .tau(0.1)
        .build()
        .expect("valid request");

    let response = service.search(&request).expect("valid query");
    println!("\ntop-{} keyword-aware routes (ToE):", response.results.k());
    for (rank, route) in response.results.routes().iter().enumerate() {
        println!(
            "#{rank}: score {:.4} | relevance {:.3} | {:.0} m (budget {:.0} m)",
            route.score, route.relevance, route.distance, request.query.delta
        );
    }
    if let Some(metrics) = &response.metrics {
        println!("\nsearch effort: {metrics}");
    }

    // Show how the workload generator of the experiments builds queries.
    let generator = QueryGenerator::new(&venue);
    let mut rng = StdRng::seed_from_u64(7);
    if let Some(instance) = generator.generate(
        &WorkloadConfig {
            s2t: 600.0,
            qw_len: 3,
            ..WorkloadConfig::default()
        },
        &mut rng,
    ) {
        println!(
            "\nworkload generator example: s2t = {:.0} m, delta = {:.0} m, QW = {:?}",
            instance.actual_s2t, instance.delta, instance.keywords
        );
    }
}
