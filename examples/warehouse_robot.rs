//! Warehouse robot scenario: the introduction's automated-warehouse example.
//!
//! ```text
//! cargo run --example warehouse_robot
//! ```
//!
//! A picking robot starts at its charging dock, must fetch items matching the
//! product keywords of an order, and deliver them to a packing station within
//! a travel budget. Aisles are modelled as hallway partitions, storage bays as
//! rooms whose i-word is the bay label and whose t-words are the stocked
//! product tags.

use ikrq::prelude::*;
use indoor_geom::{Point, Rect};
use indoor_keywords::{KeywordDirectory, QueryKeywords};
use indoor_space::DoorKind;

/// Builds a single-floor warehouse: three aisles, bays on both sides.
fn build_warehouse() -> (IndoorSpace, KeywordDirectory, IndoorPoint, IndoorPoint) {
    let floor = FloorId(0);
    let mut b = IndoorSpaceBuilder::new().with_grid_cell(20.0);
    b.add_floor(
        floor,
        Rect::from_origin_size(Point::ORIGIN, 200.0, 140.0).unwrap(),
    );

    // A cross aisle along the south edge connects the three aisles.
    let cross = b.add_partition(
        floor,
        PartitionKind::Hallway,
        Rect::from_origin_size(Point::new(0.0, 0.0), 200.0, 20.0).unwrap(),
        Some("cross-aisle".into()),
    );
    let mut directory = KeywordDirectory::new();
    let product_groups: [&[&str]; 6] = [
        &["batteries", "chargers", "cables"],
        &["detergent", "soap", "sponges"],
        &["cereal", "oats", "granola"],
        &["screws", "bolts", "drill"],
        &["notebooks", "pens", "markers"],
        &["bottles", "cups", "plates"],
    ];
    let mut bay_index = 0usize;
    for aisle_idx in 0..3usize {
        let x0 = 20.0 + aisle_idx as f64 * 60.0;
        let aisle = b.add_partition(
            floor,
            PartitionKind::Hallway,
            Rect::from_origin_size(Point::new(x0, 20.0), 20.0, 120.0).unwrap(),
            Some(format!("aisle-{aisle_idx}")),
        );
        let junction = b.add_door(Point::new(x0 + 10.0, 20.0), floor, DoorKind::Normal);
        b.connect_bidirectional(junction, cross, aisle);
        // Two bays per aisle side.
        for (side, dx) in [(-20.0f64, -20.0f64), (20.0, 20.0)] {
            for level in 0..2 {
                let y0 = 30.0 + level as f64 * 55.0;
                let bay = b.add_partition(
                    floor,
                    PartitionKind::Room,
                    Rect::from_origin_size(
                        Point::new(x0 + dx.min(0.0) + side.max(0.0), y0),
                        20.0,
                        45.0,
                    )
                    .unwrap(),
                    Some(format!("bay-{bay_index}")),
                );
                let door_x = if side < 0.0 { x0 } else { x0 + 20.0 };
                let door = b.add_door(Point::new(door_x, y0 + 22.5), floor, DoorKind::Normal);
                b.connect_bidirectional(door, bay, aisle);
                let iword = directory.add_iword(&format!("bay{bay_index}")).unwrap();
                directory.name_partition(bay, iword).unwrap();
                for product in product_groups[bay_index % product_groups.len()] {
                    directory.add_tword_for(iword, product);
                }
                bay_index += 1;
            }
        }
    }

    let space = b.build().expect("warehouse model is valid");
    let dock = IndoorPoint::from_xy(5.0, 10.0, floor);
    let packing = IndoorPoint::from_xy(195.0, 10.0, floor);
    (space, directory, dock, packing)
}

fn main() {
    let (space, directory, dock, packing) = build_warehouse();
    println!("warehouse model: {}", space.stats());

    let service = IkrqService::new();
    service
        .register_venue("warehouse", space, directory)
        .expect("venue registers");

    // Order: one electric item, one cleaning item, one stationery item.
    // The robot's battery is the scarce resource: weight distance highly.
    let base = SearchRequest::builder("warehouse")
        .from(dock)
        .to(packing)
        .delta(600.0)
        .keywords(QueryKeywords::new(["batteries", "soap", "pens"]).expect("keywords"))
        .k(4)
        .alpha(0.35)
        .tau(0.1)
        .build()
        .expect("valid request");

    println!("\npick order: batteries / soap / pens, travel budget 600 m\n");
    for config in [VariantConfig::toe(), VariantConfig::koe()] {
        let request = SearchRequest {
            options: ExecOptions::with_variant(config),
            ..base.clone()
        };
        let response = service.search(&request).expect("valid query");
        println!("=== {} ===", response.variant);
        for (rank, route) in response.results.routes().iter().enumerate() {
            println!(
                "#{rank}: score {:.4} | coverage {:.3} | {:.0} m",
                route.score, route.relevance, route.distance
            );
        }
        if let Some(metrics) = &response.metrics {
            println!("effort: {metrics}\n");
        }
    }
}
