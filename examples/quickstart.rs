//! Quickstart: build a small venue, pose an IKRQ, and inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example uses the hand-crafted venue mirroring the paper's Fig. 1
//! (shops along a corridor with two-level keywords) and runs the running
//! example of the paper: from a start point inside `zara` to a terminal point
//! at the east end of the corridor, find the top-3 routes that cover the
//! keywords `latte` and `apple` within a 400 m budget.

use ikrq::prelude::*;
use indoor_keywords::QueryKeywords;

fn main() {
    // 1. A venue = indoor space (partitions, doors, topology) + keyword
    //    directory (i-words, t-words, mappings). `indoor-data` ships both a
    //    parametric mall generator and this small example venue.
    let example = indoor_data::paper_example_venue();
    let venue = &example.venue;
    println!("venue: {}", venue.space.stats());

    // 2. The engine owns the venue and answers queries.
    let engine = IkrqEngine::new(venue.space.clone(), venue.directory.clone());

    // 3. An IKRQ: start point, terminal point, distance constraint, keyword
    //    list, k — plus the ranking trade-off alpha and the similarity
    //    threshold tau.
    let query = IkrqQuery::new(
        example.ps,
        example.pt,
        400.0,
        QueryKeywords::new(["latte", "apple"]).expect("keywords"),
        3,
    )
    .with_alpha(0.5)
    .with_tau(0.1);

    // 4. Run both search algorithms of the paper.
    for config in [VariantConfig::toe(), VariantConfig::koe()] {
        let outcome = engine.search(&query, config).expect("valid query");
        println!("\n=== {} ===", outcome.label);
        println!("search effort: {}", outcome.metrics);
        for (rank, route) in outcome.results.routes().iter().enumerate() {
            println!(
                "#{rank}: score {:.4} | keyword relevance {:.3} | distance {:.1} m",
                route.score, route.relevance, route.distance
            );
            println!("    {}", route.route);
        }
    }
}
