//! Quickstart: host a venue on the query service, pose an IKRQ through the
//! request/response envelope, and inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example uses the hand-crafted venue mirroring the paper's Fig. 1
//! (shops along a corridor with two-level keywords) and runs the running
//! example of the paper: from a start point inside `zara` to a terminal point
//! at the east end of the corridor, find the top-3 routes that cover the
//! keywords `latte` and `apple` within a 400 m budget.

use ikrq::prelude::*;
use indoor_keywords::QueryKeywords;

fn main() {
    // 1. A venue = indoor space (partitions, doors, topology) + keyword
    //    directory (i-words, t-words, mappings). `indoor-data` ships both a
    //    parametric mall generator and this small example venue.
    let example = indoor_data::paper_example_venue();
    let venue = &example.venue;
    println!("venue: {}", venue.space.stats());

    // 2. The service hosts any number of named venues; each gets an engine
    //    that owns an immutable copy of the venue.
    let service = IkrqService::new();
    service
        .register_venue("fig1", venue.space.clone(), venue.directory.clone())
        .expect("venue registers");
    println!("hosted venues: {:?}", service.venue_ids());

    // 3. A request = venue id + IKRQ (start, terminal, distance constraint,
    //    keyword list, k, alpha, tau) + execution options (algorithm
    //    variant, metrics detail, expansion budget). The builder validates
    //    everything up front.
    let request = SearchRequest::builder("fig1")
        .from(example.ps)
        .to(example.pt)
        .delta(400.0)
        .keywords(QueryKeywords::new(["latte", "apple"]).expect("keywords"))
        .k(3)
        .alpha(0.5)
        .tau(0.1)
        .build()
        .expect("valid request");

    // 4. Run both search algorithms of the paper through the service.
    for config in [VariantConfig::toe(), VariantConfig::koe()] {
        let request = SearchRequest {
            options: ExecOptions::with_variant(config),
            ..request.clone()
        };
        let response = service.search(&request).expect("valid query");
        println!("\n=== {} ===", response.variant);
        println!(
            "answered by `{}` ({} partitions, {} doors) in {:.2} ms",
            response.venue.id,
            response.venue.partitions,
            response.venue.doors,
            response.timing.total_ms,
        );
        if let Some(metrics) = &response.metrics {
            println!("search effort: {metrics}");
        }
        for (rank, route) in response.results.routes().iter().enumerate() {
            println!(
                "#{rank}: score {:.4} | keyword relevance {:.3} | distance {:.1} m",
                route.score, route.relevance, route.distance
            );
            println!("    {}", route.route);
        }
    }

    // 5. Throughput path: a batch fans out over all cores and returns
    //    responses in request order.
    let batch: Vec<SearchRequest> = (1..=8)
        .map(|k| SearchRequest {
            query: IkrqQuery {
                k,
                ..request.query.clone()
            },
            ..request.clone()
        })
        .collect();
    let responses = service.search_batch(&batch);
    println!("\nbatch of {} requests:", responses.len());
    for (request, response) in batch.iter().zip(&responses) {
        let response = response.as_ref().expect("valid query");
        println!(
            "  k={}: {} routes, {:.2} ms",
            request.query.k,
            response.results.len(),
            response.timing.search_ms,
        );
    }
}
