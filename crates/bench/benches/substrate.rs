//! Criterion micro-benchmarks of the substrates the IKRQ engine builds on:
//! floorplan generation, keyword extraction, door-graph shortest paths, the
//! all-pairs matrix (KoE* precomputation), skeleton lower bounds and keyword
//! relevance evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use indoor_data::{MallConfig, MallGenerator, SyntheticVenueConfig, Venue};
use indoor_keywords::{PreparedQuery, QueryKeywords, RelevanceModel};
use indoor_space::{DoorId, DoorMatrix, IndoorPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::hint::black_box;

fn bench_floorplan_generation(c: &mut Criterion) {
    c.bench_function("substrate/mall_generation_1_floor", |b| {
        b.iter(|| {
            let layout = MallGenerator::generate(&MallConfig::default().with_floors(1)).unwrap();
            black_box(layout.space.num_doors());
        });
    });
}

fn bench_shortest_paths(c: &mut Criterion) {
    let layout = MallGenerator::generate(&MallConfig::default().with_floors(2)).unwrap();
    let space = layout.space;
    let mut rng = StdRng::seed_from_u64(3);
    let doors: Vec<DoorId> = (0..32)
        .map(|_| DoorId(rng.gen_range(0..space.num_doors() as u32)))
        .collect();
    c.bench_function("substrate/dijkstra_single_source", |b| {
        let sp = space.shortest_paths();
        let empty = HashSet::new();
        let mut i = 0usize;
        b.iter(|| {
            let d = doors[i % doors.len()];
            i += 1;
            black_box(sp.from_door(d, &empty).distances().len());
        });
    });
    c.bench_function("substrate/skeleton_lower_bound", |b| {
        let a = IndoorPoint::from_xy(100.0, 100.0, indoor_space::FloorId(0));
        let z = IndoorPoint::from_xy(1200.0, 1200.0, indoor_space::FloorId(1));
        b.iter(|| black_box(space.skeleton_distance(&a, &z)));
    });
    c.bench_function("substrate/door_matrix_build_1_floor", |b| {
        let single = MallGenerator::generate(&MallConfig::default().with_floors(1)).unwrap();
        b.iter(|| black_box(DoorMatrix::build(&single.space).num_doors()));
    });
}

fn bench_keyword_relevance(c: &mut Criterion) {
    let venue = Venue::synthetic(&SyntheticVenueConfig::small(5)).unwrap();
    let keywords: Vec<String> = venue
        .directory
        .vocab()
        .twords()
        .take(4)
        .filter_map(|w| venue.directory.resolve(w).map(str::to_string))
        .collect();
    let query = QueryKeywords::new(keywords).unwrap();
    c.bench_function("substrate/candidate_expansion", |b| {
        b.iter(|| {
            let prepared = PreparedQuery::prepare(&query, &venue.directory, 0.1).unwrap();
            black_box(prepared.candidate_iwords().len());
        });
    });
    let prepared = PreparedQuery::prepare(&query, &venue.directory, 0.1).unwrap();
    let mut route =
        indoor_space::Route::from_point(venue.point_in_partition(venue.rooms[0], (0.5, 0.5)));
    let start = venue.rooms[0];
    let door = venue.space.p2d_leave(start)[0];
    route.append_door(door, start).unwrap();
    c.bench_function("substrate/route_relevance", |b| {
        b.iter(|| {
            black_box(RelevanceModel::relevance_of_route(
                &route,
                &venue.space,
                &venue.directory,
                &prepared,
            ));
        });
    });
}

criterion_group!(
    benches,
    bench_floorplan_generation,
    bench_shortest_paths,
    bench_keyword_relevance
);
criterion_main!(benches);
