//! Criterion micro-benchmark corresponding to Fig. 4: the running time of
//! every algorithm variant of Table III under the default parameters, on a
//! down-scaled synthetic venue so `cargo bench` finishes quickly. The full
//! paper-scale reproduction is `cargo run --release -p ikrq-bench --bin
//! figures -- --fig fig04 --full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ikrq_bench::workload::{to_query, ExperimentContext, VenueKind};
use ikrq_core::{ExecOptions, VariantConfig};
use indoor_data::WorkloadConfig;
use std::hint::black_box;

fn bench_default_setting(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 0.2);
    let venue = ctx.venue(VenueKind::Synthetic { floors: 2 });
    let workload = WorkloadConfig {
        s2t: 800.0,
        ..WorkloadConfig::default()
    };
    let instances = venue.instances(&workload, 3, 99);
    assert!(!instances.is_empty(), "workload generation must succeed");
    let queries: Vec<_> = instances.iter().map(to_query).collect();

    let mut group = c.benchmark_group("fig04_default_parameters");
    group.sample_size(10);
    for variant in [
        VariantConfig::toe(),
        VariantConfig::toe_no_distance(),
        VariantConfig::toe_no_kbound(),
        VariantConfig::koe(),
        VariantConfig::koe_no_distance(),
        VariantConfig::koe_no_kbound(),
        VariantConfig::koe_star(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    for query in &queries {
                        let outcome = venue
                            .engine
                            .execute(query, &ExecOptions::with_variant(variant))
                            .expect("valid query");
                        black_box(outcome.results.len());
                    }
                });
            },
        );
    }
    group.finish();
}

/// Throughput of the service layer's batch primitive versus a sequential
/// request loop over the same workload.
fn bench_batch_throughput(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 0.2);
    let venue = ctx.venue(VenueKind::Synthetic { floors: 2 });
    let workload = WorkloadConfig {
        s2t: 800.0,
        ..WorkloadConfig::default()
    };
    let instances = venue.instances(&workload, 16, 41);
    let requests: Vec<_> = instances
        .iter()
        .map(|instance| venue.request(instance, VariantConfig::toe()))
        .collect();

    let mut group = c.benchmark_group("service_batch_throughput");
    group.sample_size(10);
    group.bench_function("sequential_search", |b| {
        b.iter(|| {
            for request in &requests {
                black_box(venue.service.search(request).expect("valid request"));
            }
        });
    });
    group.bench_function("search_batch", |b| {
        b.iter(|| black_box(venue.service.search_batch(&requests)));
    });
    group.finish();
}

criterion_group!(benches, bench_default_setting, bench_batch_throughput);
criterion_main!(benches);
