//! Criterion micro-benchmarks corresponding to the parameter sweeps of
//! Figs. 5–12 (k, |QW|, η, β, δs2t), on a down-scaled venue. The paper-scale
//! sweeps are produced by the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ikrq_bench::workload::{to_query, ExperimentContext, VenueKind};
use ikrq_core::{ExecOptions, VariantConfig};
use indoor_data::WorkloadConfig;
use std::hint::black_box;

fn small_workload() -> WorkloadConfig {
    WorkloadConfig {
        s2t: 800.0,
        ..WorkloadConfig::default()
    }
}

fn bench_sweep<T: std::fmt::Display + Copy>(
    c: &mut Criterion,
    group_name: &str,
    values: &[T],
    make: impl Fn(T) -> WorkloadConfig,
) {
    let ctx = ExperimentContext::new(11, 0.2);
    let venue = ctx.venue(VenueKind::Synthetic { floors: 2 });
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &value in values {
        let workload = make(value);
        let instances = venue.instances(&workload, 2, 5);
        if instances.is_empty() {
            continue;
        }
        let queries: Vec<_> = instances.iter().map(to_query).collect();
        for variant in [VariantConfig::toe(), VariantConfig::koe()] {
            group.bench_with_input(
                BenchmarkId::new(variant.label(), value),
                &variant,
                |b, &variant| {
                    b.iter(|| {
                        for query in &queries {
                            let outcome = venue
                                .engine
                                .execute(query, &ExecOptions::with_variant(variant))
                                .expect("valid query");
                            black_box(outcome.results.len());
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_vary_k(c: &mut Criterion) {
    bench_sweep(c, "fig05_vary_k", &[1usize, 7, 11], |k| WorkloadConfig {
        k,
        ..small_workload()
    });
}

fn bench_vary_qw(c: &mut Criterion) {
    bench_sweep(c, "fig06_vary_qw", &[1usize, 3, 5], |qw_len| {
        WorkloadConfig {
            qw_len,
            ..small_workload()
        }
    });
}

fn bench_vary_eta(c: &mut Criterion) {
    bench_sweep(c, "fig08_vary_eta", &[1.4f64, 1.6, 2.0], |eta| {
        WorkloadConfig {
            eta,
            ..small_workload()
        }
    });
}

fn bench_vary_beta(c: &mut Criterion) {
    bench_sweep(c, "fig10_vary_beta", &[0.2f64, 0.6, 1.0], |beta| {
        WorkloadConfig {
            beta,
            ..small_workload()
        }
    });
}

fn bench_vary_s2t(c: &mut Criterion) {
    bench_sweep(c, "fig12_vary_s2t", &[600.0f64, 900.0, 1200.0], |s2t| {
        WorkloadConfig {
            s2t,
            eta: 1.6,
            ..small_workload()
        }
    });
}

criterion_group!(
    benches,
    bench_vary_k,
    bench_vary_qw,
    bench_vary_eta,
    bench_vary_beta,
    bench_vary_s2t
);
criterion_main!(benches);
