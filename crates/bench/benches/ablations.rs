//! Ablation benchmarks beyond the paper's own variants: the effect of the
//! prime-route pruning (Fig. 15/16 family), of the terminal-expansion
//! heuristic of Algorithm 5, of the KoE* precomputation, and of the two
//! optional extensions (soft distance constraint, popularity re-ranking),
//! all on a down-scaled venue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ikrq_bench::workload::{to_query, ExperimentContext, VenueKind};
use ikrq_core::extensions::{PopularityModel, SoftDeltaConfig, VisitCountPopularity};
use ikrq_core::{ExecOptions, VariantConfig};
use indoor_data::WorkloadConfig;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let ctx = ExperimentContext::new(23, 0.2);
    let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
    let workload = WorkloadConfig {
        s2t: 600.0,
        qw_len: 2,
        eta: 1.4,
        ..WorkloadConfig::default()
    };
    let instances = venue.instances(&workload, 2, 17);
    assert!(!instances.is_empty());
    let queries: Vec<_> = instances.iter().map(to_query).collect();

    let cases = [
        ("toe", VariantConfig::toe()),
        (
            "toe_no_prime_budgeted",
            VariantConfig::toe_no_prime().with_expansion_budget(50_000),
        ),
        (
            "toe_strict_terminal",
            VariantConfig::toe().with_strict_terminal_expansion(),
        ),
        ("koe", VariantConfig::koe()),
        ("koe_star", VariantConfig::koe_star()),
    ];

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (name, variant) in cases {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    for query in &queries {
                        let outcome = venue
                            .engine
                            .execute(query, &ExecOptions::with_variant(variant))
                            .expect("valid query");
                        black_box(outcome.metrics.stamps_expanded);
                    }
                });
            },
        );
    }
    group.finish();
}

/// The soft-distance-constraint ablation claimed in DESIGN.md: the overhead
/// of running the search against the relaxed `∆'` and re-ranking the result,
/// for increasing slack values (slack 0.0 is the hard-constraint reference).
fn bench_soft_delta(c: &mut Criterion) {
    let ctx = ExperimentContext::new(29, 0.2);
    let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
    let workload = WorkloadConfig {
        s2t: 600.0,
        qw_len: 2,
        eta: 1.4,
        ..WorkloadConfig::default()
    };
    let instances = venue.instances(&workload, 2, 31);
    let queries: Vec<_> = instances.iter().map(to_query).collect();

    let mut group = c.benchmark_group("ablation_soft_delta");
    group.sample_size(10);
    for slack in [0.0, 0.25, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("slack_{slack}")),
            &slack,
            |b, &slack| {
                b.iter(|| {
                    for query in &queries {
                        let outcome = venue
                            .engine
                            .search_soft(
                                query,
                                VariantConfig::toe(),
                                SoftDeltaConfig::with_slack(slack),
                            )
                            .expect("valid query");
                        black_box(outcome.routes.len());
                    }
                });
            },
        );
    }
    group.finish();
}

/// Popularity re-ranking ablation: the overhead of oversampling the search
/// and re-ranking by the combined score, compared against the plain search.
fn bench_popularity(c: &mut Criterion) {
    let ctx = ExperimentContext::new(31, 0.2);
    let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
    let workload = WorkloadConfig {
        s2t: 600.0,
        qw_len: 2,
        eta: 1.4,
        ..WorkloadConfig::default()
    };
    let instances = venue.instances(&workload, 2, 37);
    let queries: Vec<_> = instances.iter().map(to_query).collect();

    // Build a popularity table from the routes of a first (warm-up) pass, the
    // closest stand-in for historical mobility data.
    let mut popularity = VisitCountPopularity::new();
    for query in &queries {
        if let Ok(outcome) = venue.engine.execute(query, &ExecOptions::default()) {
            for route in outcome.results.routes() {
                for &v in route.route.legs() {
                    popularity.record(v, 1);
                }
            }
        }
    }

    let mut group = c.benchmark_group("ablation_popularity");
    group.sample_size(10);
    group.bench_function("plain_toe", |b| {
        b.iter(|| {
            for query in &queries {
                let outcome = venue
                    .engine
                    .execute(query, &ExecOptions::default())
                    .expect("valid query");
                black_box(outcome.results.len());
            }
        });
    });
    group.bench_function("popularity_reranked", |b| {
        b.iter(|| {
            for query in &queries {
                let ranked = venue
                    .engine
                    .search_with_popularity(
                        query,
                        VariantConfig::toe(),
                        &popularity,
                        PopularityModel::new(0.3),
                        2,
                    )
                    .expect("valid query");
                black_box(ranked.len());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablations, bench_soft_delta, bench_popularity);
criterion_main!(benches);
