//! HTTP-throughput mode: measure the full wire path by driving a live
//! `ikrq-server` socket with concurrent clients, instead of calling
//! [`ikrq_core::IkrqService`] in-process. This is the harness behind the
//! `http_load` binary and puts admission control, the response cache and
//! HTTP parsing on the measured path.

use crate::workload::PreparedVenue;
use ikrq_core::{SearchRequest, VariantConfig};
use ikrq_server::{serve, ServerConfig};
use indoor_data::QueryInstance;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Settings of one HTTP load run.
#[derive(Debug, Clone)]
pub struct HttpLoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// `true` reuses one keep-alive connection per client thread;
    /// `false` dials a fresh connection per request (`Connection: close`),
    /// so the close-vs-reuse throughput delta is measurable on the same
    /// harness.
    pub keep_alive: bool,
    /// Per-request override of the ToE terminal-expansion rule
    /// (`ExecOptions::strict_terminal_expansion`): `None` leaves the
    /// variant's default, `Some(_)` pins it, so the wire-path cost of
    /// strict expansion is measurable on the same harness.
    pub strict_terminal: Option<bool>,
    /// Server sizing for the run.
    pub server: ServerConfig,
}

impl Default for HttpLoadConfig {
    fn default() -> Self {
        HttpLoadConfig {
            clients: 8,
            requests_per_client: 25,
            keep_alive: false,
            strict_terminal: None,
            server: ServerConfig {
                // Load generators should observe shedding only if they
                // genuinely outrun the venue, not because of the default
                // admission bound.
                max_in_flight: 1024,
                ..ServerConfig::default()
            },
        }
    }
}

/// Aggregated outcome of one HTTP load run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HttpLoadReport {
    /// Requests attempted (clients × requests_per_client).
    pub requests: usize,
    /// `200` responses.
    pub ok: usize,
    /// `429` responses from admission control.
    pub shed: usize,
    /// Anything else (transport failures, non-200/429 statuses).
    pub failed: usize,
    /// Responses answered from the server-side cache (`x-ikrq-cache: hit`).
    pub cache_hits: usize,
    /// Whether the run reused keep-alive connections.
    pub keep_alive: bool,
    /// TCP connections dialed across all clients (== `requests` in close
    /// mode, ~= `clients` in keep-alive mode).
    pub connects: usize,
    /// Wall-clock duration of the whole run in seconds.
    pub wall_s: f64,
    /// Successful requests per wall-clock second.
    pub qps: f64,
    /// Mean per-request latency over successful requests, in milliseconds.
    pub avg_latency_ms: f64,
    /// Median per-request latency over successful requests, in
    /// milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile per-request latency over successful requests, in
    /// milliseconds (nearest-rank over the sorted samples).
    pub p99_latency_ms: f64,
    /// Slowest successful request, in milliseconds.
    pub max_latency_ms: f64,
    /// CPU cores of the host the run executed on, so every recorded
    /// number carries its hardware context.
    pub host_cores: usize,
}

/// The host's CPU core count (1 when it cannot be determined).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Nearest-rank percentile over an ascending-sorted sample set;
/// `q` in `[0, 1]`. Returns 0 for an empty set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

/// One measured client call: status + cache flag + latency.
struct Sample {
    status: u16,
    cache_hit: bool,
    latency_ms: f64,
}

fn post_search(
    addr: SocketAddr,
    client: Option<&mut ikrq_server::KeepAliveClient>,
    body: &str,
) -> std::io::Result<Sample> {
    let started = Instant::now();
    let reply = match client {
        Some(client) => client.request("POST", "/v1/search", body)?,
        None => ikrq_server::client::one_shot(addr, "POST", "/v1/search", body)?,
    };
    Ok(Sample {
        status: reply.status,
        cache_hit: reply.header("x-ikrq-cache") == Some("hit"),
        latency_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

/// Runs the same workload twice — close-per-request, then keep-alive —
/// and returns both reports, so the connect-cost share of the wire path
/// is directly measurable.
pub fn run_close_vs_keep_alive(
    venue: &PreparedVenue,
    instances: &[QueryInstance],
    variant: VariantConfig,
    config: &HttpLoadConfig,
) -> std::io::Result<(HttpLoadReport, HttpLoadReport)> {
    let close = run_http_load(
        venue,
        instances,
        variant,
        &HttpLoadConfig {
            keep_alive: false,
            ..config.clone()
        },
    )?;
    let reuse = run_http_load(
        venue,
        instances,
        variant,
        &HttpLoadConfig {
            keep_alive: true,
            ..config.clone()
        },
    )?;
    Ok((close, reuse))
}

/// Runs the same workload twice — `strict_terminal_expansion` off, then
/// on — and returns both reports, quantifying the wire-path cost of the
/// corrected ToE terminal-expansion rule (see the ROADMAP's
/// connect-heuristic item).
pub fn run_strict_terminal_comparison(
    venue: &PreparedVenue,
    instances: &[QueryInstance],
    variant: VariantConfig,
    config: &HttpLoadConfig,
) -> std::io::Result<(HttpLoadReport, HttpLoadReport)> {
    let relaxed = run_http_load(
        venue,
        instances,
        variant,
        &HttpLoadConfig {
            strict_terminal: Some(false),
            ..config.clone()
        },
    )?;
    let strict = run_http_load(
        venue,
        instances,
        variant,
        &HttpLoadConfig {
            strict_terminal: Some(true),
            ..config.clone()
        },
    )?;
    Ok((relaxed, strict))
}

/// Starts a server over the prepared venue's engine (sharing its KoE*
/// precompute), fires `clients × requests_per_client` searches at the
/// socket round-robin over the instances, and aggregates the outcome.
pub fn run_http_load(
    venue: &PreparedVenue,
    instances: &[QueryInstance],
    variant: VariantConfig,
    config: &HttpLoadConfig,
) -> std::io::Result<HttpLoadReport> {
    assert!(!instances.is_empty(), "need at least one query instance");
    let service = Arc::new(ikrq_core::IkrqService::new());
    service
        .register_engine(&venue.venue_id, Arc::clone(&venue.engine))
        .expect("fresh service accepts the venue");
    let handle = serve(service, "127.0.0.1:0", config.server.clone())?;
    let addr = handle.local_addr();
    let bodies = search_bodies(venue, instances, variant, config.strict_terminal);
    let report = drive_load(
        addr,
        &bodies,
        config.clients,
        config.requests_per_client,
        config.keep_alive,
    );
    drop(handle); // shut the server down before reporting
    Ok(report)
}

/// Serializes each instance's search request once, so the load loop
/// only moves bytes.
fn search_bodies(
    venue: &PreparedVenue,
    instances: &[QueryInstance],
    variant: VariantConfig,
    strict_terminal: Option<bool>,
) -> Vec<String> {
    instances
        .iter()
        .map(|instance| {
            let mut request: SearchRequest = venue.request(instance, variant);
            request.options.strict_terminal_expansion = strict_terminal;
            serde_json::to_string(&request).expect("requests serialize")
        })
        .collect()
}

/// Fires `clients × requests_per_client` searches at an already-running
/// server (or router) round-robin over pre-serialized bodies — the
/// measurement entry point for split-process targets the harness did not
/// start itself (`http_load --router`).
pub fn drive_external_load(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
    requests_per_client: usize,
    keep_alive: bool,
) -> HttpLoadReport {
    drive_load(addr, bodies, clients, requests_per_client, keep_alive)
}

/// Fires `clients × requests_per_client` searches at an already-running
/// server round-robin over the bodies and aggregates the outcome (the
/// measurement core shared by [`run_http_load`] and
/// [`run_connection_sweep`]).
fn drive_load(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
    requests_per_client: usize,
    keep_alive: bool,
) -> HttpLoadReport {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let outcomes: Vec<(Vec<Option<Sample>>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let bodies = &bodies;
                let next = &next;
                scope.spawn(move || {
                    let mut client = keep_alive.then(|| ikrq_server::KeepAliveClient::new(addr));
                    let samples: Vec<Option<Sample>> = (0..requests_per_client)
                        .map(|_| {
                            let index = next.fetch_add(1, Ordering::Relaxed) % bodies.len();
                            post_search(addr, client.as_mut(), &bodies[index]).ok()
                        })
                        .collect();
                    let connects = match &client {
                        Some(client) => client.connects() as usize,
                        // Close mode dials once per *completed* exchange;
                        // counting failed attempts (e.g. connection
                        // refused) as dials would skew the close-vs-reuse
                        // connect comparison.
                        None => samples.iter().filter(|s| s.is_some()).count(),
                    };
                    (samples, connects)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut report = HttpLoadReport {
        requests: clients * requests_per_client,
        ok: 0,
        shed: 0,
        failed: 0,
        cache_hits: 0,
        keep_alive,
        connects: outcomes.iter().map(|(_, connects)| connects).sum(),
        wall_s,
        qps: 0.0,
        avg_latency_ms: 0.0,
        p50_latency_ms: 0.0,
        p99_latency_ms: 0.0,
        max_latency_ms: 0.0,
        host_cores: host_cores(),
    };
    let mut latencies: Vec<f64> = Vec::new();
    for sample in outcomes.into_iter().flat_map(|(samples, _)| samples) {
        match sample {
            Some(sample) if sample.status == 200 => {
                report.ok += 1;
                report.cache_hits += usize::from(sample.cache_hit);
                latencies.push(sample.latency_ms);
                report.max_latency_ms = report.max_latency_ms.max(sample.latency_ms);
            }
            Some(sample) if sample.status == 429 => report.shed += 1,
            _ => report.failed += 1,
        }
    }
    if report.ok > 0 {
        report.avg_latency_ms = latencies.iter().sum::<f64>() / report.ok as f64;
        report.qps = report.ok as f64 / wall_s.max(1e-9);
        latencies.sort_by(|a, b| a.total_cmp(b));
        report.p50_latency_ms = percentile(&latencies, 0.50);
        report.p99_latency_ms = percentile(&latencies, 0.99);
    }
    report
}

// ---------------------------------------------------------------------
// Connection sweep: many parked keep-alive sessions, few active clients
// ---------------------------------------------------------------------

/// Settings of a parked-connection sweep: how many *idle* keep-alive
/// sessions to hold open at each step while a fixed set of active
/// clients measures throughput and latency. This is the harness that
/// demonstrates (or falsifies) the reactor claim — throughput and tail
/// latency of the active subset should not degrade as parked
/// connections grow.
#[derive(Debug, Clone)]
pub struct ConnectionSweepConfig {
    /// Parked-connection counts to measure at, ascending (established
    /// idle connections carry over from step to step; include 0 for the
    /// no-parked baseline).
    pub parked_steps: Vec<usize>,
    /// Concurrent active client threads measured at every step.
    pub active_clients: usize,
    /// Requests issued per active client per step.
    pub requests_per_client: usize,
    /// Server sizing when the sweep starts its own in-process server
    /// (`external: None`). `max_connections` and `idle_timeout` are
    /// raised as needed so the parked population itself is never shed
    /// or idle-closed mid-measurement.
    pub server: ServerConfig,
    /// Drive an already-running server (e.g. `http_load --serve` in
    /// another process) instead of starting one in-process. Halves the
    /// fd cost per parked connection — on hosts where `RLIMIT_NOFILE`
    /// cannot be raised this is the only way to reach large steps,
    /// since in-process both socket ends count against the same limit.
    pub external: Option<SocketAddr>,
}

impl Default for ConnectionSweepConfig {
    fn default() -> Self {
        ConnectionSweepConfig {
            parked_steps: vec![0, 64, 1024, 4096],
            active_clients: 8,
            requests_per_client: 50,
            server: HttpLoadConfig::default().server,
            external: None,
        }
    }
}

/// One measured step of a [`run_connection_sweep`] run.
#[derive(Debug, Clone, Serialize)]
pub struct SweepStep {
    /// Parked connections this step asked for.
    pub parked_target: usize,
    /// Idle connections actually held open during the measurement (may
    /// fall short of the target on connect/establish failures, which
    /// are logged).
    pub parked_established: usize,
    /// The active-subset measurement at this parked population.
    pub report: HttpLoadReport,
}

/// Effective fd budget of this process: the `RLIMIT_NOFILE` soft limit
/// after raising it toward the hard limit (the sweep client holds one
/// fd per parked connection, so it needs the raise just like the
/// server).
#[cfg(unix)]
fn fd_budget() -> usize {
    match netpoll::raise_nofile_limit() {
        Ok(limit) => limit.soft as usize,
        Err(_) => 1024,
    }
}

#[cfg(not(unix))]
fn fd_budget() -> usize {
    1024
}

/// Ramps idle keep-alive connections through `parked_steps`, measuring
/// the active subset at each step. Steps that do not fit the fd budget
/// are *dropped with a logged line* rather than silently truncated —
/// a sweep that quietly measured less than asked would read as "no
/// degradation at 10k" when 10k was never held.
///
/// Each idle connection is established by one `GET /v1/healthz`
/// round-trip, after which the session goes quiet and the server parks
/// it; the connection is then held open (but silent) for all remaining
/// steps.
pub fn run_connection_sweep(
    venue: &PreparedVenue,
    instances: &[QueryInstance],
    variant: VariantConfig,
    config: &ConnectionSweepConfig,
) -> std::io::Result<Vec<SweepStep>> {
    assert!(!instances.is_empty(), "need at least one query instance");
    let max_step = config.parked_steps.iter().copied().max().unwrap_or(0);
    let handle = match config.external {
        Some(_) => None,
        None => {
            let service = Arc::new(ikrq_core::IkrqService::new());
            service
                .register_engine(&venue.venue_id, Arc::clone(&venue.engine))
                .expect("fresh service accepts the venue");
            let mut server = config.server.clone();
            // The parked population must survive the whole sweep: no
            // idle-closing mid-measurement, no shedding of the ramp.
            server.idle_timeout = server.idle_timeout.max(Duration::from_secs(600));
            server.max_connections = server
                .max_connections
                .max(max_step + config.active_clients + 64);
            Some(serve(service, "127.0.0.1:0", server)?)
        }
    };
    let addr = match config.external {
        Some(addr) => addr,
        None => handle.as_ref().expect("in-process server").local_addr(),
    };
    let bodies = search_bodies(venue, instances, variant, None);

    // Both socket ends count against this process's RLIMIT_NOFILE when
    // the server is in-process; only the client end does when external.
    let fds_per_idle = if config.external.is_some() { 1 } else { 2 };
    let reserve = 256 + config.active_clients * fds_per_idle;
    let max_parked = fd_budget().saturating_sub(reserve) / fds_per_idle;

    let mut idle: Vec<ikrq_server::KeepAliveClient> = Vec::new();
    let mut steps = Vec::new();
    for &target in &config.parked_steps {
        if target > max_parked {
            eprintln!(
                "sweep: DROPPING the {target}-connection step — the fd budget caps this \
                 process at {max_parked} parked connections ({fds_per_idle} fds per idle \
                 connection here; use --external to halve the per-connection cost)"
            );
            continue;
        }
        while idle.len() < target {
            let mut client = ikrq_server::KeepAliveClient::new(addr);
            match client.request("GET", "/v1/healthz", "") {
                Ok(reply) if reply.status == 200 => idle.push(client),
                Ok(reply) => {
                    eprintln!(
                        "sweep: establish #{} got status {}; ramping stops here",
                        idle.len() + 1,
                        reply.status
                    );
                    break;
                }
                Err(error) => {
                    eprintln!(
                        "sweep: establish #{} failed ({error}); ramping stops here",
                        idle.len() + 1
                    );
                    break;
                }
            }
        }
        // Give the server a beat to park the fresh sessions (the worker
        // linger is up to 50 ms on an unloaded server).
        std::thread::sleep(Duration::from_millis(120));
        let report = drive_load(
            addr,
            &bodies,
            config.active_clients,
            config.requests_per_client,
            true,
        );
        steps.push(SweepStep {
            parked_target: target,
            parked_established: idle.len(),
            report,
        });
    }
    drop(idle);
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::VenueKind;
    use indoor_data::WorkloadConfig;

    #[test]
    fn http_load_drives_a_live_socket_and_observes_the_cache() {
        let ctx = crate::test_support::shared_context();
        let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
        let workload = WorkloadConfig {
            s2t: 600.0,
            qw_len: 2,
            ..WorkloadConfig::default()
        };
        let instances = venue.instances(&workload, 2, 17);
        assert!(!instances.is_empty());
        let config = HttpLoadConfig {
            clients: 4,
            requests_per_client: 4,
            ..HttpLoadConfig::default()
        };
        let report =
            run_http_load(&venue, &instances, VariantConfig::toe(), &config).expect("load run");
        assert_eq!(report.requests, 16);
        assert_eq!(report.ok, 16, "no shedding at max_in_flight=1024");
        assert_eq!(report.failed, 0);
        assert_eq!(report.shed, 0);
        assert!(!report.keep_alive);
        assert_eq!(report.connects, 16, "close mode dials per request");
        // 16 requests round-robin over 2 distinct bodies. A lookup can only
        // miss while no response for that body has completed yet, and at
        // most 4 requests (one per client) are ever in flight at once — so
        // per body at most 4 concurrent lookups can miss before the first
        // insert lands: >= 16 - 2*4 = 8 hits, whatever the scheduling.
        assert!(
            report.cache_hits >= 8,
            "expected >= 8 cache hits, got {}",
            report.cache_hits
        );
        assert!(report.qps > 0.0);
        assert!(report.avg_latency_ms > 0.0);
        assert!(report.max_latency_ms >= report.avg_latency_ms);
    }

    #[test]
    fn keep_alive_mode_reuses_connections_on_the_live_socket() {
        let ctx = crate::test_support::shared_context();
        let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
        let workload = WorkloadConfig {
            s2t: 600.0,
            qw_len: 2,
            ..WorkloadConfig::default()
        };
        let instances = venue.instances(&workload, 2, 17);
        let config = HttpLoadConfig {
            clients: 4,
            requests_per_client: 8,
            keep_alive: true,
            ..HttpLoadConfig::default()
        };
        let report =
            run_http_load(&venue, &instances, VariantConfig::toe(), &config).expect("load run");
        assert_eq!(report.ok, 32, "every request must succeed");
        assert_eq!(report.failed, 0);
        assert!(report.keep_alive);
        // One dial per client thread: 32 requests over 4 connections (a
        // transparent reconnect would only show up under server-side
        // recycling, which this config does not enable).
        assert_eq!(report.connects, 4, "keep-alive mode must reuse");
    }
}
