//! HTTP-throughput mode: measure the full wire path by driving a live
//! `ikrq-server` socket with concurrent clients, instead of calling
//! [`ikrq_core::IkrqService`] in-process. This is the harness behind the
//! `http_load` binary and puts admission control, the response cache and
//! HTTP parsing on the measured path.

use crate::workload::PreparedVenue;
use ikrq_core::{SearchRequest, VariantConfig};
use ikrq_server::{serve, ServerConfig};
use indoor_data::QueryInstance;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Settings of one HTTP load run.
#[derive(Debug, Clone)]
pub struct HttpLoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// `true` reuses one keep-alive connection per client thread;
    /// `false` dials a fresh connection per request (`Connection: close`),
    /// so the close-vs-reuse throughput delta is measurable on the same
    /// harness.
    pub keep_alive: bool,
    /// Server sizing for the run.
    pub server: ServerConfig,
}

impl Default for HttpLoadConfig {
    fn default() -> Self {
        HttpLoadConfig {
            clients: 8,
            requests_per_client: 25,
            keep_alive: false,
            server: ServerConfig {
                // Load generators should observe shedding only if they
                // genuinely outrun the venue, not because of the default
                // admission bound.
                max_in_flight: 1024,
                ..ServerConfig::default()
            },
        }
    }
}

/// Aggregated outcome of one HTTP load run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HttpLoadReport {
    /// Requests attempted (clients × requests_per_client).
    pub requests: usize,
    /// `200` responses.
    pub ok: usize,
    /// `429` responses from admission control.
    pub shed: usize,
    /// Anything else (transport failures, non-200/429 statuses).
    pub failed: usize,
    /// Responses answered from the server-side cache (`x-ikrq-cache: hit`).
    pub cache_hits: usize,
    /// Whether the run reused keep-alive connections.
    pub keep_alive: bool,
    /// TCP connections dialed across all clients (== `requests` in close
    /// mode, ~= `clients` in keep-alive mode).
    pub connects: usize,
    /// Wall-clock duration of the whole run in seconds.
    pub wall_s: f64,
    /// Successful requests per wall-clock second.
    pub qps: f64,
    /// Mean per-request latency over successful requests, in milliseconds.
    pub avg_latency_ms: f64,
    /// Slowest successful request, in milliseconds.
    pub max_latency_ms: f64,
}

/// One measured client call: status + cache flag + latency.
struct Sample {
    status: u16,
    cache_hit: bool,
    latency_ms: f64,
}

fn post_search(
    addr: SocketAddr,
    client: Option<&mut ikrq_server::KeepAliveClient>,
    body: &str,
) -> std::io::Result<Sample> {
    let started = Instant::now();
    let reply = match client {
        Some(client) => client.request("POST", "/v1/search", body)?,
        None => ikrq_server::client::one_shot(addr, "POST", "/v1/search", body)?,
    };
    Ok(Sample {
        status: reply.status,
        cache_hit: reply.header("x-ikrq-cache") == Some("hit"),
        latency_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

/// Runs the same workload twice — close-per-request, then keep-alive —
/// and returns both reports, so the connect-cost share of the wire path
/// is directly measurable.
pub fn run_close_vs_keep_alive(
    venue: &PreparedVenue,
    instances: &[QueryInstance],
    variant: VariantConfig,
    config: &HttpLoadConfig,
) -> std::io::Result<(HttpLoadReport, HttpLoadReport)> {
    let close = run_http_load(
        venue,
        instances,
        variant,
        &HttpLoadConfig {
            keep_alive: false,
            ..config.clone()
        },
    )?;
    let reuse = run_http_load(
        venue,
        instances,
        variant,
        &HttpLoadConfig {
            keep_alive: true,
            ..config.clone()
        },
    )?;
    Ok((close, reuse))
}

/// Starts a server over the prepared venue's engine (sharing its KoE*
/// precompute), fires `clients × requests_per_client` searches at the
/// socket round-robin over the instances, and aggregates the outcome.
pub fn run_http_load(
    venue: &PreparedVenue,
    instances: &[QueryInstance],
    variant: VariantConfig,
    config: &HttpLoadConfig,
) -> std::io::Result<HttpLoadReport> {
    assert!(!instances.is_empty(), "need at least one query instance");
    let service = Arc::new(ikrq_core::IkrqService::new());
    service
        .register_engine(&venue.venue_id, Arc::clone(&venue.engine))
        .expect("fresh service accepts the venue");
    let handle = serve(service, "127.0.0.1:0", config.server.clone())?;
    let addr = handle.local_addr();

    let bodies: Vec<String> = instances
        .iter()
        .map(|instance| {
            let request: SearchRequest = venue.request(instance, variant);
            serde_json::to_string(&request).expect("requests serialize")
        })
        .collect();

    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let outcomes: Vec<(Vec<Option<Sample>>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|_| {
                let bodies = &bodies;
                let next = &next;
                let keep_alive = config.keep_alive;
                scope.spawn(move || {
                    let mut client = keep_alive.then(|| ikrq_server::KeepAliveClient::new(addr));
                    let samples: Vec<Option<Sample>> = (0..config.requests_per_client)
                        .map(|_| {
                            let index = next.fetch_add(1, Ordering::Relaxed) % bodies.len();
                            post_search(addr, client.as_mut(), &bodies[index]).ok()
                        })
                        .collect();
                    let connects = match &client {
                        Some(client) => client.connects() as usize,
                        // Close mode dials once per *completed* exchange;
                        // counting failed attempts (e.g. connection
                        // refused) as dials would skew the close-vs-reuse
                        // connect comparison.
                        None => samples.iter().filter(|s| s.is_some()).count(),
                    };
                    (samples, connects)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();
    drop(handle); // shut the server down before reporting

    let mut report = HttpLoadReport {
        requests: config.clients * config.requests_per_client,
        ok: 0,
        shed: 0,
        failed: 0,
        cache_hits: 0,
        keep_alive: config.keep_alive,
        connects: outcomes.iter().map(|(_, connects)| connects).sum(),
        wall_s,
        qps: 0.0,
        avg_latency_ms: 0.0,
        max_latency_ms: 0.0,
    };
    let mut latency_sum = 0.0;
    for sample in outcomes.into_iter().flat_map(|(samples, _)| samples) {
        match sample {
            Some(sample) if sample.status == 200 => {
                report.ok += 1;
                report.cache_hits += usize::from(sample.cache_hit);
                latency_sum += sample.latency_ms;
                report.max_latency_ms = report.max_latency_ms.max(sample.latency_ms);
            }
            Some(sample) if sample.status == 429 => report.shed += 1,
            _ => report.failed += 1,
        }
    }
    if report.ok > 0 {
        report.avg_latency_ms = latency_sum / report.ok as f64;
        report.qps = report.ok as f64 / wall_s.max(1e-9);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::VenueKind;
    use indoor_data::WorkloadConfig;

    #[test]
    fn http_load_drives_a_live_socket_and_observes_the_cache() {
        let ctx = crate::test_support::shared_context();
        let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
        let workload = WorkloadConfig {
            s2t: 600.0,
            qw_len: 2,
            ..WorkloadConfig::default()
        };
        let instances = venue.instances(&workload, 2, 17);
        assert!(!instances.is_empty());
        let config = HttpLoadConfig {
            clients: 4,
            requests_per_client: 4,
            ..HttpLoadConfig::default()
        };
        let report =
            run_http_load(&venue, &instances, VariantConfig::toe(), &config).expect("load run");
        assert_eq!(report.requests, 16);
        assert_eq!(report.ok, 16, "no shedding at max_in_flight=1024");
        assert_eq!(report.failed, 0);
        assert_eq!(report.shed, 0);
        assert!(!report.keep_alive);
        assert_eq!(report.connects, 16, "close mode dials per request");
        // 16 requests round-robin over 2 distinct bodies. A lookup can only
        // miss while no response for that body has completed yet, and at
        // most 4 requests (one per client) are ever in flight at once — so
        // per body at most 4 concurrent lookups can miss before the first
        // insert lands: >= 16 - 2*4 = 8 hits, whatever the scheduling.
        assert!(
            report.cache_hits >= 8,
            "expected >= 8 cache hits, got {}",
            report.cache_hits
        );
        assert!(report.qps > 0.0);
        assert!(report.avg_latency_ms > 0.0);
        assert!(report.max_latency_ms >= report.avg_latency_ms);
    }

    #[test]
    fn keep_alive_mode_reuses_connections_on_the_live_socket() {
        let ctx = crate::test_support::shared_context();
        let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
        let workload = WorkloadConfig {
            s2t: 600.0,
            qw_len: 2,
            ..WorkloadConfig::default()
        };
        let instances = venue.instances(&workload, 2, 17);
        let config = HttpLoadConfig {
            clients: 4,
            requests_per_client: 8,
            keep_alive: true,
            ..HttpLoadConfig::default()
        };
        let report =
            run_http_load(&venue, &instances, VariantConfig::toe(), &config).expect("load run");
        assert_eq!(report.ok, 32, "every request must succeed");
        assert_eq!(report.failed, 0);
        assert!(report.keep_alive);
        // One dial per client thread: 32 requests over 4 connections (a
        // transparent reconnect would only show up under server-side
        // recycling, which this config does not enable).
        assert_eq!(report.connects, 4, "keep-alive mode must reuse");
    }
}
