//! Running query instances against algorithm variants and aggregating the
//! measurements the way §V-A1 does: each instance is run several times and
//! the average per-instance cost is reported.

use crate::workload::PreparedVenue;
use ikrq_core::{SearchOutcome, SearchRequest, VariantConfig};
use indoor_data::QueryInstance;
use serde::{Deserialize, Serialize};

/// Aggregated measurements of one algorithm variant over a set of query
/// instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateResult {
    /// Variant label (Table III notation).
    pub label: String,
    /// Average running time per query instance, in milliseconds.
    pub avg_time_ms: f64,
    /// Average peak memory per query instance, in mebibytes.
    pub avg_memory_mb: f64,
    /// Average number of expanded stamps.
    pub avg_stamps_expanded: f64,
    /// Average number of complete routes found.
    pub avg_complete_routes: f64,
    /// Average homogeneous rate of the returned top-k routes.
    pub avg_homogeneous_rate: f64,
    /// Average best ranking score.
    pub avg_best_score: f64,
    /// Number of instances that ran successfully.
    pub instances: usize,
    /// Whether any run exhausted its expansion budget.
    pub budget_exhausted: bool,
}

/// Per-run settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSettings {
    /// Runs per instance (the paper uses 5).
    pub runs_per_instance: usize,
    /// Execute each round of instances through
    /// [`ikrq_core::IkrqService::search_batch`] (parallel across cores)
    /// instead of sequential [`ikrq_core::IkrqService::search`] calls.
    /// Off by default: parallel execution maximises throughput but lets CPU
    /// contention inflate the per-query timings the paper's figures report.
    pub parallel_batches: bool,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            runs_per_instance: 5,
            parallel_batches: false,
        }
    }
}

/// The experiment runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runner {
    /// Run settings.
    pub settings: RunSettings,
}

impl Runner {
    /// Creates a runner with the given number of runs per instance.
    pub fn new(runs_per_instance: usize) -> Self {
        Runner {
            settings: RunSettings {
                runs_per_instance,
                ..RunSettings::default()
            },
        }
    }

    /// Creates a runner that fans each round of instances out through
    /// `search_batch`.
    pub fn new_parallel(runs_per_instance: usize) -> Self {
        Runner {
            settings: RunSettings {
                runs_per_instance,
                parallel_batches: true,
            },
        }
    }

    /// Executes one round: every instance once, through the venue's
    /// service. Responses come back in request order either way; the
    /// parallel path fans out over cores.
    fn run_round(
        &self,
        venue: &PreparedVenue,
        requests: &[SearchRequest],
    ) -> Vec<Option<SearchOutcome>> {
        if self.settings.parallel_batches {
            venue
                .service
                .search_batch(requests)
                .into_iter()
                .map(|response| response.ok().map(|r| r.to_outcome()))
                .collect()
        } else {
            requests
                .iter()
                .map(|request| {
                    venue
                        .service
                        .search(request)
                        .ok()
                        .map(|response| response.to_outcome())
                })
                .collect()
        }
    }

    /// Runs one variant over all instances and aggregates the measurements.
    pub fn run_variant(
        &self,
        venue: &PreparedVenue,
        instances: &[QueryInstance],
        variant: VariantConfig,
    ) -> AggregateResult {
        let mut time_ms = 0.0;
        let mut memory_mb = 0.0;
        let mut stamps = 0.0;
        let mut complete = 0.0;
        let mut homogeneous = 0.0;
        let mut best_score = 0.0;
        let mut ok = 0usize;
        let mut budget_exhausted = false;
        let runs = self.settings.runs_per_instance.max(1);

        let requests: Vec<SearchRequest> = instances
            .iter()
            .map(|instance| venue.request(instance, variant))
            .collect();
        // rounds[run][instance]: per-instance outcome of one round.
        let rounds: Vec<Vec<Option<SearchOutcome>>> = (0..runs)
            .map(|_| self.run_round(venue, &requests))
            .collect();

        for index in 0..requests.len() {
            let mut instance_time = 0.0;
            let mut instance_memory = 0.0;
            let mut last: Option<&SearchOutcome> = None;
            let mut failed = false;
            for round in &rounds {
                match &round[index] {
                    Some(outcome) => {
                        instance_time += outcome.metrics.elapsed_millis();
                        instance_memory += outcome.metrics.peak_memory_mb();
                        budget_exhausted |= outcome.metrics.budget_exhausted;
                        last = Some(outcome);
                    }
                    None => {
                        failed = true;
                        break;
                    }
                }
            }
            let Some(outcome) = last else { continue };
            if failed {
                continue;
            }
            ok += 1;
            time_ms += instance_time / runs as f64;
            memory_mb += instance_memory / runs as f64;
            stamps += outcome.metrics.stamps_expanded as f64;
            complete += outcome.metrics.complete_routes as f64;
            homogeneous += outcome.results.homogeneous_rate();
            best_score += outcome.results.best().map(|r| r.score).unwrap_or(0.0);
        }

        let denom = ok.max(1) as f64;
        AggregateResult {
            label: variant.label(),
            avg_time_ms: time_ms / denom,
            avg_memory_mb: memory_mb / denom,
            avg_stamps_expanded: stamps / denom,
            avg_complete_routes: complete / denom,
            avg_homogeneous_rate: homogeneous / denom,
            avg_best_score: best_score / denom,
            instances: ok,
            budget_exhausted,
        }
    }

    /// Runs several variants over the same instances.
    pub fn run_variants(
        &self,
        venue: &PreparedVenue,
        instances: &[QueryInstance],
        variants: &[VariantConfig],
    ) -> Vec<AggregateResult> {
        variants
            .iter()
            .map(|&variant| self.run_variant(venue, instances, variant))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::VenueKind;
    use indoor_data::WorkloadConfig;

    #[test]
    fn runner_aggregates_over_instances_and_variants() {
        let ctx = crate::test_support::shared_context();
        let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
        let workload = WorkloadConfig {
            s2t: 600.0,
            qw_len: 2,
            ..WorkloadConfig::default()
        };
        let instances = venue.instances(&workload, 2, 11);
        assert!(!instances.is_empty());
        let runner = Runner::new(1);
        let results = runner.run_variants(
            &venue,
            &instances,
            &[VariantConfig::toe(), VariantConfig::koe()],
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.instances > 0, "{}", r.label);
            assert!(r.avg_time_ms >= 0.0);
            assert!(r.avg_memory_mb > 0.0);
            assert!(r.avg_best_score > 0.0);
        }
        assert_eq!(results[0].label, "ToE");
        assert_eq!(results[1].label, "KoE");
    }

    #[test]
    fn parallel_batches_agree_with_sequential_execution() {
        let ctx = crate::test_support::shared_context();
        let venue = ctx.venue(VenueKind::Synthetic { floors: 1 });
        let workload = WorkloadConfig {
            s2t: 600.0,
            qw_len: 2,
            ..WorkloadConfig::default()
        };
        let instances = venue.instances(&workload, 4, 23);
        let sequential = Runner::new(1).run_variant(&venue, &instances, VariantConfig::toe());
        let parallel =
            Runner::new_parallel(1).run_variant(&venue, &instances, VariantConfig::toe());
        // Timing and memory differ run to run; the search outcomes must not.
        assert_eq!(sequential.instances, parallel.instances);
        assert_eq!(sequential.avg_stamps_expanded, parallel.avg_stamps_expanded);
        assert_eq!(sequential.avg_complete_routes, parallel.avg_complete_routes);
        assert_eq!(sequential.avg_best_score, parallel.avg_best_score);
        assert_eq!(
            sequential.avg_homogeneous_rate,
            parallel.avg_homogeneous_rate
        );
    }
}
