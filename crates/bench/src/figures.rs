//! One reproduction module per figure of the paper's evaluation (§V).
//!
//! Every figure is a function `run(ctx) -> FigureReport` that generates the
//! workload prescribed by the paper for that figure, runs the relevant
//! algorithm variants, and returns the measured series. The registry at the
//! bottom maps figure identifiers to these functions so the `figures` binary
//! can regenerate any subset.

use crate::report::{FigureReport, Series};
use crate::runner::Runner;
use crate::workload::{ExperimentContext, VenueKind};
use ikrq_core::VariantConfig;
use indoor_data::{ExperimentDefaults, ParameterSpace, WorkloadConfig};

/// The variants plotted in Figs. 4–9 and 17–19 (everything except ToE\P and
/// KoE*, which have dedicated figures).
fn main_variants() -> Vec<VariantConfig> {
    vec![
        VariantConfig::toe(),
        VariantConfig::toe_no_distance(),
        VariantConfig::toe_no_kbound(),
        VariantConfig::koe(),
        VariantConfig::koe_no_distance(),
        VariantConfig::koe_no_kbound(),
    ]
}

/// Measurement selector: which aggregate value a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    TimeMs,
    MemoryMb,
    HomogeneousRate,
}

impl Metric {
    fn label(self) -> &'static str {
        match self {
            Metric::TimeMs => "ms",
            Metric::MemoryMb => "MB",
            Metric::HomogeneousRate => "homogeneous rate",
        }
    }

    fn pick(self, r: &crate::runner::AggregateResult) -> f64 {
        match self {
            Metric::TimeMs => r.avg_time_ms,
            Metric::MemoryMb => r.avg_memory_mb,
            Metric::HomogeneousRate => r.avg_homogeneous_rate,
        }
    }
}

/// Shared sweep driver: for every x-axis value, build the workload, generate
/// the instances, run all variants and collect the chosen metric.
#[allow(clippy::too_many_arguments)]
fn sweep<X: std::fmt::Display + Copy>(
    ctx: &ExperimentContext,
    id: &str,
    title: &str,
    x_label: &str,
    metric: Metric,
    venue_kind: VenueKind,
    xs: &[X],
    variants: &[VariantConfig],
    make_workload: impl Fn(X) -> WorkloadConfig,
) -> FigureReport {
    let mut report = FigureReport::new(id, title, x_label, metric.label());
    report.x_values = xs.iter().map(|x| x.to_string()).collect();
    let mut columns: Vec<Vec<Option<f64>>> = vec![Vec::new(); variants.len()];
    let venue = ctx.venue(venue_kind);
    let runner = Runner::new(ctx.runs_per_instance());
    for &x in xs {
        let workload = make_workload(x);
        let instances = venue.instances(&workload, ctx.instances_per_setting(), ctx.seed ^ 0x5eed);
        if instances.is_empty() {
            for column in &mut columns {
                column.push(None);
            }
            report.note(format!("no valid instances for {x_label} = {x}"));
            continue;
        }
        let results = runner.run_variants(&venue, &instances, variants);
        for (column, result) in columns.iter_mut().zip(&results) {
            column.push(Some(metric.pick(result)));
            if result.budget_exhausted {
                report.note(format!(
                    "{} hit its expansion budget at {x_label} = {x}",
                    result.label
                ));
            }
        }
    }
    for (variant, column) in variants.iter().zip(columns) {
        report.series.push(Series::new(variant.label(), column));
    }
    report.note(format!(
        "{} instances per setting, {} runs per instance (paper: 10 × 5)",
        ctx.instances_per_setting(),
        ctx.runs_per_instance()
    ));
    report
}

fn defaults() -> ExperimentDefaults {
    ExperimentDefaults::default()
}

fn real_defaults() -> ExperimentDefaults {
    ExperimentDefaults::real_data()
}

fn synthetic() -> VenueKind {
    VenueKind::Synthetic {
        floors: defaults().floors,
    }
}

/// Fig. 4: running time of all algorithms under default parameters.
pub fn fig04(ctx: &ExperimentContext) -> FigureReport {
    let mut variants = main_variants();
    variants.push(VariantConfig::koe_star());
    let mut report = sweep(
        ctx,
        "fig04",
        "Running time under default parameters",
        "setting",
        Metric::TimeMs,
        synthetic(),
        &["default"],
        &variants,
        |_| defaults().into(),
    );
    report.note("one column per algorithm of Table III (ToE\\P is reported in fig15)");
    report
}

/// Fig. 5: running time vs. k.
pub fn fig05(ctx: &ExperimentContext) -> FigureReport {
    let ks = ParameterSpace::default().k;
    sweep(
        ctx,
        "fig05",
        "Running time vs. k",
        "k",
        Metric::TimeMs,
        synthetic(),
        &ks,
        &main_variants(),
        |k| WorkloadConfig {
            k,
            ..defaults().into()
        },
    )
}

/// Fig. 6: running time vs. |QW|.
pub fn fig06(ctx: &ExperimentContext) -> FigureReport {
    let lens = ParameterSpace::default().qw_len;
    sweep(
        ctx,
        "fig06",
        "Running time vs. |QW|",
        "|QW|",
        Metric::TimeMs,
        synthetic(),
        &lens,
        &main_variants(),
        |qw_len| WorkloadConfig {
            qw_len,
            ..defaults().into()
        },
    )
}

/// Fig. 7: memory vs. |QW|.
pub fn fig07(ctx: &ExperimentContext) -> FigureReport {
    let lens = ParameterSpace::default().qw_len;
    sweep(
        ctx,
        "fig07",
        "Memory vs. |QW|",
        "|QW|",
        Metric::MemoryMb,
        synthetic(),
        &lens,
        &main_variants(),
        |qw_len| WorkloadConfig {
            qw_len,
            ..defaults().into()
        },
    )
}

/// Fig. 8: running time vs. η.
pub fn fig08(ctx: &ExperimentContext) -> FigureReport {
    let etas = vec![1.6, 1.8, 2.0];
    sweep(
        ctx,
        "fig08",
        "Running time vs. eta",
        "eta",
        Metric::TimeMs,
        synthetic(),
        &etas,
        &main_variants(),
        |eta| WorkloadConfig {
            eta,
            ..defaults().into()
        },
    )
}

/// Fig. 9: memory vs. η.
pub fn fig09(ctx: &ExperimentContext) -> FigureReport {
    let etas = vec![1.6, 1.8, 2.0];
    sweep(
        ctx,
        "fig09",
        "Memory vs. eta",
        "eta",
        Metric::MemoryMb,
        synthetic(),
        &etas,
        &main_variants(),
        |eta| WorkloadConfig {
            eta,
            ..defaults().into()
        },
    )
}

/// Fig. 10: running time vs. β (ToE and KoE only).
pub fn fig10(ctx: &ExperimentContext) -> FigureReport {
    let betas = ParameterSpace::default().beta;
    sweep(
        ctx,
        "fig10",
        "Running time vs. beta",
        "beta",
        Metric::TimeMs,
        synthetic(),
        &betas,
        &[VariantConfig::toe(), VariantConfig::koe()],
        |beta| WorkloadConfig {
            beta,
            ..defaults().into()
        },
    )
}

/// Fig. 11: running time vs. number of floors (ToE and KoE only).
pub fn fig11(ctx: &ExperimentContext) -> FigureReport {
    let floors = ParameterSpace::default().floors;
    let mut report = FigureReport::new(
        "fig11",
        "Running time vs. number of floors",
        "floors",
        Metric::TimeMs.label(),
    );
    report.x_values = floors.iter().map(|f| f.to_string()).collect();
    let variants = [VariantConfig::toe(), VariantConfig::koe()];
    let mut columns: Vec<Vec<Option<f64>>> = vec![Vec::new(); variants.len()];
    let runner = Runner::new(ctx.runs_per_instance());
    for &floor_count in &floors {
        let venue = ctx.venue(VenueKind::Synthetic {
            floors: floor_count,
        });
        let instances = venue.instances(
            &defaults().into(),
            ctx.instances_per_setting(),
            ctx.seed ^ 0xf100,
        );
        let results = runner.run_variants(&venue, &instances, &variants);
        for (column, result) in columns.iter_mut().zip(&results) {
            column.push(Some(result.avg_time_ms));
        }
    }
    for (variant, column) in variants.iter().zip(columns) {
        report.series.push(Series::new(variant.label(), column));
    }
    report.note(format!(
        "{} instances per setting, {} runs per instance",
        ctx.instances_per_setting(),
        ctx.runs_per_instance()
    ));
    report
}

/// Fig. 12: running time vs. δs2t with η fixed to 1.6 (ToE and KoE only).
pub fn fig12(ctx: &ExperimentContext) -> FigureReport {
    let s2ts = vec![1100.0, 1300.0, 1500.0, 1700.0, 1900.0];
    sweep(
        ctx,
        "fig12",
        "Running time vs. s2t distance",
        "s2t",
        Metric::TimeMs,
        synthetic(),
        &s2ts,
        &[VariantConfig::toe(), VariantConfig::koe()],
        |s2t| WorkloadConfig {
            s2t,
            eta: 1.6,
            ..defaults().into()
        },
    )
}

/// Fig. 13: running time of KoE vs. KoE* across η.
pub fn fig13(ctx: &ExperimentContext) -> FigureReport {
    let etas = vec![1.2, 1.4, 1.6, 1.8, 2.0];
    sweep(
        ctx,
        "fig13",
        "Running time of KoE vs. KoE*",
        "eta",
        Metric::TimeMs,
        synthetic(),
        &etas,
        &[VariantConfig::koe(), VariantConfig::koe_star()],
        |eta| WorkloadConfig {
            eta,
            ..defaults().into()
        },
    )
}

/// Fig. 14: memory of KoE vs. KoE* across η.
pub fn fig14(ctx: &ExperimentContext) -> FigureReport {
    let etas = vec![1.2, 1.4, 1.6, 1.8, 2.0];
    sweep(
        ctx,
        "fig14",
        "Memory of KoE vs. KoE*",
        "eta",
        Metric::MemoryMb,
        synthetic(),
        &etas,
        &[VariantConfig::koe(), VariantConfig::koe_star()],
        |eta| WorkloadConfig {
            eta,
            ..defaults().into()
        },
    )
}

/// Fig. 15: running time of ToE vs. ToE\P across η.
pub fn fig15(ctx: &ExperimentContext) -> FigureReport {
    let etas = vec![1.4, 1.6, 1.8, 2.0];
    let mut report = sweep(
        ctx,
        "fig15",
        "Running time of ToE vs. ToE\\P",
        "eta",
        Metric::TimeMs,
        synthetic(),
        &etas,
        &[VariantConfig::toe(), VariantConfig::toe_no_prime()],
        |eta| WorkloadConfig {
            eta,
            ..defaults().into()
        },
    );
    report.note("ToE\\P runs under an expansion budget; budget-exhausted points are lower bounds");
    report
}

/// Fig. 16: homogeneous rate of ToE\P vs. k.
pub fn fig16(ctx: &ExperimentContext) -> FigureReport {
    let ks = vec![1usize, 3, 5, 7, 9, 11, 13, 15];
    sweep(
        ctx,
        "fig16",
        "Homogeneous rate of ToE\\P vs. k",
        "k",
        Metric::HomogeneousRate,
        synthetic(),
        &ks,
        &[VariantConfig::toe_no_prime()],
        |k| WorkloadConfig {
            k,
            ..defaults().into()
        },
    )
}

/// Fig. 17: running time vs. |QW| on the real venue.
pub fn fig17(ctx: &ExperimentContext) -> FigureReport {
    let lens = ParameterSpace::default().qw_len;
    sweep(
        ctx,
        "fig17",
        "Real data: running time vs. |QW|",
        "|QW|",
        Metric::TimeMs,
        VenueKind::Real,
        &lens,
        &main_variants(),
        |qw_len| WorkloadConfig {
            qw_len,
            ..real_defaults().into()
        },
    )
}

/// Fig. 18: memory vs. |QW| on the real venue.
pub fn fig18(ctx: &ExperimentContext) -> FigureReport {
    let lens = ParameterSpace::default().qw_len;
    sweep(
        ctx,
        "fig18",
        "Real data: memory vs. |QW|",
        "|QW|",
        Metric::MemoryMb,
        VenueKind::Real,
        &lens,
        &main_variants(),
        |qw_len| WorkloadConfig {
            qw_len,
            ..real_defaults().into()
        },
    )
}

/// Fig. 19: running time vs. η on the real venue.
pub fn fig19(ctx: &ExperimentContext) -> FigureReport {
    let etas = vec![1.2, 1.4, 1.6, 1.8, 2.0, 2.2];
    sweep(
        ctx,
        "fig19",
        "Real data: running time vs. eta",
        "eta",
        Metric::TimeMs,
        VenueKind::Real,
        &etas,
        &main_variants(),
        |eta| WorkloadConfig {
            eta,
            ..real_defaults().into()
        },
    )
}

/// Fig. 20: homogeneous rate of ToE\P vs. |QW| on the real venue.
pub fn fig20(ctx: &ExperimentContext) -> FigureReport {
    let lens = ParameterSpace::default().qw_len;
    sweep(
        ctx,
        "fig20",
        "Real data: homogeneous rate of ToE\\P vs. |QW|",
        "|QW|",
        Metric::HomogeneousRate,
        VenueKind::Real,
        &lens,
        &[VariantConfig::toe_no_prime()],
        |qw_len| WorkloadConfig {
            qw_len,
            ..real_defaults().into()
        },
    )
}

/// One registry row: figure identifier, paper reference, runner function.
pub type FigureEntry = (
    &'static str,
    &'static str,
    fn(&ExperimentContext) -> FigureReport,
);

/// The figure registry: identifier, paper reference and runner function.
pub fn registry() -> Vec<FigureEntry> {
    vec![
        (
            "fig04",
            "Fig. 4: default parameters",
            fig04 as fn(&ExperimentContext) -> FigureReport,
        ),
        ("fig05", "Fig. 5: running time vs. k", fig05),
        ("fig06", "Fig. 6: running time vs. |QW|", fig06),
        ("fig07", "Fig. 7: memory vs. |QW|", fig07),
        ("fig08", "Fig. 8: running time vs. eta", fig08),
        ("fig09", "Fig. 9: memory vs. eta", fig09),
        ("fig10", "Fig. 10: running time vs. beta", fig10),
        ("fig11", "Fig. 11: running time vs. floors", fig11),
        ("fig12", "Fig. 12: running time vs. s2t", fig12),
        ("fig13", "Fig. 13: KoE vs. KoE* time", fig13),
        ("fig14", "Fig. 14: KoE vs. KoE* memory", fig14),
        ("fig15", "Fig. 15: ToE vs. ToE\\P time", fig15),
        ("fig16", "Fig. 16: ToE\\P homogeneous rate vs. k", fig16),
        ("fig17", "Fig. 17: real data, time vs. |QW|", fig17),
        ("fig18", "Fig. 18: real data, memory vs. |QW|", fig18),
        ("fig19", "Fig. 19: real data, time vs. eta", fig19),
        (
            "fig20",
            "Fig. 20: real data, ToE\\P homogeneous rate",
            fig20,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_figure() {
        let ids: Vec<_> = registry().iter().map(|(id, _, _)| *id).collect();
        for expected in (4..=20).map(|i| format!("fig{i:02}")) {
            assert!(ids.contains(&expected.as_str()), "missing {expected}");
        }
        assert_eq!(ids.len(), 17);
    }

    /// The expensive coverage sweep: actually run every registered figure.
    /// Even at the shared context's reduced scale this builds the 5-floor
    /// synthetic mall and the real-venue simulation and runs every variant
    /// (including the budget-bounded ToE\P figures) — expect on the order
    /// of an hour even in release, so it only runs on request:
    /// `cargo test --release -p ikrq-bench --lib -- --ignored`.
    /// For a quick smoke of individual figures use the binary instead:
    /// `cargo run --release -p ikrq-bench --bin figures -- --quick --fig fig05`.
    #[test]
    #[ignore = "runs every figure end-to-end (~1 h release); use the figures binary for smoke runs"]
    fn every_registered_figure_produces_a_populated_report() {
        let ctx = crate::test_support::shared_context();
        for (id, description, run) in registry() {
            let report = run(ctx);
            assert_eq!(report.id, id, "{description}");
            assert!(!report.series.is_empty(), "{id} has no series");
            assert!(!report.x_values.is_empty(), "{id} has no x axis");
            for series in &report.series {
                assert_eq!(
                    series.values.len(),
                    report.x_values.len(),
                    "{id}/{} is ragged",
                    series.name
                );
            }
        }
    }
}
