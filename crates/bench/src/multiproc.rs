//! Split-process harness: spawn `http_load --serve` backends as child
//! processes and guard their lifetime.
//!
//! The scale-out measurement (`http_load --router N`) needs N independent
//! server *processes* — in-process shards would share one allocator and
//! scheduler and prove nothing about horizontal scaling. Children are
//! wrapped in [`ChildGuard`], whose `Drop` kills and reaps the process:
//! without it, a panic anywhere in the parent (an assert in the
//! verification pass, a poisoned lock) unwinds past the children and
//! leaves orphaned servers holding their ports — the next run then fails
//! to bind, or worse, measures against a stale binary.

use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills (and reaps) a child process when dropped. Drop runs on panic
/// unwind too, which is the whole point: a crashed harness must not leak
/// serving children.
pub struct ChildGuard {
    child: Option<Child>,
}

impl ChildGuard {
    /// Takes ownership of a spawned child.
    pub fn new(child: Child) -> ChildGuard {
        ChildGuard { child: Some(child) }
    }

    /// The child's OS process id.
    pub fn id(&self) -> u32 {
        self.child.as_ref().expect("guard holds a child").id()
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            // Already-exited children make kill() a no-op error; either
            // way wait() reaps the zombie so the pid is actually released.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A serving child process plus the address it bound.
pub struct ChildServer {
    guard: ChildGuard,
    addr: SocketAddr,
}

impl ChildServer {
    /// Spawns `command` (typically `current_exe --serve 127.0.0.1:0 ...`),
    /// reads its stderr until the `http://HOST:PORT` listening line, and
    /// polls `GET /v1/healthz` until the child answers. The child is
    /// killed on drop — including a panic unwind in the caller.
    pub fn spawn(mut command: Command, timeout: Duration) -> io::Result<ChildServer> {
        command
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = command.spawn()?;
        let stderr = child.stderr.take().expect("stderr was piped");
        let guard = ChildGuard::new(child);
        let mut reader = BufReader::new(stderr);
        let deadline = Instant::now() + timeout;

        let addr = loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "child exited before printing its listening line",
                ));
            }
            if let Some(addr) = parse_listening_line(&line) {
                break addr;
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "child did not print a listening line in time",
                ));
            }
        };
        // Keep draining the pipe so the child can never block on a full
        // stderr buffer.
        std::thread::spawn(move || {
            let _ = io::copy(&mut reader, &mut io::sink());
        });

        // The listening line is printed after bind, but give the worker
        // pool a beat if needed.
        loop {
            match ikrq_server::client::one_shot(addr, "GET", "/v1/healthz", "") {
                Ok(reply) if reply.status == 200 => break,
                _ if Instant::now() > deadline => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("child on {addr} never answered /v1/healthz"),
                    ));
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // The guard is moved into the ChildServer only once the child is
        // known-healthy; every early return above kills it.
        Ok(ChildServer { guard, addr })
    }

    /// The address the child bound (resolves an ephemeral `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The child's OS process id.
    pub fn id(&self) -> u32 {
        self.guard.id()
    }
}

/// Extracts `HOST:PORT` from a `... http://HOST:PORT ...` listening line.
fn parse_listening_line(line: &str) -> Option<SocketAddr> {
    let rest = line.split("http://").nth(1)?;
    let end = rest
        .find(|c: char| c.is_whitespace() || c == '(' || c == '/')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sleeping_child() -> Child {
        Command::new("sleep")
            .arg("30")
            .stdin(Stdio::null())
            .spawn()
            .expect("spawn sleep")
    }

    #[cfg(target_os = "linux")]
    fn alive(pid: u32) -> bool {
        std::path::Path::new(&format!("/proc/{pid}")).exists()
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn guard_kills_the_child_on_drop() {
        let child = sleeping_child();
        let pid = child.id();
        let guard = ChildGuard::new(child);
        assert!(alive(pid));
        let started = Instant::now();
        drop(guard);
        // kill + reap, not a 30 s natural-exit wait.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(!alive(pid), "child {pid} must be gone after drop");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn guard_kills_the_child_on_panic_unwind() {
        let child = sleeping_child();
        let pid = child.id();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = ChildGuard::new(child);
            panic!("harness crashed mid-measurement");
        }));
        assert!(result.is_err());
        assert!(
            !alive(pid),
            "a panic in the harness must not leak serving child {pid}"
        );
    }

    #[test]
    fn listening_lines_parse() {
        assert_eq!(
            parse_listening_line(
                "http_load serving venue `x` on http://127.0.0.1:8080 (reactor: true)\n"
            ),
            Some("127.0.0.1:8080".parse().unwrap())
        );
        assert_eq!(
            parse_listening_line("ikrq-server listening on http://127.0.0.1:9/ path\n"),
            Some("127.0.0.1:9".parse().unwrap())
        );
        assert_eq!(parse_listening_line("no address here\n"), None);
    }
}
