//! Figure/series reporting: the data structures the figure modules fill in,
//! plus CSV and Markdown emitters used by the `figures` binary and by
//! `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One data series of a figure: a named curve over the x-axis values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name of the series (usually a variant label such as `ToE\D`).
    pub name: String,
    /// One y-value per x-axis tick (`None` when the point was not measured,
    /// e.g. a budget-exhausted ToE\P setting).
    pub values: Vec<Option<f64>>,
}

impl Series {
    /// Creates a series from measured values.
    pub fn new(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }
}

/// The reproduction of one paper figure (or table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureReport {
    /// Identifier, e.g. `fig05`.
    pub id: String,
    /// Paper caption, e.g. "Running time vs. k".
    pub title: String,
    /// Name of the x-axis parameter.
    pub x_label: String,
    /// Unit of the y-axis (e.g. "ms" or "MB").
    pub y_label: String,
    /// The x-axis tick labels.
    pub x_values: Vec<String>,
    /// The measured series.
    pub series: Vec<Series>,
    /// Free-form notes (scaled instance counts, budget exhaustion, ...).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_values: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the report as CSV (one row per x value, one column per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = std::iter::once(self.x_label.clone())
            .chain(self.series.iter().map(|s| s.name.clone()))
            .collect();
        let _ = writeln!(out, "{}", header.join(","));
        for (i, x) in self.x_values.iter().enumerate() {
            let mut row = vec![x.clone()];
            for series in &self.series {
                row.push(
                    series
                        .values
                        .get(i)
                        .copied()
                        .flatten()
                        .map(|v| format!("{v:.4}"))
                        .unwrap_or_default(),
                );
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders the report as a Markdown table with its title and notes.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {} ({})\n", self.id, self.title, self.y_label);
        let header: Vec<String> = std::iter::once(self.x_label.clone())
            .chain(self.series.iter().map(|s| s.name.clone()))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let _ = writeln!(out, "|{}|", vec!["---"; header.len()].join("|"));
        for (i, x) in self.x_values.iter().enumerate() {
            let mut row = vec![x.clone()];
            for series in &self.series {
                row.push(
                    series
                        .values
                        .get(i)
                        .copied()
                        .flatten()
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "—".to_string()),
                );
            }
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for note in &self.notes {
                let _ = writeln!(out, "* {note}");
            }
        }
        out
    }

    /// Writes the CSV and Markdown renderings into `dir` as
    /// `<id>.csv` / `<id>.md`, plus the raw JSON as `<id>.json`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        let json = serde_json::to_string_pretty(self).expect("report serialises");
        fs::write(dir.join(format!("{}.json", self.id)), json)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut report = FigureReport::new("fig05", "Running time vs. k", "k", "ms");
        report.x_values = vec!["1".into(), "3".into(), "5".into()];
        report
            .series
            .push(Series::new("ToE", vec![Some(10.0), Some(12.0), Some(13.5)]));
        report
            .series
            .push(Series::new("KoE", vec![Some(9.0), None, Some(14.0)]));
        report.note("quick mode");
        report
    }

    #[test]
    fn csv_rendering_contains_all_cells() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("k,ToE,KoE"));
        assert!(csv.contains("1,10.0000,9.0000"));
        assert!(csv.contains("3,12.0000,"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn markdown_rendering_has_header_and_notes() {
        let md = sample().to_markdown();
        assert!(md.contains("### fig05"));
        assert!(md.contains("| k | ToE | KoE |"));
        assert!(md.contains("| 3 | 12.00 | — |"));
        assert!(md.contains("* quick mode"));
    }

    #[test]
    fn write_to_creates_three_files() {
        let dir = std::env::temp_dir().join(format!("ikrq-report-test-{}", std::process::id()));
        sample().write_to(&dir).unwrap();
        for ext in ["csv", "md", "json"] {
            assert!(dir.join(format!("fig05.{ext}")).exists());
        }
        let json = std::fs::read_to_string(dir.join("fig05.json")).unwrap();
        let parsed: FigureReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, sample());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
