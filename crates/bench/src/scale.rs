//! Venue-size scaling sweep: index-accelerated vs linear-scan engines on
//! mega venues of 10²–10⁵ partitions.
//!
//! For each venue size the sweep builds one [`indoor_data::mega_venue`],
//! hosts it twice — once per [`IndexMode`] — and reports:
//!
//! * queries per second for both engines (same instances, same variant),
//! * the candidate-set fraction (keyword-matching partitions over all
//!   partitions) that the inverted index enumerates directly,
//! * index build time and estimated index bytes,
//! * per-variant peak search memory on both paths,
//! * KoE* lazy-row materialization (rows touched vs total doors), showing
//!   the incremental distance precompute staying sublinear.
//!
//! Every instance is answered by both engines and the responses are
//! compared byte-for-byte (timings and memory metrics excluded), so the
//! sweep doubles as a large-scale equivalence check.
//!
//! Each point also walks the full persistence round trip — document
//! round-trip rebuild, pre-indexed binary save, cold load with index
//! adoption — and splits the cold-start wall time into
//! generate / space-build / index-build / save / load phases, so the
//! `index_build_ms ≥ 5 × index_load_ms` serving criterion is measured in
//! the same run that checks loaded-engine responses for byte-identity.
//!
//! The v2 columnar format gets the same treatment for the document body:
//! each point saves a columnar file, cold-loads it with
//! [`binary::load_venue_model`], and splits that load into its *doc-decode*
//! (bytes → columns) and *model-adopt* (columns → model) phases. The
//! document criterion compares their sum against the v1-style
//! record-rebuild (`VenueDocument::build`), and the v2-loaded engine's
//! responses join the byte-identity check.

use crate::workload::to_query;
use ikrq_core::{ExecOptions, IkrqEngine, IkrqService, IndexMode, SearchRequest, VariantConfig};
use indoor_data::{mega_venue, MegaVenueConfig, QueryGenerator, WorkloadConfig};
use indoor_persist::{binary, index_section, IndexSection, VenueDocument};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleSweepConfig {
    /// Venue sizes (target partition counts) to sweep.
    pub sizes: Vec<usize>,
    /// Query instances per venue size.
    pub queries_per_size: usize,
    /// Base random seed (venue synthesis and workload generation).
    pub seed: u64,
}

impl Default for ScaleSweepConfig {
    fn default() -> Self {
        ScaleSweepConfig {
            sizes: vec![100, 1_000, 10_000],
            queries_per_size: 20,
            seed: 42,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Requested partition count.
    pub requested_partitions: usize,
    /// Partitions actually built (the comb layout rounds up).
    pub partitions: usize,
    /// Doors in the venue.
    pub doors: usize,
    /// Query instances that ran.
    pub queries: usize,
    /// Venue synthesis wall-clock time in milliseconds.
    pub generate_ms: f64,
    /// Space + directory rebuild from the venue document, milliseconds
    /// (the serving cold path rebuilds from a document, not a generator).
    pub space_build_ms: f64,
    /// Index build wall-clock time in milliseconds (best of a few rounds,
    /// on the document-rebuilt space + directory the serving path uses).
    pub index_build_ms: f64,
    /// Estimated index heap bytes.
    pub index_bytes: usize,
    /// Queries per second through the linear-scan engine.
    pub scan_qps: f64,
    /// Queries per second through the index-accelerated engine.
    pub accelerated_qps: f64,
    /// Mean fraction of partitions in the query candidate sets.
    pub candidate_fraction: f64,
    /// Peak per-query search memory on the scan engine, bytes.
    pub scan_peak_memory: usize,
    /// Peak per-query search memory on the accelerated engine, bytes
    /// (includes the shared index charge).
    pub accelerated_peak_memory: usize,
    /// KoE* distance rows materialized after the KoE* probe queries.
    pub koe_star_rows: usize,
    /// Total door rows the eager matrix would have built.
    pub koe_star_total_rows: usize,
    /// Pre-indexed binary encode + write time in milliseconds.
    pub save_ms: f64,
    /// Full cold load in milliseconds: read the file, decode the document,
    /// rebuild space + directory, adopt the persisted index.
    pub load_ms: f64,
    /// Index acquisition alone in milliseconds (best of a few rounds):
    /// decode the persisted section and adopt it against the rebuilt
    /// directory. The serving criterion compares this against
    /// `index_build_ms`.
    pub index_load_ms: f64,
    /// v2 columnar doc-decode phase in milliseconds (best of a few rounds):
    /// bytes → validated columns.
    pub doc_decode_ms: f64,
    /// v2 columnar model-adopt phase in milliseconds (best of a few
    /// rounds): columns → space + directory.
    pub model_adopt_ms: f64,
    /// v1-style record rebuild in milliseconds (best of a few rounds):
    /// `VenueDocument::build` on the loaded document. The document
    /// criterion compares this against `doc_decode_ms + model_adopt_ms`.
    pub doc_rebuild_ms: f64,
    /// Whether every v2 cold load adopted the columnar section (no
    /// degradation to a record rebuild).
    pub columnar_adopted: bool,
    /// Whether every response from the v2-loaded engine was byte-identical
    /// to the scan response.
    pub columnar_identical: bool,
    /// Process peak resident set (`VmHWM`) in KiB after this point ran.
    /// A high-water mark, so it is monotone across a multi-size sweep.
    pub peak_rss_kib: u64,
    /// Whether every accelerated response was byte-identical to the scan
    /// response (deterministic fields only).
    pub identical_responses: bool,
    /// Whether every response from the engine that adopted the persisted
    /// index was byte-identical to the scan response.
    pub loaded_identical: bool,
}

/// Process peak resident set size in KiB (`VmHWM` from `/proc/self/status`),
/// or 0 where procfs is unavailable.
pub fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Runs the sweep. Panics on venue generation errors (the built-in sizes are
/// always valid; custom sizes go through [`MegaVenueConfig::validate`]).
pub fn run_scale_sweep(config: &ScaleSweepConfig) -> Vec<ScalePoint> {
    config
        .sizes
        .iter()
        .map(|&size| run_scale_point(size, config.queries_per_size, config.seed))
        .collect()
}

/// The workload the sweep replays at every size: mid-range δs2t so routes
/// cross several rib segments, KoE so Rule 3 exercises the region layer.
fn sweep_workload() -> WorkloadConfig {
    WorkloadConfig {
        qw_len: 3,
        beta: 0.5,
        s2t: 150.0,
        eta: 2.0,
        k: 3,
        alpha: 0.5,
        tau: 0.3,
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn run_scale_point(size: usize, queries: usize, seed: u64) -> ScalePoint {
    let generate_start = Instant::now();
    let venue = mega_venue(&MegaVenueConfig::sized(size, seed)).expect("sweep sizes are valid");
    let generate_ms = ms_since(generate_start);
    let stats = venue.space.stats();

    let scan = Arc::new(IkrqEngine::with_index_mode(
        venue.space.clone(),
        venue.directory.clone(),
        IndexMode::Scan,
    ));
    let accelerated = Arc::new(IkrqEngine::with_index_mode(
        venue.space.clone(),
        venue.directory.clone(),
        IndexMode::Accelerated,
    ));
    let index_stats = accelerated
        .index_stats()
        .expect("accelerated engine has an index");

    // Same venue id on both services so responses are comparable
    // byte-for-byte.
    let scan_service = IkrqService::new();
    scan_service
        .register_engine("sweep", Arc::clone(&scan))
        .expect("fresh service accepts the venue");
    let accel_service = IkrqService::new();
    accel_service
        .register_engine("sweep", Arc::clone(&accelerated))
        .expect("fresh service accepts the venue");

    let generator = QueryGenerator::new(&venue);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1e);
    let instances = generator.generate_batch(&sweep_workload(), queries, &mut rng);
    assert!(!instances.is_empty(), "sweep venues must yield instances");

    let requests: Vec<SearchRequest> = instances
        .iter()
        .map(|instance| SearchRequest {
            venue: "sweep".to_string(),
            query: to_query(instance),
            options: ExecOptions::with_variant(VariantConfig::koe()),
        })
        .collect();

    let mut identical = true;
    let mut scan_peak = 0usize;
    let mut accel_peak = 0usize;

    let scan_start = Instant::now();
    let scan_responses: Vec<_> = requests
        .iter()
        .map(|r| scan_service.search(r).expect("scan query succeeds"))
        .collect();
    let scan_elapsed = scan_start.elapsed();

    let accel_start = Instant::now();
    let accel_responses: Vec<_> = requests
        .iter()
        .map(|r| accel_service.search(r).expect("accelerated query succeeds"))
        .collect();
    let accel_elapsed = accel_start.elapsed();

    for (a, b) in scan_responses.iter().zip(&accel_responses) {
        identical &= a.deterministic_json() == b.deterministic_json();
        if let Some(m) = &a.metrics {
            scan_peak = scan_peak.max(m.peak_memory_bytes);
        }
        if let Some(m) = &b.metrics {
            accel_peak = accel_peak.max(m.peak_memory_bytes);
        }
    }

    // Candidate-set fraction through the index's own prepared queries.
    let index = accelerated
        .index()
        .expect("accelerated engine has an index");
    let directory = accelerated.directory();
    let candidate_fraction = instances
        .iter()
        .map(|instance| {
            let query = to_query(instance);
            let prepared = index
                .prepare_query(&query.keywords, directory, query.tau)
                .expect("sweep keywords come from the venue vocabulary");
            prepared.key_partitions(directory).len() as f64 / stats.partitions as f64
        })
        .sum::<f64>()
        / instances.len() as f64;

    // KoE* probe: a few precomputed-path queries, then read how many door
    // rows actually materialized.
    for instance in instances.iter().take(3) {
        let query = to_query(instance);
        accelerated
            .execute(
                &query,
                &ExecOptions::with_variant(VariantConfig::koe_star()),
            )
            .expect("KoE* probe succeeds");
    }

    // Persistence round trip: capture the venue as a document, save it with
    // a pre-built index section, cold-load it back, and answer the same
    // workload through the loaded engine.
    let doc = VenueDocument::from_venue(&venue.space, &venue.directory, 32.0, Some("sweep".into()));
    let space_build_start = Instant::now();
    let (doc_space, doc_directory) = doc.build().expect("sweep documents round-trip");
    let space_build_ms = ms_since(space_build_start);
    // The persisted index must bind to the document-rebuilt directory
    // (interned ids are insertion-order artifacts), so build the section's
    // index from the round-tripped pair, exactly as `generate --save-indexed`
    // does.
    let fresh = IkrqEngine::new(doc_space, doc_directory);
    let fresh_index = fresh.index().expect("accelerated engine has an index");
    let venue_only_len = binary::encode_venue(&doc)
        .expect("sweep documents encode")
        .len();

    let tmp = std::env::temp_dir().join(format!("ikrq-scale-{size}-seed{seed}.bin"));
    let save_start = Instant::now();
    let payload = binary::encode_venue_with_index(&doc, fresh_index, fresh.directory())
        .expect("sweep documents encode");
    std::fs::write(&tmp, &payload).expect("temp dir is writable");
    let save_ms = ms_since(save_start);

    let load_start = Instant::now();
    let disk = std::fs::read(&tmp).expect("saved venue reads back");
    let (loaded_doc, section) = binary::decode_venue_file(&disk).expect("saved venue decodes");
    let (loaded_space, loaded_directory) = loaded_doc.build().expect("loaded documents round-trip");
    let IndexSection::Present(prebuilt) = section else {
        panic!("saved venue carries a usable index section");
    };
    let loaded_index = prebuilt
        .into_index(&loaded_directory)
        .expect("persisted index binds to the rebuilt directory");
    let load_ms = ms_since(load_start);
    let _ = std::fs::remove_file(&tmp);

    // Index acquisition alone, on the same disk bytes: section decode plus
    // adoption, without the document work both paths share. Both sides of
    // the serving criterion take the best of a few rounds — one-shot wall
    // times on a shared machine are dominated by scheduler and frequency
    // noise, and steady-state is what a warm serving process sees.
    const TIMING_ROUNDS: usize = 7;
    let mut index_build_ms = f64::INFINITY;
    for _ in 0..TIMING_ROUNDS {
        let build_start = Instant::now();
        let rebuilt = indoor_index::VenueIndex::build(fresh.space(), fresh.directory());
        index_build_ms = index_build_ms.min(ms_since(build_start));
        drop(rebuilt);
    }
    let mut index_load_ms = f64::INFINITY;
    for _ in 0..TIMING_ROUNDS {
        let index_load_start = Instant::now();
        let reloaded = match index_section::decode_index_section(&disk[venue_only_len..]) {
            IndexSection::Present(prebuilt) => prebuilt
                .into_index(&loaded_directory)
                .expect("persisted index binds to the rebuilt directory"),
            other => panic!("saved index section decodes: {other:?}"),
        };
        index_load_ms = index_load_ms.min(ms_since(index_load_start));
        drop(reloaded);
    }

    let loaded_engine = Arc::new(IkrqEngine::with_prebuilt_index(
        loaded_space,
        loaded_directory,
        loaded_index,
    ));
    let loaded_service = IkrqService::new();
    loaded_service
        .register_engine("sweep", Arc::clone(&loaded_engine))
        .expect("fresh service accepts the venue");
    let loaded_identical = requests.iter().zip(&scan_responses).all(|(r, scan)| {
        let response = loaded_service.search(r).expect("loaded query succeeds");
        response.deterministic_json() == scan.deterministic_json()
    });

    // v2 columnar round trip: save the same document with a columnar body,
    // cold-load it, and split that load into its decode and adopt phases.
    // The document criterion compares decode + adopt against the v1-style
    // record rebuild, best of a few rounds on both sides.
    let disk2 =
        binary::encode_venue_columnar(&doc, fresh.space(), fresh.directory(), Some(fresh_index))
            .expect("sweep documents encode as columnar");
    let mut doc_decode_ms = f64::INFINITY;
    let mut model_adopt_ms = f64::INFINITY;
    let mut columnar_adopted = true;
    for _ in 0..TIMING_ROUNDS {
        let round = binary::load_venue_model(&disk2).expect("columnar venue loads");
        columnar_adopted &= round.stats.adopted_columnar && round.stats.degraded.is_none();
        doc_decode_ms = doc_decode_ms.min(round.stats.decode_micros as f64 / 1e3);
        model_adopt_ms = model_adopt_ms.min(round.stats.adopt_micros as f64 / 1e3);
    }
    let mut doc_rebuild_ms = f64::INFINITY;
    for _ in 0..TIMING_ROUNDS {
        let rebuild_start = Instant::now();
        let rebuilt = loaded_doc.build().expect("loaded documents round-trip");
        doc_rebuild_ms = doc_rebuild_ms.min(ms_since(rebuild_start));
        drop(rebuilt);
    }

    // The v2-loaded engine (columnar model + persisted index) joins the
    // byte-identity check against the scan responses.
    let v2 = binary::load_venue_model(&disk2).expect("columnar venue loads");
    let v2_index = match v2.index {
        IndexSection::Present(prebuilt) => prebuilt
            .into_index(&v2.directory)
            .expect("persisted index binds to the adopted directory"),
        other => panic!("columnar venue carries a usable index section: {other:?}"),
    };
    let v2_engine = Arc::new(IkrqEngine::with_prebuilt_index(
        v2.space,
        v2.directory,
        v2_index,
    ));
    let v2_service = IkrqService::new();
    v2_service
        .register_engine("sweep", Arc::clone(&v2_engine))
        .expect("fresh service accepts the venue");
    let columnar_identical = requests.iter().zip(&scan_responses).all(|(r, scan)| {
        let response = v2_service
            .search(r)
            .expect("columnar-loaded query succeeds");
        response.deterministic_json() == scan.deterministic_json()
    });

    ScalePoint {
        requested_partitions: size,
        partitions: stats.partitions,
        doors: stats.doors,
        queries: instances.len(),
        generate_ms,
        space_build_ms,
        index_build_ms,
        index_bytes: index_stats.estimated_bytes,
        scan_qps: instances.len() as f64 / scan_elapsed.as_secs_f64(),
        accelerated_qps: instances.len() as f64 / accel_elapsed.as_secs_f64(),
        candidate_fraction,
        scan_peak_memory: scan_peak,
        accelerated_peak_memory: accel_peak,
        koe_star_rows: accelerated.precomputed_rows(),
        koe_star_total_rows: stats.doors,
        save_ms,
        load_ms,
        index_load_ms,
        doc_decode_ms,
        model_adopt_ms,
        doc_rebuild_ms,
        columnar_adopted,
        columnar_identical,
        peak_rss_kib: peak_rss_kib(),
        identical_responses: identical,
        loaded_identical,
    }
}

/// Renders the sweep as a Markdown table (the format recorded in the docs).
pub fn markdown_table(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "| partitions | doors | gen ms | space ms | build ms | save ms | load ms | \
         idx load ms | doc dec ms | doc adopt ms | rebuild ms | index KiB | scan q/s | index q/s | \
         cand. frac | scan peak KiB | index peak KiB | KoE* rows | RSS MiB | identical |\n\
         |---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|:---|\n",
    );
    for p in points {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2} | {:.2} | {:.2} | {:.1} | \
             {} | {:.1} | {:.1} | \
             {:.4} | {} | {} | {}/{} | {} | {} |\n",
            p.partitions,
            p.doors,
            p.generate_ms,
            p.space_build_ms,
            p.index_build_ms,
            p.save_ms,
            p.load_ms,
            p.index_load_ms,
            p.doc_decode_ms,
            p.model_adopt_ms,
            p.doc_rebuild_ms,
            p.index_bytes / 1024,
            p.scan_qps,
            p.accelerated_qps,
            p.candidate_fraction,
            p.scan_peak_memory / 1024,
            p.accelerated_peak_memory / 1024,
            p.koe_star_rows,
            p.koe_star_total_rows,
            p.peak_rss_kib / 1024,
            p.identical_responses
                && p.loaded_identical
                && p.columnar_identical
                && p.columnar_adopted,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_point_is_sane_and_identical() {
        let config = ScaleSweepConfig {
            sizes: vec![100],
            queries_per_size: 3,
            seed: 9,
        };
        let points = run_scale_sweep(&config);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.partitions >= 100);
        assert_eq!(p.queries, 3);
        assert!(p.scan_qps > 0.0 && p.accelerated_qps > 0.0);
        assert!(p.index_bytes > 0);
        assert!(p.candidate_fraction > 0.0 && p.candidate_fraction <= 1.0);
        assert!(
            p.identical_responses,
            "index and scan paths must agree byte-for-byte"
        );
        assert!(
            p.loaded_identical,
            "the loaded-index path must agree with the scan path byte-for-byte"
        );
        assert!(
            p.columnar_adopted,
            "v2 cold loads must adopt the columnar section"
        );
        assert!(
            p.columnar_identical,
            "the columnar-loaded path must agree with the scan path byte-for-byte"
        );
        assert!(p.generate_ms > 0.0 && p.space_build_ms > 0.0);
        assert!(p.save_ms > 0.0 && p.load_ms > 0.0 && p.index_load_ms > 0.0);
        assert!(p.doc_decode_ms > 0.0 && p.model_adopt_ms > 0.0 && p.doc_rebuild_ms > 0.0);
        // The KoE* probe touches only a fraction of the door rows.
        assert!(p.koe_star_rows > 0, "KoE* probes materialize rows");
        assert!(
            p.koe_star_rows < p.koe_star_total_rows,
            "lazy rows stay sublinear: {} of {}",
            p.koe_star_rows,
            p.koe_star_total_rows
        );
        let table = markdown_table(&points);
        assert!(table.contains("| scan q/s |") || table.contains("scan q/s"));
    }
}
