//! Venue caching and workload preparation for the experiments.

use ikrq_core::IkrqEngine;
use ikrq_core::{ExecOptions, IkrqQuery, IkrqService, SearchRequest, VariantConfig};
use indoor_data::real_mall::RealMallConfig;
use indoor_data::{
    QueryGenerator, QueryInstance, RealMallSimulator, SyntheticVenueConfig, Venue, WorkloadConfig,
};
use indoor_keywords::QueryKeywords;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// Which venue an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VenueKind {
    /// The synthetic mall of §V-A1 with the given floor count.
    Synthetic {
        /// Number of floors (3, 5, 7 or 9 in the paper).
        floors: usize,
    },
    /// The simulated Hangzhou mall of §V-B.
    Real,
}

/// A prepared venue: an [`IkrqService`] hosting the venue (plus the shared
/// engine) and a query generator bound to an owned copy of the venue.
pub struct PreparedVenue {
    /// The query engine (shared with [`PreparedVenue::service`]).
    pub engine: Arc<IkrqEngine>,
    /// A single-venue service hosting the engine under
    /// [`PreparedVenue::venue_id`].
    pub service: IkrqService,
    /// Id the venue is registered under.
    pub venue_id: String,
    venue: Arc<Venue>,
}

impl PreparedVenue {
    fn new(venue_id: String, venue: Venue) -> Self {
        let engine = Arc::new(IkrqEngine::new(
            venue.space.clone(),
            venue.directory.clone(),
        ));
        let service = IkrqService::new();
        service
            .register_engine(&venue_id, Arc::clone(&engine))
            .expect("fresh service accepts the venue");
        PreparedVenue {
            engine,
            service,
            venue_id,
            venue: Arc::new(venue),
        }
    }

    /// Generates `count` query instances for a workload setting.
    pub fn instances(
        &self,
        workload: &WorkloadConfig,
        count: usize,
        seed: u64,
    ) -> Vec<QueryInstance> {
        let generator = QueryGenerator::new(&self.venue);
        let mut rng = StdRng::seed_from_u64(seed);
        generator.generate_batch(workload, count, &mut rng)
    }

    /// Builds the service request for one instance under one variant.
    pub fn request(&self, instance: &QueryInstance, variant: VariantConfig) -> SearchRequest {
        SearchRequest {
            venue: self.venue_id.clone(),
            query: to_query(instance),
            options: ExecOptions::with_variant(variant),
        }
    }
}

/// Converts an engine-agnostic query instance into an engine query.
pub fn to_query(instance: &QueryInstance) -> IkrqQuery {
    IkrqQuery::new(
        instance.start,
        instance.terminal,
        instance.delta,
        QueryKeywords::new(instance.keywords.iter().cloned())
            .expect("generated instances always carry keywords"),
        instance.k,
    )
    .with_alpha(instance.alpha)
    .with_tau(instance.tau)
}

/// Shared context of an experiment run: caches venues (building the 5-floor
/// synthetic mall or the real-venue simulation takes seconds, and many
/// figures reuse the same venue) and records global scaling options.
pub struct ExperimentContext {
    /// Scale factor applied to instance/run counts: 1.0 reproduces the
    /// paper's 10 instances × 5 runs, smaller values run faster.
    pub instance_scale: f64,
    /// Base random seed.
    pub seed: u64,
    cache: Mutex<HashMap<VenueKind, Arc<PreparedVenue>>>,
}

impl ExperimentContext {
    /// Creates a context. `quick` reduces the instance counts for smoke runs.
    pub fn new(seed: u64, instance_scale: f64) -> Self {
        ExperimentContext {
            instance_scale,
            seed,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Number of query instances per setting after scaling (paper default:
    /// 10).
    pub fn instances_per_setting(&self) -> usize {
        ((10.0 * self.instance_scale).round() as usize).max(1)
    }

    /// Number of runs per instance after scaling (paper default: 5).
    pub fn runs_per_instance(&self) -> usize {
        ((5.0 * self.instance_scale).round() as usize).clamp(1, 5)
    }

    /// Returns (building and caching on first use) the requested venue.
    pub fn venue(&self, kind: VenueKind) -> Arc<PreparedVenue> {
        if let Some(existing) = self.cache.lock().unwrap().get(&kind) {
            return Arc::clone(existing);
        }
        let (venue_id, venue) = match kind {
            VenueKind::Synthetic { floors } => {
                let config = SyntheticVenueConfig {
                    seed: self.seed,
                    ..SyntheticVenueConfig::default()
                }
                .with_floors(floors);
                (
                    format!("synthetic-{floors}f"),
                    Venue::synthetic(&config).expect("synthetic venue generation succeeds"),
                )
            }
            VenueKind::Real => (
                "real-mall".to_string(),
                RealMallSimulator::generate(&RealMallConfig {
                    seed: self.seed,
                    ..RealMallConfig::default()
                })
                .expect("real venue simulation succeeds"),
            ),
        };
        let prepared = Arc::new(PreparedVenue::new(venue_id, venue));
        self.cache
            .lock()
            .unwrap()
            .insert(kind, Arc::clone(&prepared));
        prepared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_data::ExperimentDefaults;

    #[test]
    fn context_caches_venues_and_scales_counts() {
        // Scaling arithmetic needs no venue, so fresh contexts are cheap.
        let scaled = ExperimentContext::new(1, 0.2);
        assert_eq!(scaled.instances_per_setting(), 2);
        assert_eq!(scaled.runs_per_instance(), 1);
        let full = ExperimentContext::new(1, 1.0);
        assert_eq!(full.instances_per_setting(), 10);
        assert_eq!(full.runs_per_instance(), 5);

        // Venue construction is the expensive part — exercise the cache on
        // the context shared by the whole test binary.
        let ctx = crate::test_support::shared_context();
        let kind = VenueKind::Synthetic { floors: 1 };
        let a = ctx.venue(kind);
        let b = ctx.venue(kind);
        assert!(Arc::ptr_eq(&a, &b), "venues are cached");
    }

    #[test]
    fn instances_convert_to_engine_queries() {
        let ctx = crate::test_support::shared_context();
        let prepared = ctx.venue(VenueKind::Synthetic { floors: 1 });
        let workload = WorkloadConfig {
            s2t: 600.0,
            ..ExperimentDefaults::default().into()
        };
        let instances = prepared.instances(&workload, 2, 9);
        assert!(!instances.is_empty());
        let requests: Vec<_> = instances
            .iter()
            .map(|instance| prepared.request(instance, VariantConfig::toe()))
            .collect();
        for (request, response) in requests
            .iter()
            .zip(prepared.service.search_batch(&requests))
        {
            assert!(request.query.validate().is_ok());
            let response = response.unwrap();
            assert_eq!(response.venue.id, prepared.venue_id);
            assert!(response.metrics.unwrap().stamps_expanded > 0);
        }
    }
}
