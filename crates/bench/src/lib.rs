//! # ikrq-bench
//!
//! The experiment harness reproducing every table and figure of the IKRQ
//! paper's evaluation (§V). The library part provides:
//!
//! * [`workload`] — cached venue construction (synthetic malls with 3–9
//!   floors and the simulated real venue) and query-instance preparation,
//! * [`runner`] — running a set of query instances against a set of
//!   algorithm variants, aggregating time/memory over instances and repeats
//!   exactly as §V-A1 prescribes (10 instances × 5 runs by default,
//!   configurable),
//! * [`report`] — figure/series data structures with CSV and Markdown
//!   emitters,
//! * [`figures`] — one reproduction module per paper figure (Figs. 4–20)
//!   plus the §V-A5 result-quality study,
//!
//! and the two binaries `figures` (regenerates any or all figures) and
//! `quality` (the result-quality case study).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod runner;
pub mod workload;

pub use report::{FigureReport, Series};
pub use runner::{AggregateResult, RunSettings, Runner};
pub use workload::{ExperimentContext, VenueKind};
