//! # ikrq-bench
//!
//! The experiment harness reproducing every table and figure of the IKRQ
//! paper's evaluation (§V). The library part provides:
//!
//! * [`workload`] — cached venue construction (synthetic malls with 3–9
//!   floors and the simulated real venue) and query-instance preparation,
//! * [`runner`] — running a set of query instances against a set of
//!   algorithm variants, aggregating time/memory over instances and repeats
//!   exactly as §V-A1 prescribes (10 instances × 5 runs by default,
//!   configurable),
//! * [`report`] — figure/series data structures with CSV and Markdown
//!   emitters,
//! * [`figures`] — one reproduction module per paper figure (Figs. 4–20)
//!   plus the §V-A5 result-quality study,
//! * [`http_load`] — an HTTP-throughput mode that drives a live
//!   `ikrq-server` socket with concurrent clients,
//! * [`scale`] — the venue-size scaling sweep: index-accelerated vs
//!   linear-scan engines on 10²–10⁵-partition mega venues,
//!
//! and the binaries `figures` (regenerates any or all figures), `quality`
//! (the result-quality case study) and `http_load` (wire-path throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod http_load;
pub mod multiproc;
pub mod report;
pub mod runner;
pub mod scale;
pub mod workload;

pub use http_load::{HttpLoadConfig, HttpLoadReport};
pub use report::{FigureReport, Series};
pub use runner::{AggregateResult, RunSettings, Runner};
pub use scale::{run_scale_sweep, ScalePoint, ScaleSweepConfig};
pub use workload::{ExperimentContext, VenueKind};

/// Shared fixtures for this crate's unit tests. Building a synthetic venue
/// takes seconds even at one floor, so every test that needs one goes
/// through a single lazily-built [`ExperimentContext`] whose venue cache is
/// shared across the whole test binary.
#[cfg(test)]
pub(crate) mod test_support {
    use crate::workload::ExperimentContext;
    use std::sync::OnceLock;

    /// The one context (seed 5, instance scale 0.2) every bench lib test
    /// shares.
    pub fn shared_context() -> &'static ExperimentContext {
        static CONTEXT: OnceLock<ExperimentContext> = OnceLock::new();
        CONTEXT.get_or_init(|| ExperimentContext::new(5, 0.2))
    }
}
