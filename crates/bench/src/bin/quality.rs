//! The result-quality case study of §V-A5: on the Fig. 1 example venue, the
//! query `(p1, p2, 100 m, {earphone}, 2)` with `α = 0.5`, `τ = 0.1` returns
//! routes through shops that only *indirectly* match the keyword (apple does
//! not list "earphone" but is Jaccard-similar to shops that do), while the
//! plain shortest route without any keyword coverage is not returned.

use ikrq_core::prelude::*;
use indoor_data::paper_example_venue;
use indoor_keywords::QueryKeywords;

fn main() {
    let example = paper_example_venue();
    let service = IkrqService::new();
    let engine = service
        .register_venue(
            "fig1",
            example.venue.space.clone(),
            example.venue.directory.clone(),
        )
        .expect("fresh service accepts the venue");

    let query = IkrqQuery::new(
        example.p1,
        example.p2,
        100.0,
        QueryKeywords::new(["earphone"]).expect("non-empty keyword list"),
        2,
    )
    .with_alpha(0.5)
    .with_tau(0.1);

    println!("IKRQ result-quality study (paper §V-A5)");
    println!(
        "query: p1 = {}, p2 = {}, delta = {} m, QW = {{earphone}}, k = 2, alpha = 0.5, tau = 0.1\n",
        example.p1, example.p2, query.delta
    );

    for config in [VariantConfig::toe(), VariantConfig::koe()] {
        let request = SearchRequest::builder("fig1")
            .query(query.clone())
            .variant(config)
            .build()
            .expect("request is valid");
        let response = service.search(&request).expect("query is valid");
        let outcome = response.to_outcome();
        println!("=== {} ===", outcome.label);
        println!("search: {}", outcome.metrics);
        for (rank, result) in outcome.results.routes().iter().enumerate() {
            println!(
                "  #{rank}: score {:.4}  relevance {:.3}  distance {:.1} m",
                result.score, result.relevance, result.distance
            );
            println!("      {}", result.route);
        }
        println!();
    }

    let shortest = engine
        .space()
        .point_to_point_distance(&example.p1, &example.p2);
    println!(
        "for comparison, the keyword-oblivious shortest route is {shortest:.1} m \
         and scores {:.4}",
        ikrq_core::RankingModel::new(0.5, 100.0, 1).score(0.0, shortest)
    );
    println!(
        "note: apple's t-words do not contain 'earphone'; it is reached through the \
         indirect (Jaccard) candidate expansion of Definition 4."
    );
}
