//! Wire-path throughput: start an `ikrq-server` on an ephemeral port and
//! flood it with concurrent HTTP clients.
//!
//! ```text
//! cargo run --release -p ikrq-bench --bin http_load -- \
//!     [--floors N] [--clients N] [--requests N] [--instances N]
//!     [--algorithm toe|koe|koe-star] [--seed N] [--keep-alive] [--compare]
//! ```
//!
//! Prints one summary line per configuration: attempted/ok/shed counts,
//! cache hits, queries per second and latency. `--instances 1` serves the
//! best case for the response cache (every request identical);
//! `--instances N` with a large N approximates a cache-hostile workload.
//! `--keep-alive` reuses one connection per client instead of dialing per
//! request; `--compare` runs both modes back to back and prints the
//! close-vs-reuse throughput ratio.

use ikrq_bench::http_load::{
    run_close_vs_keep_alive, run_http_load, HttpLoadConfig, HttpLoadReport,
};
use ikrq_bench::workload::{ExperimentContext, VenueKind};
use ikrq_core::VariantConfig;
use indoor_data::WorkloadConfig;

struct Args {
    floors: usize,
    clients: usize,
    requests_per_client: usize,
    instances: usize,
    variant: VariantConfig,
    seed: u64,
    keep_alive: bool,
    compare: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        floors: 1,
        clients: 8,
        requests_per_client: 50,
        instances: 8,
        variant: VariantConfig::toe(),
        seed: 2020,
        keep_alive: false,
        compare: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--floors" => parsed.floors = value("--floors")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                parsed.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?
            }
            "--requests" => {
                parsed.requests_per_client =
                    value("--requests")?.parse().map_err(|e| format!("{e}"))?
            }
            "--instances" => {
                parsed.instances = value("--instances")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => parsed.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--keep-alive" => parsed.keep_alive = true,
            "--compare" => parsed.compare = true,
            "--algorithm" => {
                parsed.variant = match value("--algorithm")?.as_str() {
                    "toe" => VariantConfig::toe(),
                    "koe" => VariantConfig::koe(),
                    "koe-star" | "koe*" => VariantConfig::koe_star(),
                    other => return Err(format!("unknown algorithm `{other}`")),
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: http_load [--floors N] [--clients N] [--requests N] \
                     [--instances N] [--algorithm toe|koe|koe-star] [--seed N] \
                     [--keep-alive] [--compare]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if parsed.clients == 0 || parsed.requests_per_client == 0 || parsed.instances == 0 {
        return Err("--clients, --requests and --instances must be at least 1".into());
    }
    Ok(parsed)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let ctx = ExperimentContext::new(args.seed, 1.0);
    eprintln!("building the {}-floor synthetic venue ...", args.floors);
    let venue = ctx.venue(VenueKind::Synthetic {
        floors: args.floors,
    });
    // Force the KoE* precompute off the measured path.
    if args.variant.use_precomputed_paths {
        venue.engine.prepare_precomputed_paths();
    }
    let workload = WorkloadConfig {
        s2t: 600.0,
        qw_len: 2,
        ..WorkloadConfig::default()
    };
    let instances = venue.instances(&workload, args.instances, args.seed ^ 0x10ad);
    if instances.is_empty() {
        eprintln!("workload generation produced no instances");
        std::process::exit(1);
    }

    let config = HttpLoadConfig {
        clients: args.clients,
        requests_per_client: args.requests_per_client,
        keep_alive: args.keep_alive,
        ..HttpLoadConfig::default()
    };
    eprintln!(
        "driving {} clients x {} requests over {} distinct queries ({}) ...",
        config.clients,
        config.requests_per_client,
        instances.len(),
        args.variant.label(),
    );
    if args.compare {
        match run_close_vs_keep_alive(&venue, &instances, args.variant, &config) {
            Ok((close, reuse)) => {
                print_report(&args.variant.label(), &close);
                print_report(&args.variant.label(), &reuse);
                println!(
                    "keep-alive speedup: {:.2}x ({:.1} -> {:.1} q/s; {} -> {} connects)",
                    reuse.qps / close.qps.max(1e-9),
                    close.qps,
                    reuse.qps,
                    close.connects,
                    reuse.connects,
                );
            }
            Err(error) => {
                eprintln!("http load comparison failed: {error}");
                std::process::exit(1);
            }
        }
        return;
    }
    match run_http_load(&venue, &instances, args.variant, &config) {
        Ok(report) => print_report(&args.variant.label(), &report),
        Err(error) => {
            eprintln!("http load run failed: {error}");
            std::process::exit(1);
        }
    }
}

fn print_report(label: &str, report: &HttpLoadReport) {
    println!(
        "{} [{}]: {} requests ({} connects) -> {} ok, {} shed, {} failed | \
         {} cache hits | {:.1} q/s | avg {:.2} ms, max {:.2} ms over {:.2} s",
        label,
        if report.keep_alive {
            "keep-alive"
        } else {
            "close"
        },
        report.requests,
        report.connects,
        report.ok,
        report.shed,
        report.failed,
        report.cache_hits,
        report.qps,
        report.avg_latency_ms,
        report.max_latency_ms,
        report.wall_s,
    );
}
