//! Wire-path throughput: start an `ikrq-server` on an ephemeral port and
//! flood it with concurrent HTTP clients.
//!
//! ```text
//! cargo run --release -p ikrq-bench --bin http_load -- \
//!     [--floors N] [--clients N] [--requests N] [--instances N]
//!     [--algorithm toe|koe|koe-star] [--seed N] [--keep-alive] [--compare]
//!     [--strict-terminal true|false] [--strict-compare]
//!     [--reactor true|false]
//!     [--connections 0,64,1024,4096 [--active N] [--external HOST:PORT]]
//!     [--serve HOST:PORT]
//! ```
//!
//! Prints one summary line per configuration: attempted/ok/shed counts,
//! cache hits, queries per second and latency. `--instances 1` serves the
//! best case for the response cache (every request identical);
//! `--instances N` with a large N approximates a cache-hostile workload.
//! `--keep-alive` reuses one connection per client instead of dialing per
//! request; `--compare` runs both modes back to back and prints the
//! close-vs-reuse throughput ratio. `--strict-terminal` pins the ToE
//! terminal-expansion rule per request, and `--strict-compare` runs
//! strict-off then strict-on back to back to quantify its wire-path cost.
//!
//! `--connections` switches to the *parked-connection sweep*: ramp idle
//! keep-alive sessions through the listed counts while `--active` client
//! threads measure q/s and p50/p99 latency at every step — the workload
//! the readiness reactor exists for. Both socket ends count against
//! `RLIMIT_NOFILE` when the server is in-process; for large steps run
//! `http_load --serve HOST:PORT` (same --floors/--seed/--algorithm) in a
//! second process and point the sweep at it with `--external HOST:PORT`.

use ikrq_bench::http_load::{
    host_cores, run_close_vs_keep_alive, run_connection_sweep, run_http_load,
    run_strict_terminal_comparison, ConnectionSweepConfig, HttpLoadConfig, HttpLoadReport,
    SweepStep,
};
use ikrq_bench::workload::{ExperimentContext, VenueKind};
use ikrq_core::VariantConfig;
use indoor_data::WorkloadConfig;

struct Args {
    floors: usize,
    clients: usize,
    requests_per_client: usize,
    instances: usize,
    variant: VariantConfig,
    seed: u64,
    keep_alive: bool,
    compare: bool,
    /// `--strict-terminal`: pin `strict_terminal_expansion` per request.
    strict_terminal: Option<bool>,
    /// `--strict-compare`: run strict off then on, print the cost ratio.
    strict_compare: bool,
    reactor: bool,
    /// `--connections`: parked-session counts of a connection sweep.
    connections: Option<Vec<usize>>,
    /// Active client threads of the sweep.
    active: usize,
    /// Sweep against an already-running server instead of in-process.
    external: Option<std::net::SocketAddr>,
    /// Serve mode: host the synthetic venue on this address and block.
    serve_addr: Option<String>,
    /// Router mode: spawn this many `--serve` child processes, front them
    /// with `ikrq-router`, verify byte-identity, then measure.
    router: Option<usize>,
    /// Extra venue aliases each serve process registers (`0` = auto in
    /// router mode, none in serve mode). The aliases give the ring
    /// something to spread across shards.
    copies: usize,
}

/// The alias a venue copy is registered (and queried) under.
fn copy_id(base: &str, copy: usize) -> String {
    format!("{base}#copy-{copy}")
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        floors: 1,
        clients: 8,
        requests_per_client: 50,
        instances: 8,
        variant: VariantConfig::toe(),
        seed: 2020,
        keep_alive: false,
        compare: false,
        strict_terminal: None,
        strict_compare: false,
        reactor: true,
        connections: None,
        active: 8,
        external: None,
        serve_addr: None,
        router: None,
        copies: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--floors" => parsed.floors = value("--floors")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                parsed.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?
            }
            "--requests" => {
                parsed.requests_per_client =
                    value("--requests")?.parse().map_err(|e| format!("{e}"))?
            }
            "--instances" => {
                parsed.instances = value("--instances")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => parsed.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--keep-alive" => parsed.keep_alive = true,
            "--compare" => parsed.compare = true,
            "--strict-terminal" => {
                parsed.strict_terminal = Some(match value("--strict-terminal")?.as_str() {
                    "true" | "on" | "1" => true,
                    "false" | "off" | "0" => false,
                    other => {
                        return Err(format!(
                            "--strict-terminal expects true|false, got `{other}`"
                        ))
                    }
                })
            }
            "--strict-compare" => parsed.strict_compare = true,
            "--reactor" => {
                parsed.reactor = match value("--reactor")?.as_str() {
                    "true" | "on" | "1" => true,
                    "false" | "off" | "0" => false,
                    other => return Err(format!("--reactor expects true|false, got `{other}`")),
                }
            }
            "--connections" => {
                let list = value("--connections")?;
                let steps: Result<Vec<usize>, _> =
                    list.split(',').map(|step| step.trim().parse()).collect();
                parsed.connections = Some(steps.map_err(|e| format!("--connections: {e}"))?);
            }
            "--active" => parsed.active = value("--active")?.parse().map_err(|e| format!("{e}"))?,
            "--external" => {
                let addr = value("--external")?;
                parsed.external = Some(addr.parse().map_err(|e| format!("--external: {e}"))?);
            }
            "--serve" => parsed.serve_addr = Some(value("--serve")?),
            "--router" => {
                parsed.router = Some(value("--router")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--copies" => parsed.copies = value("--copies")?.parse().map_err(|e| format!("{e}"))?,
            "--algorithm" => {
                parsed.variant = match value("--algorithm")?.as_str() {
                    "toe" => VariantConfig::toe(),
                    "koe" => VariantConfig::koe(),
                    "koe-star" | "koe*" => VariantConfig::koe_star(),
                    other => return Err(format!("unknown algorithm `{other}`")),
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: http_load [--floors N] [--clients N] [--requests N] \
                     [--instances N] [--algorithm toe|koe|koe-star] [--seed N] \
                     [--keep-alive] [--compare] [--strict-terminal true|false] \
                     [--strict-compare] [--reactor true|false] \
                     [--connections N,N,... [--active N] [--external HOST:PORT]] \
                     [--serve HOST:PORT [--copies N]] [--router N [--copies N]]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if parsed.clients == 0 || parsed.requests_per_client == 0 || parsed.instances == 0 {
        return Err("--clients, --requests and --instances must be at least 1".into());
    }
    if parsed.active == 0 {
        return Err("--active must be at least 1".into());
    }
    if parsed.connections.as_ref().is_some_and(|c| c.is_empty()) {
        return Err("--connections needs at least one step".into());
    }
    if parsed.router == Some(0) {
        return Err("--router needs at least one shard".into());
    }
    Ok(parsed)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let ctx = ExperimentContext::new(args.seed, 1.0);
    eprintln!("building the {}-floor synthetic venue ...", args.floors);
    let venue = ctx.venue(VenueKind::Synthetic {
        floors: args.floors,
    });
    // Force the KoE* precompute off the measured path.
    if args.variant.use_precomputed_paths {
        venue.engine.prepare_precomputed_paths();
    }
    let workload = WorkloadConfig {
        s2t: 600.0,
        qw_len: 2,
        ..WorkloadConfig::default()
    };
    let instances = venue.instances(&workload, args.instances, args.seed ^ 0x10ad);
    if instances.is_empty() {
        eprintln!("workload generation produced no instances");
        std::process::exit(1);
    }

    let mut config = HttpLoadConfig {
        clients: args.clients,
        requests_per_client: args.requests_per_client,
        keep_alive: args.keep_alive,
        strict_terminal: args.strict_terminal,
        ..HttpLoadConfig::default()
    };
    config.server.reactor = args.reactor;

    // Serve mode: host the venue for an --external sweep (or as one
    // shard of a --router run) and block.
    if let Some(addr) = &args.serve_addr {
        let service = std::sync::Arc::new(ikrq_core::IkrqService::new());
        service
            .register_engine(&venue.venue_id, std::sync::Arc::clone(&venue.engine))
            .expect("fresh service accepts the venue");
        // Copy aliases share the engine (Arc clones); they exist so a
        // router's consistent-hash ring has multiple venue ids to spread
        // across shards.
        for copy in 0..args.copies {
            service
                .register_engine(
                    copy_id(&venue.venue_id, copy),
                    std::sync::Arc::clone(&venue.engine),
                )
                .expect("copy alias registers");
        }
        let mut server = config.server.clone();
        server.idle_timeout = std::time::Duration::from_secs(600);
        server.max_connections = server.max_connections.max(32 * 1024);
        let handle = match ikrq_server::serve(service, addr.as_str(), server) {
            Ok(handle) => handle,
            Err(error) => {
                eprintln!("--serve failed to bind {addr}: {error}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "http_load serving venue `{}` on http://{} (reactor: {}; ctrl-c to stop)",
            venue.venue_id,
            handle.local_addr(),
            args.reactor,
        );
        handle.join();
        return;
    }

    // Router mode: spawn child backends, front them with ikrq-router,
    // verify byte-identity, then measure the spliced wire path.
    if args.router.is_some() {
        run_router_mode(&args, &venue, &instances, &config);
        return;
    }

    // Sweep mode: ramp parked keep-alive sessions, measure the active
    // subset at every step.
    if let Some(steps) = &args.connections {
        let sweep = ConnectionSweepConfig {
            parked_steps: steps.clone(),
            active_clients: args.active,
            requests_per_client: args.requests_per_client,
            server: config.server.clone(),
            external: args.external,
        };
        eprintln!(
            "sweeping parked connections {:?} with {} active clients x {} requests \
             ({}; reactor: {}; host cores: {}) ...",
            sweep.parked_steps,
            sweep.active_clients,
            sweep.requests_per_client,
            args.variant.label(),
            args.reactor,
            host_cores(),
        );
        match run_connection_sweep(&venue, &instances, args.variant, &sweep) {
            Ok(steps) => {
                for step in &steps {
                    print_sweep_step(step);
                }
            }
            Err(error) => {
                eprintln!("connection sweep failed: {error}");
                std::process::exit(1);
            }
        }
        return;
    }
    eprintln!(
        "driving {} clients x {} requests over {} distinct queries ({}) ...",
        config.clients,
        config.requests_per_client,
        instances.len(),
        args.variant.label(),
    );
    if args.strict_compare {
        match run_strict_terminal_comparison(&venue, &instances, args.variant, &config) {
            Ok((relaxed, strict)) => {
                print_report(&format!("{} strict=off", args.variant.label()), &relaxed);
                print_report(&format!("{} strict=on", args.variant.label()), &strict);
                println!(
                    "strict terminal expansion cost: {:.2}x q/s ({:.1} -> {:.1}; \
                     p50 {:.2} -> {:.2} ms, p99 {:.2} -> {:.2} ms)",
                    relaxed.qps / strict.qps.max(1e-9),
                    relaxed.qps,
                    strict.qps,
                    relaxed.p50_latency_ms,
                    strict.p50_latency_ms,
                    relaxed.p99_latency_ms,
                    strict.p99_latency_ms,
                );
            }
            Err(error) => {
                eprintln!("strict-expansion comparison failed: {error}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.compare {
        match run_close_vs_keep_alive(&venue, &instances, args.variant, &config) {
            Ok((close, reuse)) => {
                print_report(&args.variant.label(), &close);
                print_report(&args.variant.label(), &reuse);
                println!(
                    "keep-alive speedup: {:.2}x ({:.1} -> {:.1} q/s; {} -> {} connects)",
                    reuse.qps / close.qps.max(1e-9),
                    close.qps,
                    reuse.qps,
                    close.connects,
                    reuse.connects,
                );
            }
            Err(error) => {
                eprintln!("http load comparison failed: {error}");
                std::process::exit(1);
            }
        }
        return;
    }
    match run_http_load(&venue, &instances, args.variant, &config) {
        Ok(report) => print_report(&args.variant.label(), &report),
        Err(error) => {
            eprintln!("http load run failed: {error}");
            std::process::exit(1);
        }
    }
}

/// The `--router N` flow: N backend *processes* (spawned from this very
/// binary in `--serve` mode, killed on drop — even a panicking
/// verification pass cannot leak them), one single-replica shard each,
/// fronted by an in-process `ikrq-router`. Before measuring, every
/// distinct request is verified byte-identical between the router and its
/// owning backend's response cache; any divergence exits non-zero, which
/// is what CI runs this mode for.
fn run_router_mode(
    args: &Args,
    venue: &ikrq_bench::workload::PreparedVenue,
    instances: &[indoor_data::QueryInstance],
    config: &HttpLoadConfig,
) {
    use ikrq_bench::http_load::drive_external_load;
    use ikrq_bench::multiproc::ChildServer;

    let shard_count = args.router.expect("router mode");
    let copies = if args.copies > 0 {
        args.copies
    } else {
        // Auto-size the copy alias count by walking the same ring the
        // router will build, until every shard owns at least two venue
        // ids — a blind guess can land every alias on one shard and
        // measure a cluster of one.
        let names: Vec<String> = (0..shard_count).map(|i| format!("shard-{i}")).collect();
        let ring = ikrq_router::HashRing::new(&names, ikrq_router::DEFAULT_VNODES);
        let mut per_shard = vec![0usize; shard_count];
        let mut copies = 0;
        while copies < 4 || per_shard.iter().any(|&owned| owned < 2) {
            per_shard[ring.assign(&copy_id(&venue.venue_id, copies))] += 1;
            copies += 1;
            assert!(copies < 4096, "ring never covered every shard");
        }
        copies
    };
    let exe = std::env::current_exe().expect("own executable path");
    eprintln!("spawning {shard_count} backend processes ({copies} venue copies each) ...");
    let children: Vec<ChildServer> = (0..shard_count)
        .map(|index| {
            let mut command = std::process::Command::new(&exe);
            command
                .args(["--serve", "127.0.0.1:0"])
                .args(["--floors", &args.floors.to_string()])
                .args(["--seed", &args.seed.to_string()])
                .args(["--copies", &copies.to_string()])
                .args(["--reactor", if args.reactor { "true" } else { "false" }]);
            match ChildServer::spawn(command, std::time::Duration::from_secs(300)) {
                Ok(child) => {
                    eprintln!("  shard-{index} on {} (pid {})", child.addr(), child.id());
                    child
                }
                Err(error) => {
                    eprintln!("failed to spawn backend {index}: {error}");
                    std::process::exit(1);
                }
            }
        })
        .collect();
    let shards: Vec<ikrq_router::ShardSpec> = children
        .iter()
        .enumerate()
        .map(|(index, child)| ikrq_router::ShardSpec {
            name: format!("shard-{index}"),
            replicas: vec![child.addr()],
        })
        .collect();
    let router_config = ikrq_router::RouterConfig {
        server: config.server.clone(),
        ..ikrq_router::RouterConfig::default()
    };
    let router = match ikrq_router::route(shards, "127.0.0.1:0", router_config) {
        Ok(router) => router,
        Err(error) => {
            eprintln!("router failed to start: {error}");
            std::process::exit(1);
        }
    };
    let addr = router.local_addr();

    // One body per (instance, venue copy): the copy aliases are what the
    // ring spreads over the shards.
    let mut bodies: Vec<(String, String)> = Vec::with_capacity(instances.len() * copies);
    for instance in instances {
        for copy in 0..copies {
            let mut request = venue.request(instance, args.variant);
            request.options.strict_terminal_expansion = args.strict_terminal;
            request.venue = copy_id(&venue.venue_id, copy);
            let body = serde_json::to_string(&request).expect("requests serialize");
            bodies.push((request.venue, body));
        }
    }

    // Verification pass: route each distinct request once, then fetch the
    // same request from its owning backend — the backend serves its cached
    // bytes, which must equal what the router relayed.
    let mut owned = vec![0usize; shard_count];
    for (venue_id, body) in &bodies {
        let routed = match ikrq_server::client::one_shot(addr, "POST", "/v1/search", body) {
            Ok(reply) => reply,
            Err(error) => {
                eprintln!("verification: router request failed for `{venue_id}`: {error}");
                std::process::exit(1);
            }
        };
        if routed.status != 200 {
            eprintln!(
                "verification: router answered {} for `{venue_id}`: {}",
                routed.status, routed.body
            );
            std::process::exit(1);
        }
        let shard_name = router.shard_for(venue_id);
        let index: usize = shard_name
            .strip_prefix("shard-")
            .and_then(|n| n.parse().ok())
            .expect("shard names are shard-N");
        owned[index] += 1;
        let direct =
            match ikrq_server::client::one_shot(children[index].addr(), "POST", "/v1/search", body)
            {
                Ok(reply) => reply,
                Err(error) => {
                    eprintln!("verification: direct request to {shard_name} failed: {error}");
                    std::process::exit(1);
                }
            };
        if direct.header("x-ikrq-cache") != Some("hit") {
            eprintln!(
                "verification: `{venue_id}` was not cached on {shard_name} — the router \
                 did not execute it there"
            );
            std::process::exit(1);
        }
        if direct.body != routed.body {
            eprintln!(
                "BYTE DIVERGENCE on `{venue_id}`: the router's response differs from \
                 {shard_name}'s cached bytes"
            );
            std::process::exit(1);
        }
    }
    eprintln!(
        "verification: {} responses byte-identical to their owning shards (placement {owned:?})",
        bodies.len()
    );

    let request_bodies: Vec<String> = bodies.into_iter().map(|(_, body)| body).collect();
    eprintln!(
        "driving {} clients x {} requests over {} distinct queries through {shard_count} \
         shard(s) ({}) ...",
        config.clients,
        config.requests_per_client,
        request_bodies.len(),
        args.variant.label(),
    );
    let report = drive_external_load(
        addr,
        &request_bodies,
        config.clients,
        config.requests_per_client,
        args.keep_alive,
    );
    print_report(
        &format!("{} via {shard_count}-shard router", args.variant.label()),
        &report,
    );
    if report.failed > 0 {
        eprintln!("router measurement saw {} failed requests", report.failed);
        std::process::exit(1);
    }
}

fn print_report(label: &str, report: &HttpLoadReport) {
    println!(
        "{} [{}]: {} requests ({} connects) -> {} ok, {} shed, {} failed | \
         {} cache hits | {:.1} q/s | avg {:.2} ms, p50 {:.2} ms, p99 {:.2} ms, \
         max {:.2} ms over {:.2} s | {} cores",
        label,
        if report.keep_alive {
            "keep-alive"
        } else {
            "close"
        },
        report.requests,
        report.connects,
        report.ok,
        report.shed,
        report.failed,
        report.cache_hits,
        report.qps,
        report.avg_latency_ms,
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.max_latency_ms,
        report.wall_s,
        report.host_cores,
    );
}

fn print_sweep_step(step: &SweepStep) {
    println!(
        "parked {:>6} (target {:>6}): {:.1} q/s | p50 {:.2} ms, p99 {:.2} ms, \
         max {:.2} ms | {} ok, {} shed, {} failed | {} cores",
        step.parked_established,
        step.parked_target,
        step.report.qps,
        step.report.p50_latency_ms,
        step.report.p99_latency_ms,
        step.report.max_latency_ms,
        step.report.ok,
        step.report.shed,
        step.report.failed,
        step.report.host_cores,
    );
}
