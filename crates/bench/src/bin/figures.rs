//! Regenerates the paper's figures.
//!
//! ```text
//! cargo run --release -p ikrq-bench --bin figures -- [--fig figNN | --fig all]
//!     [--quick | --scale <0..1>] [--seed N] [--out results/]
//! ```
//!
//! Every figure is written to the output directory as CSV, Markdown and JSON;
//! a Markdown summary of all requested figures is printed to stdout.

use ikrq_bench::figures::registry;
use ikrq_bench::workload::ExperimentContext;
use std::path::PathBuf;

struct Args {
    figures: Vec<String>,
    scale: f64,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut figures = Vec::new();
    let mut scale = 0.3;
    let mut seed = 2020;
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => {
                let value = args.next().ok_or("--fig needs a value")?;
                figures.push(value);
            }
            "--quick" => scale = 0.1,
            "--full" => scale = 1.0,
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid scale: {e}"))?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid seed: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err("usage: figures [--fig figNN|all]... [--quick|--full|--scale S] [--seed N] [--out DIR]".into());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = registry().iter().map(|(id, _, _)| id.to_string()).collect();
    }
    Ok(Args {
        figures,
        scale,
        seed,
        out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let ctx = ExperimentContext::new(args.seed, args.scale);
    let registry = registry();
    let mut failures = 0usize;
    for requested in &args.figures {
        let Some((id, description, run)) =
            registry.iter().find(|(id, _, _)| id == requested).copied()
        else {
            eprintln!("unknown figure id: {requested}");
            failures += 1;
            continue;
        };
        eprintln!("running {id} ({description}) ...");
        let started = std::time::Instant::now();
        let report = run(&ctx);
        let elapsed = started.elapsed().as_secs_f64();
        eprintln!("  done in {elapsed:.1} s");
        if let Err(error) = report.write_to(&args.out) {
            eprintln!("  failed to write report: {error}");
            failures += 1;
        }
        println!("{}", report.to_markdown());
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
