//! Venue-size scaling sweep: builds mega venues, hosts each under both index
//! modes, and reports throughput, candidate-set fraction, index build time
//! and memory. See `ikrq_bench::scale` for what each column means.
//!
//! ```text
//! scale [--sizes 100,1000,10000] [--queries 20] [--seed 42] [--csv]
//! ```

use ikrq_bench::scale::{markdown_table, run_scale_sweep, ScaleSweepConfig};

fn main() {
    let mut config = ScaleSweepConfig::default();
    let mut csv = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sizes" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--sizes needs a value"));
                config.sizes = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage(&format!("bad size {s:?}")))
                    })
                    .collect();
            }
            "--queries" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--queries needs a value"));
                config.queries_per_size = value
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad query count {value:?}")));
            }
            "--seed" => {
                let value = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                config.seed = value
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad seed {value:?}")));
            }
            "--csv" => csv = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if config.sizes.is_empty() || config.queries_per_size == 0 {
        usage("sizes and queries must be non-empty");
    }

    eprintln!(
        "scaling sweep: sizes {:?}, {} queries per size, seed {}",
        config.sizes, config.queries_per_size, config.seed
    );
    let points = run_scale_sweep(&config);
    if csv {
        println!(
            "partitions,doors,index_build_ms,index_bytes,scan_qps,accelerated_qps,\
             candidate_fraction,scan_peak_bytes,accelerated_peak_bytes,\
             koe_star_rows,koe_star_total_rows,identical"
        );
        for p in &points {
            println!(
                "{},{},{:.3},{},{:.2},{:.2},{:.6},{},{},{},{},{}",
                p.partitions,
                p.doors,
                p.index_build_ms,
                p.index_bytes,
                p.scan_qps,
                p.accelerated_qps,
                p.candidate_fraction,
                p.scan_peak_memory,
                p.accelerated_peak_memory,
                p.koe_star_rows,
                p.koe_star_total_rows,
                p.identical_responses,
            );
        }
    } else {
        print!("{}", markdown_table(&points));
    }
    if points.iter().any(|p| !p.identical_responses) {
        eprintln!("ERROR: index and scan responses diverged");
        std::process::exit(1);
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "usage: scale [--sizes 100,1000,10000] [--queries 20] [--seed 42] [--csv]\n\
         \n\
         Sweeps venue sizes, comparing the index-accelerated engine against\n\
         the linear-scan engine on identical mega-venue workloads."
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
