//! Venue-size scaling sweep: builds mega venues, hosts each under both index
//! modes, and reports throughput, candidate-set fraction, index build time
//! and memory. See `ikrq_bench::scale` for what each column means.
//!
//! ```text
//! scale [--sizes 100,1000,10000] [--queries 20] [--seed 42] [--csv] [--persist]
//! ```
//!
//! `--persist` additionally enforces the serving criteria on every point
//! of at least 10⁴ partitions: adopting the persisted index must be at
//! least 5× faster than building it fresh, adopting the v2 columnar
//! document body (decode + adopt) must be at least 5× faster than the
//! v1-style record rebuild, and the loaded engines' responses must be
//! byte-identical to the scan engine's.

use ikrq_bench::scale::{markdown_table, run_scale_sweep, ScaleSweepConfig};

fn main() {
    let mut config = ScaleSweepConfig::default();
    let mut csv = false;
    let mut persist = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sizes" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--sizes needs a value"));
                config.sizes = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage(&format!("bad size {s:?}")))
                    })
                    .collect();
            }
            "--queries" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--queries needs a value"));
                config.queries_per_size = value
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad query count {value:?}")));
            }
            "--seed" => {
                let value = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                config.seed = value
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad seed {value:?}")));
            }
            "--csv" => csv = true,
            "--persist" => persist = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if config.sizes.is_empty() || config.queries_per_size == 0 {
        usage("sizes and queries must be non-empty");
    }

    eprintln!(
        "scaling sweep: sizes {:?}, {} queries per size, seed {}",
        config.sizes, config.queries_per_size, config.seed
    );
    let points = run_scale_sweep(&config);
    if csv {
        println!(
            "partitions,doors,generate_ms,space_build_ms,index_build_ms,save_ms,load_ms,\
             index_load_ms,doc_decode_ms,model_adopt_ms,doc_rebuild_ms,\
             index_bytes,scan_qps,accelerated_qps,\
             candidate_fraction,scan_peak_bytes,accelerated_peak_bytes,\
             koe_star_rows,koe_star_total_rows,peak_rss_kib,identical,loaded_identical,\
             columnar_adopted,columnar_identical"
        );
        for p in &points {
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{:.2},{:.2},{:.6},{},{},{},{},{},{},{},{},{}",
                p.partitions,
                p.doors,
                p.generate_ms,
                p.space_build_ms,
                p.index_build_ms,
                p.save_ms,
                p.load_ms,
                p.index_load_ms,
                p.doc_decode_ms,
                p.model_adopt_ms,
                p.doc_rebuild_ms,
                p.index_bytes,
                p.scan_qps,
                p.accelerated_qps,
                p.candidate_fraction,
                p.scan_peak_memory,
                p.accelerated_peak_memory,
                p.koe_star_rows,
                p.koe_star_total_rows,
                p.peak_rss_kib,
                p.identical_responses,
                p.loaded_identical,
                p.columnar_adopted,
                p.columnar_identical,
            );
        }
    } else {
        print!("{}", markdown_table(&points));
    }
    if points.iter().any(|p| !p.identical_responses) {
        eprintln!("ERROR: index and scan responses diverged");
        std::process::exit(1);
    }
    if points.iter().any(|p| !p.loaded_identical) {
        eprintln!("ERROR: loaded-index and scan responses diverged");
        std::process::exit(1);
    }
    if points.iter().any(|p| !p.columnar_identical) {
        eprintln!("ERROR: columnar-loaded and scan responses diverged");
        std::process::exit(1);
    }
    if persist {
        let mut failed = false;
        for p in points.iter().filter(|p| p.partitions >= 10_000) {
            let ratio = p.index_build_ms / p.index_load_ms.max(1e-9);
            eprintln!(
                "persist criterion at {} partitions: build {:.2} ms vs load {:.2} ms ({ratio:.1}x)",
                p.partitions, p.index_build_ms, p.index_load_ms
            );
            if p.index_build_ms < 5.0 * p.index_load_ms {
                eprintln!(
                    "ERROR: persisted-index load must be at least 5x faster than a fresh build"
                );
                failed = true;
            }
            let adopt_ms = p.doc_decode_ms + p.model_adopt_ms;
            let doc_ratio = p.doc_rebuild_ms / adopt_ms.max(1e-9);
            eprintln!(
                "document criterion at {} partitions: rebuild {:.2} ms vs adopt {:.2} ms ({doc_ratio:.1}x)",
                p.partitions, p.doc_rebuild_ms, adopt_ms
            );
            if !p.columnar_adopted {
                eprintln!("ERROR: a v2 cold load degraded to a record rebuild");
                failed = true;
            }
            if p.doc_rebuild_ms < 5.0 * adopt_ms {
                eprintln!(
                    "ERROR: columnar document adoption must be at least 5x faster than a record rebuild"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "usage: scale [--sizes 100,1000,10000] [--queries 20] [--seed 42] [--csv] [--persist]\n\
         \n\
         Sweeps venue sizes, comparing the index-accelerated engine against\n\
         the linear-scan engine on identical mega-venue workloads. --persist\n\
         additionally enforces the >=5x persisted-index load speedup and the\n\
         >=5x columnar document adoption speedup on points of at least 10^4\n\
         partitions."
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
