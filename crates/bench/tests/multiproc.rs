//! Split-process harness tests: spawn the real `http_load` binary as a
//! serving child, and run the full `--router` verification + measurement
//! flow as a subprocess (the same smoke CI runs).

use ikrq_bench::multiproc::ChildServer;
use std::process::Command;
use std::time::Duration;

fn http_load_command() -> Command {
    Command::new(env!("CARGO_BIN_EXE_http_load"))
}

#[cfg(target_os = "linux")]
fn alive(pid: u32) -> bool {
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

#[test]
fn serve_child_spawns_answers_and_dies_on_drop() {
    let mut command = http_load_command();
    command
        .args(["--serve", "127.0.0.1:0"])
        .args(["--floors", "1"])
        .args(["--seed", "2020"])
        .args(["--copies", "2"]);
    let child = ChildServer::spawn(command, Duration::from_secs(300)).expect("child serves");
    let pid = child.id();

    let venues = ikrq_server::client::one_shot(child.addr(), "GET", "/v1/venues", "")
        .expect("venues round trip");
    assert_eq!(venues.status, 200);
    assert!(
        venues.body.contains("#copy-0") && venues.body.contains("#copy-1"),
        "copy aliases are hosted: {}",
        venues.body
    );

    #[cfg(target_os = "linux")]
    {
        assert!(alive(pid));
        drop(child);
        assert!(!alive(pid), "dropping the handle must kill child {pid}");
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        drop(child);
    }
}

#[test]
fn two_shard_router_smoke_verifies_byte_identity() {
    let output = http_load_command()
        .args(["--router", "2"])
        .args(["--floors", "1"])
        .args(["--seed", "2020"])
        .args(["--clients", "2"])
        .args(["--requests", "4"])
        .args(["--instances", "2"])
        .arg("--keep-alive")
        .output()
        .expect("router smoke runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "router smoke failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stderr.contains("byte-identical"),
        "verification pass ran: {stderr}"
    );
    assert!(
        stdout.contains("via 2-shard router"),
        "measurement line printed: {stdout}"
    );
}
