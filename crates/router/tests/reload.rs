//! Hot venue reload through the router: the reload fans out to every
//! replica of the owning shard, swaps engines atomically (no transient
//! `unknown_venue` under concurrent load), and orphans the response cache
//! via the registry epoch — while venues that did not change keep
//! answering exactly as before.

mod common;

use common::*;
use ikrq_core::IkrqEngine;
use ikrq_router::{route, FaultProxy, RouterHandle, ShardSpec};
use ikrq_server::client::one_shot;
use ikrq_server::{serve_with_reloader, ClientReply, ServerHandle, VenueReloader};
use indoor_data::{mega_venue, MegaVenueConfig, Venue};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A venue with a different topology than [`small_venue`] — reloading onto
/// it must visibly change the partition count the cluster reports.
fn bigger_venue(seed: u64) -> Venue {
    let mut config = MegaVenueConfig::sized(120, seed);
    config.floors = 2;
    mega_venue(&config).expect("bigger mega-venue builds")
}

/// A reload source that rebuilds any venue from `venue`'s topology.
fn reloader_for(venue: &Venue) -> VenueReloader {
    let space = venue.space.clone();
    let directory = venue.directory.clone();
    Arc::new(move |_id| Ok(Arc::new(IkrqEngine::new(space.clone(), directory.clone()))))
}

/// Starts a backend whose `POST /v1/admin/reload` swaps in `reload_to`.
fn start_reloading_backend(
    venues: &[(&str, &Venue)],
    reload_to: &Venue,
    cache_capacity: usize,
) -> ServerHandle {
    serve_with_reloader(
        service_with(venues),
        "127.0.0.1:0",
        backend_config(cache_capacity),
        reloader_for(reload_to),
    )
    .expect("backend binds")
}

fn get(addr: SocketAddr, path: &str) -> ClientReply {
    one_shot(addr, "GET", path, "").expect("GET round trip")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> ClientReply {
    one_shot(addr, "POST", path, body).expect("POST round trip")
}

/// The `partitions` count `/v1/venues` reports for one venue id.
fn reported_partitions(addr: SocketAddr, venue_id: &str) -> u64 {
    let reply = get(addr, "/v1/venues");
    assert_eq!(reply.status, 200);
    let body: serde::Value = serde_json::from_str(&reply.body).unwrap();
    body.get("venues")
        .and_then(|venues| venues.as_array())
        .expect("venues array")
        .iter()
        .find(|venue| venue.get("id").unwrap().as_str() == Some(venue_id))
        .unwrap_or_else(|| panic!("venue `{venue_id}` is listed"))
        .get("partitions")
        .unwrap()
        .as_u64()
        .unwrap()
}

/// The registry epoch a backend reports on `/v1/venues`.
fn backend_epoch(addr: SocketAddr) -> u64 {
    let body: serde::Value = serde_json::from_str(&get(addr, "/v1/venues").body).unwrap();
    body.get("epoch").unwrap().as_u64().unwrap()
}

fn router_reloads(router: &RouterHandle) -> u64 {
    let body: serde::Value =
        serde_json::from_str(&get(router.local_addr(), "/v1/stats").body).unwrap();
    body.get("router")
        .unwrap()
        .get("reloads")
        .unwrap()
        .as_u64()
        .unwrap()
}

#[test]
fn reload_swaps_every_replica_and_orphans_the_cache() {
    let old = small_venue(7);
    let new = bigger_venue(9);
    let hosted: Vec<(&str, &Venue)> = vec![("venue-0", &old), ("venue-1", &old)];
    let replica_a = start_reloading_backend(&hosted, &new, 1024);
    let replica_b = start_reloading_backend(&hosted, &new, 1024);
    let router = route(
        vec![ShardSpec {
            name: "solo".to_string(),
            replicas: vec![replica_a.local_addr(), replica_b.local_addr()],
        }],
        "127.0.0.1:0",
        router_config(Duration::from_secs(10)),
    )
    .expect("router binds");
    let addr = router.local_addr();

    // Pre-reload: the cluster reports the old topology, and a search on the
    // venue that will NOT be reloaded caches.
    assert_eq!(
        reported_partitions(addr, "venue-0") as usize,
        old.space.num_partitions()
    );
    let request = &workload("venue-1", &old, 1, 17)[0];
    let body = serde_json::to_string(request).unwrap();
    assert_eq!(
        post(addr, "/v1/search", &body).header("x-ikrq-cache"),
        Some("miss")
    );
    let cached = post(addr, "/v1/search", &body);
    assert_eq!(cached.header("x-ikrq-cache"), Some("hit"));

    // Reload venue-0 through the router: every replica must swap.
    let reply = post(addr, "/v1/admin/reload", "{\"venue\":\"venue-0\"}");
    assert_eq!(reply.status, 200, "reload succeeds: {}", reply.body);
    let reloaded: serde::Value = serde_json::from_str(&reply.body).unwrap();
    assert_eq!(reloaded.get("venue").unwrap().as_str(), Some("venue-0"));
    assert_eq!(reloaded.get("shard").unwrap().as_str(), Some("solo"));
    let replicas = reloaded.get("replicas").unwrap().as_array().unwrap();
    assert_eq!(replicas.len(), 2, "the reload reaches both replicas");
    for replica in replicas {
        assert!(replica.get("epoch").unwrap().as_u64().unwrap() >= 1);
    }
    assert_eq!(router_reloads(&router), 1);

    // Post-reload: the new topology is visible through the router, on the
    // reloaded venue only.
    assert_eq!(
        reported_partitions(addr, "venue-0") as usize,
        new.space.num_partitions()
    );
    assert_ne!(old.space.num_partitions(), new.space.num_partitions());
    assert_eq!(
        reported_partitions(addr, "venue-1") as usize,
        old.space.num_partitions()
    );

    // The epoch bump orphaned every cached response — the unchanged
    // venue's request misses once, answers the same search result, and
    // re-caches under the new epoch.
    let after = post(addr, "/v1/search", &body);
    assert_eq!(after.status, 200);
    assert_eq!(
        after.header("x-ikrq-cache"),
        Some("miss"),
        "the old epoch's cache entry is orphaned"
    );
    assert_eq!(deterministic(&after.body), deterministic(&cached.body));
    let recached = post(addr, "/v1/search", &body);
    assert_eq!(recached.header("x-ikrq-cache"), Some("hit"));
    assert_eq!(recached.body, after.body, "re-cached bytes are verbatim");
}

#[test]
fn reload_under_concurrent_load_is_atomic() {
    // The reloader rebuilds the SAME topology, so every answer — served
    // before, during, or after a swap — must be deterministically equal.
    // What the test rules out is a transient `unknown_venue` (or any
    // non-200) while the registry replaces the engine.
    let venue = small_venue(7);
    let backend = start_reloading_backend(&[("venue-0", &venue)], &venue, 0);
    let router = route(
        vec![shard("solo", backend.local_addr())],
        "127.0.0.1:0",
        router_config(Duration::from_secs(10)),
    )
    .expect("router binds");
    let addr = router.local_addr();

    let requests = workload("venue-0", &venue, 4, 19);
    let oracles: Vec<String> = requests
        .iter()
        .map(|request| {
            let body = serde_json::to_string(request).unwrap();
            let reply = post(addr, "/v1/search", &body);
            assert_eq!(reply.status, 200);
            deterministic(&reply.body)
        })
        .collect();

    thread::scope(|scope| {
        for worker in 0..2 {
            let requests = &requests;
            let oracles = &oracles;
            scope.spawn(move || {
                for round in 0..30 {
                    let index = (worker + round) % requests.len();
                    let body = serde_json::to_string(&requests[index]).unwrap();
                    let reply = post(addr, "/v1/search", &body);
                    assert_eq!(
                        reply.status, 200,
                        "no transient failure mid-reload: {}",
                        reply.body
                    );
                    assert_eq!(deterministic(&reply.body), oracles[index]);
                }
            });
        }
        let mut last_epoch = 0;
        for _ in 0..5 {
            let reply = post(addr, "/v1/admin/reload", "{\"venue\":\"venue-0\"}");
            assert_eq!(reply.status, 200, "reload succeeds: {}", reply.body);
            let reloaded: serde::Value = serde_json::from_str(&reply.body).unwrap();
            let epoch = reloaded.get("replicas").unwrap().as_array().unwrap()[0]
                .get("epoch")
                .unwrap()
                .as_u64()
                .unwrap();
            assert!(epoch > last_epoch, "epochs increase monotonically");
            last_epoch = epoch;
            thread::sleep(Duration::from_millis(20));
        }
    });
}

#[test]
fn reload_refusals_pass_backend_bytes_through() {
    let venue = small_venue(7);

    // A backend with a reload source still refuses unknown venues; the
    // router forwards that refusal verbatim.
    let reloadable = start_reloading_backend(&[("venue-0", &venue)], &venue, 0);
    let router = route(
        vec![shard("solo", reloadable.local_addr())],
        "127.0.0.1:0",
        router_config(Duration::from_secs(10)),
    )
    .expect("router binds");
    let body = "{\"venue\":\"nowhere\"}";
    let direct = post(reloadable.local_addr(), "/v1/admin/reload", body);
    let routed = post(router.local_addr(), "/v1/admin/reload", body);
    assert_eq!(direct.status, 404);
    assert_eq!(routed.status, direct.status);
    assert_eq!(routed.body, direct.body);
    assert_eq!(router_reloads(&router), 0, "refusals are not reloads");

    // A backend WITHOUT a reload source answers 400; again verbatim.
    let plain = start_backend(service_with(&[("venue-0", &venue)]), 0);
    let plain_router = route(
        vec![shard("solo", plain.local_addr())],
        "127.0.0.1:0",
        router_config(Duration::from_secs(10)),
    )
    .expect("router binds");
    let body = "{\"venue\":\"venue-0\"}";
    let direct = post(plain.local_addr(), "/v1/admin/reload", body);
    let routed = post(plain_router.local_addr(), "/v1/admin/reload", body);
    assert_eq!(direct.status, 400);
    assert!(direct.body.contains("no reload source configured"));
    assert_eq!(routed.status, direct.status);
    assert_eq!(routed.body, direct.body);
}

#[test]
fn partial_reload_failure_reports_503_and_a_retry_converges() {
    let venue = small_venue(7);
    let hosted: Vec<(&str, &Venue)> = vec![("venue-0", &venue)];
    let replica_a = start_reloading_backend(&hosted, &venue, 0);
    let replica_b = start_reloading_backend(&hosted, &venue, 0);
    let proxy = FaultProxy::spawn(replica_b.local_addr()).expect("proxy binds");
    let router = route(
        vec![ShardSpec {
            name: "solo".to_string(),
            replicas: vec![replica_a.local_addr(), proxy.addr()],
        }],
        "127.0.0.1:0",
        router_config(Duration::from_secs(10)),
    )
    .expect("router binds");
    let addr = router.local_addr();
    let epoch_a = backend_epoch(replica_a.local_addr());
    let epoch_b = backend_epoch(replica_b.local_addr());

    // Take replica B off the network; the fan-out must report the gap
    // rather than claim a successful reload.
    proxy.stop_accepting();
    proxy.kill_connections();
    let reply = post(addr, "/v1/admin/reload", "{\"venue\":\"venue-0\"}");
    assert_eq!(reply.status, 503);
    assert!(
        reply.body.contains("did not reach every replica"),
        "the error names the gap: {}",
        reply.body
    );
    assert_eq!(
        router_reloads(&router),
        0,
        "a partial reload does not count"
    );
    // The healthy replica already swapped (the operation is idempotent, so
    // over-reloading on retry is safe); the dead one did not.
    assert!(backend_epoch(replica_a.local_addr()) > epoch_a);
    assert_eq!(backend_epoch(replica_b.local_addr()), epoch_b);

    // Once the replica is reachable again, retrying the SAME reload
    // converges the shard: both replicas answer, the router counts it.
    proxy.resume_accepting();
    let reply = post(addr, "/v1/admin/reload", "{\"venue\":\"venue-0\"}");
    assert_eq!(reply.status, 200, "retry succeeds: {}", reply.body);
    let reloaded: serde::Value = serde_json::from_str(&reply.body).unwrap();
    assert_eq!(
        reloaded.get("replicas").unwrap().as_array().unwrap().len(),
        2
    );
    assert!(backend_epoch(replica_b.local_addr()) > epoch_b);
    assert_eq!(router_reloads(&router), 1);
}
