//! Chaos tests: the router against misbehaving backends, driven through
//! [`FaultProxy`] — real sockets dropping, stalling and dying, not mocks.
//!
//! The invariants under test are the resend-safety rules:
//!
//! * a backend that dies **before any reply byte** (process gone,
//!   connection refused or reset, immediate EOF) is safe to fail over —
//!   requests land on the replica and the client never notices;
//! * a backend that is **slow but alive** (reply delayed or blackholed
//!   past the router's backend timeout) is NOT failed over — the request
//!   may still be executing, and resending would run it twice; the client
//!   gets `503 backend_unavailable` and the replica's request counter
//!   does not move;
//! * a shard with no reachable replica degrades *per venue*: in a batch,
//!   the dead shard's slots answer `backend_unavailable` while the
//!   surviving shard's slots stay byte-identical to the healthy run —
//!   and nothing hangs.

mod common;

use common::*;
use ikrq_core::SearchRequest;
use ikrq_router::{route, FaultMode, FaultProxy, RouterConfig, ShardSpec};
use ikrq_server::client::one_shot;
use ikrq_server::ClientReply;
use std::net::SocketAddr;
use std::time::Duration;

fn post(addr: SocketAddr, path: &str, body: &str) -> ClientReply {
    one_shot(addr, "POST", path, body).expect("POST round trip")
}

fn get(addr: SocketAddr, path: &str) -> ClientReply {
    one_shot(addr, "GET", path, "").expect("GET round trip")
}

fn routed_stats(addr: SocketAddr) -> serde::Value {
    serde_json::from_str(&get(addr, "/v1/stats").body).expect("stats parse")
}

fn router_counter(stats: &serde::Value, name: &str) -> u64 {
    stats
        .get("router")
        .and_then(|router| router.get(name))
        .and_then(|value| value.as_u64())
        .expect("router counter")
}

/// A backend dying before any reply byte is failed over transparently:
/// the replica answers, the client sees 200, and the failover/rebalance
/// counters record the event.
#[test]
fn connection_death_fails_over_to_the_replica() {
    let venue = small_venue(3);
    let ids = venue_ids_on_shard(&["solo"], "solo", 1);
    let hosted = [(ids[0].as_str(), &venue)];
    let primary = start_backend(service_with(&hosted), 0);
    let replica = start_backend(service_with(&hosted), 0);
    let proxy = FaultProxy::spawn(primary.local_addr()).expect("proxy spawns");
    let router = route(
        vec![ShardSpec {
            name: "solo".into(),
            replicas: vec![proxy.addr(), replica.local_addr()],
        }],
        "127.0.0.1:0",
        router_config(Duration::from_secs(5)),
    )
    .expect("router binds");

    let request = &workload(&ids[0], &venue, 1, 5)[0];
    let body = serde_json::to_string(request).unwrap();

    // Healthy path goes through the proxy to the primary.
    assert_eq!(post(router.local_addr(), "/v1/search", &body).status, 200);
    assert!(proxy.connections_seen() >= 1);
    let primary_before = primary.stats().requests_served;
    let replica_before = replica.stats().requests_served;

    // The primary "dies": new connections are swallowed (EOF before any
    // reply byte — resend-safe), in-flight pooled connections are killed.
    proxy.stop_accepting();
    proxy.kill_connections();

    let reply = post(router.local_addr(), "/v1/search", &body);
    assert_eq!(reply.status, 200, "the replica must answer: {}", reply.body);
    assert_eq!(replica.stats().requests_served, replica_before + 1);
    assert_eq!(
        primary.stats().requests_served,
        primary_before,
        "the dead primary must not see the request"
    );

    let stats = routed_stats(router.local_addr());
    assert!(router_counter(&stats, "failovers") >= 1);
    assert!(
        router_counter(&stats, "rebalances") >= 1,
        "the failed primary flips unhealthy (fail_threshold = 1)"
    );
    assert_eq!(router_counter(&stats, "backend_unavailable"), 0);

    // Recovery: the proxy accepts again; after a success the primary is
    // healthy and serves again (it is preferred over the replica once
    // marked healthy by the forward path's own bookkeeping).
    proxy.resume_accepting();
    let recovered = post(router.local_addr(), "/v1/search", &body);
    assert_eq!(recovered.status, 200);
}

/// A slow-but-alive backend — replies blackholed past the router's
/// backend timeout — is NOT failed over: the client gets
/// `503 backend_unavailable`, the replica's request counter does not
/// move, and the stalled backend executed the request exactly once.
#[test]
fn timeouts_never_fail_over_or_double_execute() {
    let venue = small_venue(9);
    let ids = venue_ids_on_shard(&["solo"], "solo", 1);
    let hosted = [(ids[0].as_str(), &venue)];
    let stalled = start_backend(service_with(&hosted), 0);
    let replica = start_backend(service_with(&hosted), 0);
    let proxy = FaultProxy::spawn(stalled.local_addr()).expect("proxy spawns");
    let router = route(
        vec![ShardSpec {
            name: "solo".into(),
            replicas: vec![proxy.addr(), replica.local_addr()],
        }],
        "127.0.0.1:0",
        router_config(Duration::from_millis(700)),
    )
    .expect("router binds");

    let request = &workload(&ids[0], &venue, 1, 13)[0];
    let body = serde_json::to_string(request).unwrap();
    assert_eq!(post(router.local_addr(), "/v1/search", &body).status, 200);

    // From now on the backend receives requests but its replies vanish.
    proxy.set_mode(FaultMode::Blackhole);
    let stalled_before = stalled.stats().requests_served;
    let replica_before = replica.stats().requests_served;

    let reply = post(router.local_addr(), "/v1/search", &body);
    assert_eq!(reply.status, 503);
    assert!(reply.body.contains("\"code\":\"backend_unavailable\""));
    assert!(
        reply.body.contains("may still be executing"),
        "the reply explains why no failover happened: {}",
        reply.body
    );

    // The stalled backend took (and executed) the request exactly once;
    // the replica was never asked — no double execution.
    assert_eq!(stalled.stats().requests_served, stalled_before + 1);
    assert_eq!(
        replica.stats().requests_served,
        replica_before,
        "a timed-out request must not be resent to the replica"
    );
    let stats = routed_stats(router.local_addr());
    assert_eq!(router_counter(&stats, "failovers"), 0);
    assert!(router_counter(&stats, "backend_unavailable") >= 1);
}

/// Killing one shard mid-workload degrades per venue: the dead shard's
/// batch slots answer `backend_unavailable`, the surviving shard's slots
/// are byte-identical to the same sub-batch served directly (cache
/// replay), and nothing hangs or double-executes.
#[test]
fn dead_shard_degrades_batches_per_venue() {
    let venue = small_venue(17);
    let ids_a = venue_ids_on_shard(&["a", "b"], "a", 2);
    let ids_b = venue_ids_on_shard(&["a", "b"], "b", 2);
    let all: Vec<String> = ids_a.iter().chain(ids_b.iter()).cloned().collect();
    let hosted: Vec<(&str, &indoor_data::Venue)> =
        all.iter().map(|id| (id.as_str(), &venue)).collect();
    let backend_a = start_backend(service_with(&hosted), 1024);
    let backend_b = start_backend(service_with(&hosted), 1024);
    let proxy_b = FaultProxy::spawn(backend_b.local_addr()).expect("proxy spawns");
    let router = route(
        vec![
            shard("a", backend_a.local_addr()),
            shard("b", proxy_b.addr()),
        ],
        "127.0.0.1:0",
        router_config(Duration::from_secs(5)),
    )
    .expect("router binds");

    let mut requests: Vec<SearchRequest> = Vec::new();
    for (index, id) in all.iter().cycle().take(6).enumerate() {
        requests.push(workload(id, &venue, index + 1, 29)[index].clone());
    }
    let body = batch_body(&requests.iter().collect::<Vec<_>>());

    // Healthy run first — this also primes backend_a's cache with shard
    // a's entries, pinning the byte-identity baseline.
    let healthy = post(router.local_addr(), "/v1/search/batch", &body);
    assert_eq!(healthy.status, 200);
    let (healthy_entries, _) = split_entries(&healthy.body);

    // Shard b dies: connections swallowed and killed.
    proxy_b.stop_accepting();
    proxy_b.kill_connections();

    let degraded = post(router.local_addr(), "/v1/search/batch", &body);
    assert_eq!(degraded.status, 200, "a dead shard must not fail the batch");
    let (entries, hits) = split_entries(&degraded.body);
    assert_eq!(entries.len(), requests.len());

    let mut unavailable = 0;
    let mut survived = 0;
    for ((request, healthy_entry), entry) in requests.iter().zip(&healthy_entries).zip(&entries) {
        if router.shard_for(&request.venue) == "a" {
            // Survivors replay backend_a's cache: byte-identical to the
            // healthy run, flagged as cache hits.
            assert_eq!(entry, healthy_entry, "surviving venue diverged");
            survived += 1;
        } else {
            assert!(
                entry.starts_with("{\"ok\":null,\"err\":"),
                "dead-shard slot must be an error entry: {entry}"
            );
            assert!(entry.contains("\"code\":\"backend_unavailable\""));
            unavailable += 1;
        }
    }
    let expected_survivors = requests
        .iter()
        .filter(|request| router.shard_for(&request.venue) == "a")
        .count();
    assert!(expected_survivors > 0 && expected_survivors < requests.len());
    assert_eq!(survived, expected_survivors);
    assert_eq!(unavailable, requests.len() - expected_survivors);
    assert_eq!(hits as usize, survived, "survivors were served from cache");
}

/// The whole cluster down: a single search answers `503` with the closed
/// `backend_unavailable` error code — promptly, not by hanging until some
/// distant timeout.
#[test]
fn all_replicas_down_answers_503_promptly() {
    let venue = small_venue(21);
    let ids = venue_ids_on_shard(&["solo"], "solo", 1);
    let hosted = [(ids[0].as_str(), &venue)];
    let backend = start_backend(service_with(&hosted), 0);
    let dead_addr = {
        // An address that refuses connections: bind, then drop.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let router = route(
        vec![ShardSpec {
            name: "solo".into(),
            replicas: vec![dead_addr],
        }],
        "127.0.0.1:0",
        router_config(Duration::from_secs(5)),
    )
    .expect("router binds");
    drop(backend);

    let request = &workload(&ids[0], &venue, 1, 37)[0];
    let body = serde_json::to_string(request).unwrap();
    let started = std::time::Instant::now();
    let reply = post(router.local_addr(), "/v1/search", &body);
    assert_eq!(reply.status, 503);
    assert!(reply.body.contains("\"code\":\"backend_unavailable\""));
    assert!(reply.body.contains("no live backend for shard `solo`"));
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "a refused dial must fail fast, not hang"
    );
}

/// Router configurations that cannot work are rejected at construction.
#[test]
fn invalid_topologies_are_rejected() {
    let config = router_config(Duration::from_secs(1));
    assert!(route(Vec::new(), "127.0.0.1:0", config.clone()).is_err());
    let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
    assert!(route(
        vec![shard("dup", addr), shard("dup", addr)],
        "127.0.0.1:0",
        config.clone()
    )
    .is_err());
    assert!(route(
        vec![ShardSpec {
            name: "empty".into(),
            replicas: Vec::new()
        }],
        "127.0.0.1:0",
        config
    )
    .is_err());
    let zero_vnodes = RouterConfig {
        vnodes: 0,
        ..router_config(Duration::from_secs(1))
    };
    assert!(route(vec![shard("a", addr)], "127.0.0.1:0", zero_vnodes).is_err());
}

/// `ShardSpec::parse` round-trips the CLI form and rejects malformed specs.
#[test]
fn shard_specs_parse_the_cli_form() {
    let spec = ShardSpec::parse("alpha=127.0.0.1:7101,127.0.0.1:7102").unwrap();
    assert_eq!(spec.name, "alpha");
    assert_eq!(spec.replicas.len(), 2);
    assert!(ShardSpec::parse("no-equals").is_err());
    assert!(ShardSpec::parse("=127.0.0.1:1").is_err());
    assert!(ShardSpec::parse("name=").is_err());
    assert!(ShardSpec::parse("name=not-an-addr").is_err());
}
