//! End-to-end tests of the routing tier against live backends: placement,
//! verbatim forwarding, batch splicing, and the byte-identity contract
//! with a single-process oracle.
//!
//! Byte-identity is pinned two ways, because full response bodies carry
//! per-run timing:
//!
//! * **same-process, raw bytes** — the backends run with a response cache,
//!   so replaying a request the router already executed returns the exact
//!   cached body; comparing those bytes against the router's spliced batch
//!   entries (and its single-search passthrough) proves the router never
//!   re-prints a backend response;
//! * **cross-process, deterministic part** — the same workload against a
//!   single-process oracle must agree on `SearchResponse::deterministic_json`
//!   for every slot, and byte-for-byte on every *error* entry (error
//!   bodies carry no timing).

mod common;

use common::*;
use ikrq_core::SearchRequest;
use ikrq_router::{route, RouterHandle};
use ikrq_server::client::one_shot;
use ikrq_server::{ClientReply, ServerHandle};
use indoor_data::Venue;
use std::net::SocketAddr;
use std::time::Duration;

/// Two shards (`a`, `b`) of one backend each, every backend hosting every
/// venue, plus a single-process oracle hosting the same venues.
struct TwoShards {
    ids_a: Vec<String>,
    ids_b: Vec<String>,
    venue: Venue,
    backend_a: ServerHandle,
    backend_b: ServerHandle,
    oracle: ServerHandle,
    router: RouterHandle,
}

impl TwoShards {
    fn start() -> TwoShards {
        let venue = small_venue(7);
        let mut ids = venue_ids_on_shard(&["a", "b"], "a", 2);
        let ids_b = venue_ids_on_shard(&["a", "b"], "b", 2);
        ids.extend(ids_b.iter().cloned());
        let hosted: Vec<(&str, &Venue)> = ids.iter().map(|id| (id.as_str(), &venue)).collect();
        let backend_a = start_backend(service_with(&hosted), 1024);
        let backend_b = start_backend(service_with(&hosted), 1024);
        let oracle = start_backend(service_with(&hosted), 1024);
        let router = route(
            vec![
                shard("a", backend_a.local_addr()),
                shard("b", backend_b.local_addr()),
            ],
            "127.0.0.1:0",
            router_config(Duration::from_secs(10)),
        )
        .expect("router binds");
        let ids_a = ids[..2].to_vec();
        TwoShards {
            ids_a,
            ids_b,
            venue,
            backend_a,
            backend_b,
            oracle,
            router,
        }
    }

    fn addr(&self) -> SocketAddr {
        self.router.local_addr()
    }

    fn backend_for(&self, venue_id: &str) -> &ServerHandle {
        match self.router.shard_for(venue_id) {
            "a" => &self.backend_a,
            "b" => &self.backend_b,
            other => panic!("unexpected shard {other}"),
        }
    }
}

fn get(addr: SocketAddr, path: &str) -> ClientReply {
    one_shot(addr, "GET", path, "").expect("GET round trip")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> ClientReply {
    one_shot(addr, "POST", path, body).expect("POST round trip")
}

#[test]
fn healthz_reports_cluster_shape() {
    let cluster = TwoShards::start();
    let reply = get(cluster.addr(), "/v1/healthz");
    assert_eq!(reply.status, 200);
    let body: serde::Value = serde_json::from_str(&reply.body).unwrap();
    assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(body.get("shards").unwrap().as_u64(), Some(2));
    assert_eq!(body.get("backends_total").unwrap().as_u64(), Some(2));
    assert_eq!(body.get("backends_healthy").unwrap().as_u64(), Some(2));
}

#[test]
fn single_search_passes_backend_bytes_through() {
    let cluster = TwoShards::start();
    let venue_id = cluster.ids_a[0].clone();
    let request = &workload(&venue_id, &cluster.venue, 1, 11)[0];
    let body = serde_json::to_string(request).unwrap();

    // Prime the owning backend directly; the router must then serve the
    // exact cached bytes (proof it reached the same process and relayed
    // the reply verbatim).
    let direct = post(
        cluster.backend_for(&venue_id).local_addr(),
        "/v1/search",
        &body,
    );
    assert_eq!(direct.status, 200);
    assert_eq!(direct.header("x-ikrq-cache"), Some("miss"));

    let routed = post(cluster.addr(), "/v1/search", &body);
    assert_eq!(routed.status, 200);
    assert_eq!(routed.header("x-ikrq-cache"), Some("hit"));
    assert_eq!(
        routed.body, direct.body,
        "router must not re-print the body"
    );

    // The other backend never saw a search for this venue: routing the
    // same body again still hits.
    let again = post(cluster.addr(), "/v1/search", &body);
    assert_eq!(again.header("x-ikrq-cache"), Some("hit"));
    assert_eq!(again.body, direct.body);
}

#[test]
fn batch_splices_verbatim_backend_bytes_in_request_order() {
    let cluster = TwoShards::start();
    // Interleave venues of both shards plus one unknown venue.
    let mut requests: Vec<SearchRequest> = Vec::new();
    for (index, venue_id) in cluster
        .ids_a
        .iter()
        .chain(cluster.ids_b.iter())
        .cycle()
        .take(8)
        .enumerate()
    {
        requests.push(workload(venue_id, &cluster.venue, index + 1, 23)[index].clone());
    }
    let mut unknown = requests[3].clone();
    unknown.venue = "nowhere".to_string();
    requests.insert(4, unknown);

    let body = batch_body(&requests.iter().collect::<Vec<_>>());
    let routed = post(cluster.addr(), "/v1/search/batch", &body);
    assert_eq!(routed.status, 200);
    let (entries, hits) = split_entries(&routed.body);
    assert_eq!(entries.len(), requests.len());
    assert_eq!(hits, 0, "first execution misses everywhere");
    assert_eq!(routed.header("x-ikrq-cache-hits"), Some("0"));

    for (request, entry) in requests.iter().zip(&entries) {
        match entry_ok(entry) {
            Some(ok_body) => {
                // Replaying the request against the owning backend returns
                // the cached body — the exact bytes the router spliced.
                let serialized = serde_json::to_string(request).unwrap();
                let direct = post(
                    cluster.backend_for(&request.venue).local_addr(),
                    "/v1/search",
                    &serialized,
                );
                assert_eq!(direct.header("x-ikrq-cache"), Some("hit"));
                assert_eq!(direct.body, ok_body, "spliced entry is verbatim");
            }
            None => {
                assert_eq!(request.venue, "nowhere");
                assert!(entry.contains("\"code\":\"unknown_venue\""));
            }
        }
    }

    // Cross-process oracle: same batch against a single process agrees on
    // every deterministic part, and byte-for-byte on error entries.
    let oracle = post(cluster.oracle.local_addr(), "/v1/search/batch", &body);
    assert_eq!(oracle.status, 200);
    let (oracle_entries, _) = split_entries(&oracle.body);
    assert_eq!(oracle_entries.len(), entries.len());
    for (routed_entry, oracle_entry) in entries.iter().zip(&oracle_entries) {
        match (entry_ok(routed_entry), entry_ok(oracle_entry)) {
            (Some(routed_ok), Some(oracle_ok)) => {
                assert_eq!(deterministic(routed_ok), deterministic(oracle_ok));
            }
            (None, None) => assert_eq!(routed_entry, oracle_entry),
            other => panic!("entry kinds diverge from the oracle: {other:?}"),
        }
    }

    // Replaying the whole batch through the router: every slot now hits.
    let replay = post(cluster.addr(), "/v1/search/batch", &body);
    let (_, replay_hits) = split_entries(&replay.body);
    assert_eq!(
        replay_hits as usize,
        requests.len() - 1,
        "all but the error hit"
    );
}

#[test]
fn router_errors_match_backend_bytes() {
    let cluster = TwoShards::start();
    let backend = cluster.backend_a.local_addr();
    let cases: Vec<(&str, &str, &str)> = vec![
        ("GET", "/v1/nope", ""),
        ("GET", "/nope", ""),
        ("DELETE", "/v1/search", ""),
        ("PUT", "/v1/healthz", ""),
        ("GET", "/v2/healthz", ""),
        ("POST", "/v1/search/batch", "{"),
        ("POST", "/v1/search/batch", "{\"requests\":[]}"),
        ("POST", "/v1/search", "not json at all"),
        ("POST", "/v1/search", "{\"venue\":\"nowhere\"}"),
    ];
    for (method, path, body) in cases {
        let direct = one_shot(backend, method, path, body).unwrap();
        let routed = one_shot(cluster.addr(), method, path, body).unwrap();
        assert_eq!(routed.status, direct.status, "{method} {path}");
        assert_eq!(routed.body, direct.body, "{method} {path}");
        assert_eq!(
            routed.header("allow"),
            direct.header("allow"),
            "{method} {path}"
        );
    }
}

#[test]
fn venues_aggregates_ring_ownership() {
    let cluster = TwoShards::start();
    let reply = get(cluster.addr(), "/v1/venues");
    assert_eq!(reply.status, 200);
    let body: serde::Value = serde_json::from_str(&reply.body).unwrap();
    let venues = body.get("venues").unwrap().as_array().unwrap();
    // Every backend hosts all four venues, but the aggregate attributes
    // each venue to its ring owner exactly once.
    assert_eq!(venues.len(), 4);
    let mut ids: Vec<&str> = venues
        .iter()
        .map(|venue| venue.get("id").unwrap().as_str().unwrap())
        .collect();
    let mut expected: Vec<&str> = cluster
        .ids_a
        .iter()
        .chain(cluster.ids_b.iter())
        .map(|id| id.as_str())
        .collect();
    ids.sort_unstable();
    expected.sort_unstable();
    assert_eq!(ids, expected);
    let shards = body.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert_eq!(shard.get("venues").unwrap().as_u64(), Some(2));
    }
}

#[test]
fn stats_reports_backends_and_counters() {
    let cluster = TwoShards::start();
    let venue_id = cluster.ids_b[0].clone();
    let request = &workload(&venue_id, &cluster.venue, 1, 31)[0];
    let body = serde_json::to_string(request).unwrap();
    assert_eq!(post(cluster.addr(), "/v1/search", &body).status, 200);

    let reply = get(cluster.addr(), "/v1/stats");
    assert_eq!(reply.status, 200);
    let stats: serde::Value = serde_json::from_str(&reply.body).unwrap();
    let shards = stats.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        for backend in shard.get("backends").unwrap().as_array().unwrap() {
            assert_eq!(backend.get("healthy").unwrap().as_bool(), Some(true));
        }
    }
    let router = stats.get("router").unwrap();
    assert!(router.get("forwarded").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(router.get("failovers").unwrap().as_u64(), Some(0));
    assert_eq!(router.get("backend_unavailable").unwrap().as_u64(), Some(0));
    let engine = stats.get("stats").unwrap();
    assert!(engine.get("requests_served").unwrap().as_u64().unwrap() >= 1);
}

#[test]
fn oversized_batches_are_rejected_at_the_router() {
    let cluster = TwoShards::start();
    let venue_id = cluster.ids_a[0].clone();
    let request = workload(&venue_id, &cluster.venue, 1, 41)[0].clone();
    let max = backend_config(0).max_batch_size;
    let requests: Vec<SearchRequest> = (0..max + 1).map(|_| request.clone()).collect();
    let body = batch_body(&requests.iter().collect::<Vec<_>>());
    let reply = post(cluster.addr(), "/v1/search/batch", &body);
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("\"code\":\"invalid_request\""));
    assert!(reply.body.contains(&format!(
        "batch of {} requests exceeds the limit of {max}",
        max + 1
    )));
}
