//! Shared fixture code of the router integration tests: small mega-venues,
//! backend servers on ephemeral ports, deterministic workloads, and the
//! response-comparison helpers.
//!
//! Compiled once per test binary; not every binary uses every helper.
#![allow(dead_code)]

use ikrq_core::{CacheConfig, IkrqService, SearchRequest, VariantConfig};
use ikrq_router::{HashRing, RouterConfig, ShardSpec, DEFAULT_VNODES};
use ikrq_server::{serve, ServerConfig, ServerHandle};
use indoor_data::{mega_venue, MegaVenueConfig, QueryGenerator, Venue, WorkloadConfig};
use indoor_keywords::QueryKeywords;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// A small (fast to build, non-trivial to search) mega-venue.
pub fn small_venue(seed: u64) -> Venue {
    let mut config = MegaVenueConfig::sized(48, seed);
    config.floors = 2;
    mega_venue(&config).expect("small mega-venue builds")
}

/// A service hosting the given `(id, venue)` pairs.
pub fn service_with(venues: &[(&str, &Venue)]) -> Arc<IkrqService> {
    let service = Arc::new(IkrqService::new());
    for (id, venue) in venues {
        service
            .register_venue(*id, venue.space.clone(), venue.directory.clone())
            .expect("venue registers");
    }
    service
}

/// A backend server configuration: small worker pool, cache as requested.
pub fn backend_config(cache_capacity: usize) -> ServerConfig {
    ServerConfig {
        workers: 2,
        cache: CacheConfig {
            shards: 1,
            capacity: cache_capacity,
        },
        ..ServerConfig::default()
    }
}

/// Starts a backend on an ephemeral port.
pub fn start_backend(service: Arc<IkrqService>, cache_capacity: usize) -> ServerHandle {
    serve(service, "127.0.0.1:0", backend_config(cache_capacity)).expect("backend binds")
}

/// Router configuration tuned for tests: 2 workers, fast failure
/// detection, and probes effectively disabled (one initial round, then
/// nothing for an hour) so request counters on the backends stay
/// attributable to the searches a test sends.
pub fn router_config(backend_timeout: Duration) -> RouterConfig {
    RouterConfig {
        server: ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        backend_timeout,
        probe_interval: Duration::from_secs(3600),
        probe_timeout: Duration::from_millis(500),
        fail_threshold: 1,
        pool_per_backend: 4,
        ..RouterConfig::default()
    }
}

/// A one-replica shard.
pub fn shard(name: &str, addr: SocketAddr) -> ShardSpec {
    ShardSpec {
        name: name.to_string(),
        replicas: vec![addr],
    }
}

/// Deterministic search requests against one venue.
pub fn workload(venue_id: &str, venue: &Venue, count: usize, seed: u64) -> Vec<SearchRequest> {
    let generator = QueryGenerator::new(venue);
    let mut rng = StdRng::seed_from_u64(seed);
    // The paper-scale δs2t default (1500 m) exceeds the small fixture
    // venue; target a distance it can realise.
    let config = WorkloadConfig {
        k: 2,
        s2t: 100.0,
        ..WorkloadConfig::default()
    };
    let instances = generator.generate_batch(&config, count, &mut rng);
    assert_eq!(
        instances.len(),
        count,
        "workload generation must satisfy the requested count"
    );
    instances
        .into_iter()
        .map(|instance| {
            SearchRequest::builder(venue_id)
                .from(instance.start)
                .to(instance.terminal)
                .delta(instance.delta)
                .keywords(
                    QueryKeywords::new(instance.keywords.iter().cloned())
                        .expect("generated keywords are valid"),
                )
                .k(instance.k)
                .alpha(instance.alpha)
                .tau(instance.tau)
                .variant(VariantConfig::toe())
                .build()
                .expect("generated requests validate")
        })
        .collect()
}

/// The batch envelope for a set of requests — the same serialization the
/// router itself uses for its sub-batches.
pub fn batch_body(requests: &[&SearchRequest]) -> String {
    let parts: Vec<String> = requests
        .iter()
        .map(|request| serde_json::to_string(request).expect("requests serialize"))
        .collect();
    format!("{{\"requests\":[{}]}}", parts.join(","))
}

/// Splits a combined batch body into its raw entry slices (a test-side
/// mirror of the router's splicer, kept independent so the two cannot
/// share a bug) plus the cache-hit count.
pub fn split_entries(body: &str) -> (Vec<String>, u64) {
    let value: serde::Value = serde_json::from_str(body).expect("batch body parses");
    // Parse only to COUNT the entries, then slice the raw text so the
    // returned entries are verbatim bytes, not re-printed JSON.
    let count = value
        .get("responses")
        .and_then(|responses| responses.as_array())
        .expect("responses array")
        .len();
    let hits = value
        .get("cache_hits")
        .and_then(|hits| hits.as_u64())
        .expect("cache_hits");
    let rest = body
        .strip_prefix("{\"api_version\":1,\"responses\":[")
        .expect("batch prefix");
    let mut entries = Vec::with_capacity(count);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (index, byte) in rest.bytes().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if byte == b'\\' {
                escaped = true;
            } else if byte == b'"' {
                in_string = false;
            }
            continue;
        }
        match byte {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' if depth > 0 => depth -= 1,
            b']' if depth > 0 => depth -= 1,
            b']' => {
                if index > start {
                    entries.push(rest[start..index].to_string());
                }
                break;
            }
            b',' if depth == 0 => {
                entries.push(rest[start..index].to_string());
                start = index + 1;
            }
            _ => {}
        }
    }
    assert_eq!(entries.len(), count, "sliced entries match parsed count");
    (entries, hits)
}

/// The `ok` body inside a batch entry, or `None` for an error entry.
pub fn entry_ok(entry: &str) -> Option<&str> {
    let body = entry
        .strip_prefix("{\"ok\":")?
        .strip_suffix(",\"err\":null}")?;
    if body == "null" {
        None
    } else {
        Some(body)
    }
}

/// The deterministic part of a search-response body (everything except
/// timing/metrics), for cross-process comparisons.
pub fn deterministic(body: &str) -> String {
    let response: ikrq_core::SearchResponse =
        serde_json::from_str(body).expect("search response parses");
    response.deterministic_json()
}

/// Picks `count` venue ids owned by `shard_name` on a ring over `shards`.
pub fn venue_ids_on_shard(shards: &[&str], shard_name: &str, count: usize) -> Vec<String> {
    let ring = HashRing::new(shards, DEFAULT_VNODES);
    let mut picked = Vec::with_capacity(count);
    for index in 0.. {
        let id = format!("venue-{index}");
        if ring.assign_name(&id) == shard_name {
            picked.push(id);
            if picked.len() == count {
                break;
            }
        }
    }
    picked
}
