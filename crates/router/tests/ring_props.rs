//! Property tests of the consistent-hash ring (`ikrq_router::ring`).
//!
//! Three families of properties:
//!
//! * **totality & determinism** — every venue id maps to exactly one
//!   in-range shard, identically across independently built rings (two
//!   router processes in front of the same shards must agree);
//! * **minimal movement** — adding a shard moves venues only *onto* the
//!   new shard, removing one moves only the removed shard's venues; the
//!   fraction moved is far below a naive `hash % n` placement, which is
//!   the whole point of using a ring (topology changes orphan one shard's
//!   worth of response cache, not all of them);
//! * **cross-process stability** — placements are pinned against golden
//!   values computed from the FNV-1a constants alone, so any process (or
//!   future compiler/std version) computes the same ownership map.

use ikrq_router::ring::{fnv1a64, ring_point, HashRing, DEFAULT_VNODES};
use proptest::collection;
use proptest::prelude::*;

/// A pool of shard names guaranteed unique per index.
fn shard_names(count: usize) -> Vec<String> {
    (0..count).map(|index| format!("shard-{index}")).collect()
}

/// A deterministic venue-id corpus shaped like real ids (`mega-N`,
/// `floor-N`, plus some unicode), big enough for stable statistics.
fn venue_corpus(count: usize) -> Vec<String> {
    (0..count)
        .map(|index| match index % 4 {
            0 => format!("mega-{index}"),
            1 => format!("venue_{index}"),
            2 => format!("mall/floor-{index}"),
            _ => format!("☃-{index}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every id lands on exactly one in-range shard, and two rings built
    /// independently from the same topology agree on every placement.
    #[test]
    fn assignment_is_total_and_process_independent(
        shards in 1usize..7,
        vnodes in 1usize..80,
        venues in collection::vec("[a-z0-9/_-]{0,24}", 1..40),
    ) {
        let names = shard_names(shards);
        let ring = HashRing::new(&names, vnodes);
        let twin = HashRing::new(&names, vnodes);
        for venue in &venues {
            let shard = ring.assign(venue);
            prop_assert!(shard < shards);
            prop_assert_eq!(twin.assign(venue), shard);
            prop_assert_eq!(ring.assign_name(venue), names[shard].as_str());
        }
    }

    /// Adding a shard moves venues only ONTO the new shard: any id whose
    /// placement changed is now owned by the addition. Nothing migrates
    /// between pre-existing shards, so at most one shard's worth of
    /// response cache goes cold.
    #[test]
    fn adding_a_shard_moves_venues_only_onto_it(
        shards in 1usize..6,
        vnodes in 1usize..64,
        venues in collection::vec("[a-z0-9/_-]{0,24}", 1..60),
    ) {
        let before_names = shard_names(shards);
        let mut after_names = before_names.clone();
        after_names.push("shard-new".to_string());
        let before = HashRing::new(&before_names, vnodes);
        let after = HashRing::new(&after_names, vnodes);
        for venue in &venues {
            let old = before.assign_name(venue);
            let new = after.assign_name(venue);
            if old != new {
                prop_assert_eq!(
                    new,
                    "shard-new",
                    "a moved venue must land on the added shard, not migrate \
                     between survivors (venue `{}` moved {} -> {})",
                    venue, old, new
                );
            }
        }
    }

    /// Removing a shard moves only the removed shard's venues; survivors
    /// keep every placement they had.
    #[test]
    fn removing_a_shard_strands_only_its_venues(
        shards in 2usize..7,
        vnodes in 1usize..64,
        venues in collection::vec("[a-z0-9/_-]{0,24}", 1..60),
    ) {
        let before_names = shard_names(shards);
        // Remove the last shard; survivors keep their names (renaming IS
        // movement, by design — the name is what placement hashes).
        let after_names = shard_names(shards - 1);
        let removed = before_names.last().unwrap().as_str();
        let before = HashRing::new(&before_names, vnodes);
        let after = HashRing::new(&after_names, vnodes);
        for venue in &venues {
            let old = before.assign_name(venue);
            if old != removed {
                prop_assert_eq!(
                    after.assign_name(venue), old,
                    "venue `{}` was not on the removed shard but moved", venue
                );
            } else {
                prop_assert_ne!(after.assign_name(venue), removed);
            }
        }
    }
}

/// The operational payoff over naive modulo placement, measured: growing
/// 3 shards to 4 must move roughly 1/4 of a large corpus on the ring
/// (bounded well under half), while `fnv1a64(venue) % n` reshuffles about
/// 3/4 of it. Fixed corpus, so the statistic is deterministic.
#[test]
fn ring_movement_is_far_below_naive_rehash() {
    let venues = venue_corpus(4000);
    let before = HashRing::new(&shard_names(3), DEFAULT_VNODES);
    let after = HashRing::new(&shard_names(4), DEFAULT_VNODES);
    let ring_moved = venues
        .iter()
        .filter(|venue| before.assign(venue) != after.assign(venue))
        .count();
    let naive_moved = venues
        .iter()
        .filter(|venue| {
            let hash = fnv1a64(venue.as_bytes());
            hash % 3 != hash % 4
        })
        .count();
    assert!(
        ring_moved < venues.len() / 2,
        "ring moved {ring_moved} of {} — consistent hashing should move ~1/4",
        venues.len()
    );
    assert!(
        ring_moved * 2 < naive_moved,
        "ring moved {ring_moved}, naive rehash moved {naive_moved}; the ring \
         must move far fewer venues than modulo placement"
    );
}

/// Load balance sanity: with the default vnode count, no shard of a
/// 4-shard ring owns a wildly disproportionate slice of a large corpus.
#[test]
fn shards_split_a_large_corpus_roughly_evenly() {
    let venues = venue_corpus(4000);
    let ring = HashRing::new(&shard_names(4), DEFAULT_VNODES);
    let mut owned = [0usize; 4];
    for venue in &venues {
        owned[ring.assign(venue)] += 1;
    }
    let expected = venues.len() / 4;
    for (shard, &count) in owned.iter().enumerate() {
        assert!(
            count > expected / 4 && count < expected * 3,
            "shard {shard} owns {count} of {} venues (expected near {expected})",
            venues.len()
        );
    }
}

/// Golden ownership spots, pinned bit-for-bit: these are pure functions of
/// the FNV-1a constants and the `"{name}#{vnode}"` point recipe, so every
/// router build ever deployed must reproduce them exactly.
#[test]
fn golden_hashes_and_placements_are_stable() {
    assert_eq!(fnv1a64(b"shard-0#0"), 0xfbef_6f64_7374_af5d);
    assert_eq!(ring_point(b"shard-0#0"), 0xd09f_cac3_4807_c822);
    let ring = HashRing::new(&shard_names(4), DEFAULT_VNODES);
    let placements: Vec<usize> = ["mega-0", "mega-4", "venue_1", "mall/floor-2", "☃-3"]
        .iter()
        .map(|venue| ring.assign(venue))
        .collect();
    assert_eq!(placements, golden_placements());
}

/// Computed once and frozen; see `golden_hashes_and_placements_are_stable`.
fn golden_placements() -> Vec<usize> {
    vec![1, 0, 0, 2, 3]
}

/// Regression for the skew the finalizing mixer exists for: raw FNV-1a
/// left `shard-0`/`shard-1` vnode points correlated, and a TWO-shard ring
/// gave one shard 91% of a real corpus. With the mixer, neither shard of
/// a 2-shard ring may own more than ~2/3 of it.
#[test]
fn two_shard_rings_are_not_lopsided() {
    let venues = venue_corpus(4000);
    let ring = HashRing::new(&shard_names(2), DEFAULT_VNODES);
    let owned = venues
        .iter()
        .filter(|venue| ring.assign(venue) == 0)
        .count();
    let bound = venues.len() * 2 / 3;
    assert!(
        owned < bound && venues.len() - owned < bound,
        "2-shard split {owned}/{} is lopsided",
        venues.len() - owned
    );
}
