//! [`FaultProxy`]: a TCP fault-injection proxy for chaos tests.
//!
//! The proxy sits between the router and one backend and misbehaves on
//! command. Requests (client→backend bytes) always flow — the point of
//! most faults is that the backend *does* receive and execute the request
//! — while the configured [`FaultMode`] shapes the *reply* path:
//!
//! * [`FaultMode::Forward`] — transparent relay (the baseline),
//! * [`FaultMode::Delay`] — replies arrive late; a delay beyond the
//!   router's backend timeout makes the exchange time out *after* the
//!   backend executed, which is exactly the situation where failing over
//!   would double-execute,
//! * [`FaultMode::Blackhole`] — replies never arrive at all.
//!
//! Orthogonally, [`FaultProxy::kill_connections`] hard-closes every live
//! connection mid-flight (the peer observes EOF/ECONNRESET — the
//! connection-death class that *is* safe to fail over), and
//! [`FaultProxy::stop_accepting`] makes the proxy swallow new connections
//! (accepted, then immediately closed — a dying process). Chaos tests in
//! `tests/failover.rs` drive these to prove the router's resend-safety
//! rules hold under real socket behaviour, not mocks.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How the proxy treats backend replies (requests always flow through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Relay both directions transparently.
    Forward,
    /// Hold every reply chunk for this long before relaying it.
    Delay(Duration),
    /// Swallow replies entirely; the client never hears back.
    Blackhole,
}

struct ProxyInner {
    upstream: SocketAddr,
    mode: Mutex<FaultMode>,
    accepting: AtomicBool,
    shutdown: AtomicBool,
    connections_seen: AtomicU64,
    /// Clones of both halves of every live relay, for [`kill_connections`].
    ///
    /// [`kill_connections`]: FaultProxy::kill_connections
    live: Mutex<Vec<TcpStream>>,
}

impl ProxyInner {
    fn mode(&self) -> FaultMode {
        *self.mode.lock().expect("fault mode lock")
    }
}

/// A TCP proxy in front of one backend that injects faults on command.
pub struct FaultProxy {
    addr: SocketAddr,
    inner: Arc<ProxyInner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// How often blocked reads wake up to check the shutdown flag.
const TICK: Duration = Duration::from_millis(25);

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port relaying to `upstream`.
    pub fn spawn(upstream: SocketAddr) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ProxyInner {
            upstream,
            mode: Mutex::new(FaultMode::Forward),
            accepting: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            connections_seen: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("fault-proxy-accept".into())
            .spawn(move || accept_loop(&listener, &accept_inner))
            .expect("fault proxy accept thread spawns");
        Ok(FaultProxy {
            addr,
            inner,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients (the router) should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switches the reply-path fault mode; applies to in-flight and future
    /// connections alike.
    pub fn set_mode(&self, mode: FaultMode) {
        *self.inner.mode.lock().expect("fault mode lock") = mode;
    }

    /// Hard-closes every live proxied connection. Both peers observe a
    /// connection-death error (EOF or ECONNRESET) on their next read or
    /// write — mid-reply for exchanges in flight.
    pub fn kill_connections(&self) {
        let mut live = self.inner.live.lock().expect("live connection lock");
        for stream in live.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Makes the proxy swallow new connections: they are accepted at the
    /// TCP level and immediately closed, so a client's first read observes
    /// EOF before any reply byte — the dying-process shape.
    pub fn stop_accepting(&self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
    }

    /// Resumes relaying new connections.
    pub fn resume_accepting(&self) {
        self.inner.accepting.store(true, Ordering::SeqCst);
    }

    /// Connections relayed (not swallowed) since the proxy started.
    pub fn connections_seen(&self) -> u64 {
        self.inner.connections_seen.load(Ordering::SeqCst)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.kill_connections();
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<ProxyInner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                if !inner.accepting.load(Ordering::SeqCst) {
                    // Swallow: accepted then dropped — the client sees EOF.
                    drop(client);
                    continue;
                }
                let Ok(upstream) = TcpStream::connect(inner.upstream) else {
                    drop(client);
                    continue;
                };
                inner.connections_seen.fetch_add(1, Ordering::SeqCst);
                relay(client, upstream, inner);
            }
            Err(error)
                if error.kind() == std::io::ErrorKind::WouldBlock
                    || error.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Wires up the two pump threads for one proxied connection.
fn relay(client: TcpStream, upstream: TcpStream, inner: &Arc<ProxyInner>) {
    let _ = client.set_read_timeout(Some(TICK));
    let _ = upstream.set_read_timeout(Some(TICK));
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    {
        let mut live = inner.live.lock().expect("live connection lock");
        if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
            live.push(c);
            live.push(u);
        }
    }
    let (Ok(client_read), Ok(upstream_read)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    // Requests always flow — the faults under test are about replies that
    // are late, missing, or cut off *after* the backend took the request.
    spawn_pump(
        "fault-proxy-up",
        client_read,
        upstream,
        Arc::clone(inner),
        false,
    );
    spawn_pump(
        "fault-proxy-down",
        upstream_read,
        client,
        Arc::clone(inner),
        true,
    );
}

fn spawn_pump(
    name: &str,
    mut from: TcpStream,
    mut to: TcpStream,
    inner: Arc<ProxyInner>,
    shaped: bool,
) {
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            let mut buffer = [0u8; 16 * 1024];
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match from.read(&mut buffer) {
                    Ok(0) => break,
                    Ok(read) => {
                        if shaped {
                            match inner.mode() {
                                FaultMode::Forward => {}
                                FaultMode::Delay(delay) => std::thread::sleep(delay),
                                FaultMode::Blackhole => continue,
                            }
                        }
                        if to.write_all(&buffer[..read]).is_err() {
                            break;
                        }
                    }
                    Err(error)
                        if error.kind() == std::io::ErrorKind::WouldBlock
                            || error.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            // Propagate the closure so the other peer unblocks too.
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
        })
        .expect("fault proxy pump thread spawns");
}
