//! The router's route table: the [`App`] mounted on the same connection
//! engine `ikrq-server` uses, so the front tier inherits keep-alive,
//! admission control and the readiness reactor unchanged.
//!
//! Byte-identity discipline (the contract `tests/router_api.rs` pins):
//!
//! * `POST /v1/search` bodies are forwarded **verbatim** and the backend
//!   reply (status, body, cache header) is passed back verbatim — the
//!   router never re-serializes a search response.
//! * `POST /v1/search/batch` sub-batches re-serialize the *requests* (safe:
//!   responses depend only on the parsed values, and the sub-bodies are
//!   produced by the same `serde_json` the single process would use to
//!   parse them), but backend *response* entries are spliced as raw byte
//!   slices ([`crate::splice`]) — never parsed, never re-printed.
//! * The router's own errors (bad routes, bad JSON, empty/oversized
//!   batches) go through the very helpers the backend uses
//!   ([`error_response`], [`method_not_allowed`], [`route_v1`]), so their
//!   bodies match a single process byte-for-byte; a search body the router
//!   cannot even peek a venue id out of is forwarded to the first shard so
//!   the *backend's* canonical error comes back verbatim.

use crate::backend::{Cluster, ForwardError};
use crate::splice::{join_batch, split_batch};
use ikrq_server::server::{error_response, method_not_allowed, route_v1};
use ikrq_server::{ApiVersion, ServerStats};
use ikrq_server::{App, ClientReply, EngineView, ErrorCode, ErrorDetail, Request, Response};
use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The routing [`App`]: consistent-hash placement, fan-out, failover.
pub struct RouterApp {
    cluster: Arc<Cluster>,
}

impl RouterApp {
    /// An app routing onto the given cluster.
    pub(crate) fn new(cluster: Arc<Cluster>) -> RouterApp {
        RouterApp { cluster }
    }
}

impl App for RouterApp {
    fn handle(&self, request: &Request, engine: &EngineView<'_>) -> Response {
        let rest = match route_v1(request) {
            Ok(rest) => rest,
            Err(response) => return response,
        };
        match (request.method.as_str(), rest.as_slice()) {
            ("GET", ["healthz"]) => self.healthz(),
            ("GET", ["venues"]) => self.venues(),
            ("GET", ["stats"]) => self.stats(engine),
            ("POST", ["search"]) => self.search(request),
            ("POST", ["search", "batch"]) => self.search_batch(request, engine),
            ("POST", ["admin", "reload"]) => self.admin_reload(request),
            (_, ["healthz"]) | (_, ["venues"]) | (_, ["stats"]) => {
                method_not_allowed(request, "GET")
            }
            (_, ["search"]) | (_, ["search", "batch"]) | (_, ["admin", "reload"]) => {
                method_not_allowed(request, "POST")
            }
            _ => error_response(
                ErrorCode::NotFound,
                format!("no route at `{}`", request.path),
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Wire bodies
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct RouterHealthBody {
    api_version: u16,
    /// `"ok"` while every backend is healthy, `"degraded"` otherwise. The
    /// router itself answers either way — a degraded cluster still serves
    /// every shard that has a live replica.
    status: String,
    shards: usize,
    backends_healthy: usize,
    backends_total: usize,
}

#[derive(Serialize)]
struct BackendStatsBody {
    addr: String,
    healthy: bool,
    consecutive_failures: u32,
    probes: u64,
    probe_failures: u64,
    forwarded: u64,
    forward_failures: u64,
}

#[derive(Serialize)]
struct ShardStatsBody {
    shard: String,
    backends: Vec<BackendStatsBody>,
}

#[derive(Serialize)]
struct RouterCountersBody {
    forwarded: u64,
    failovers: u64,
    rebalances: u64,
    backend_unavailable: u64,
    reloads: u64,
}

#[derive(Serialize)]
struct RouterStatsBody {
    api_version: u16,
    shards: Vec<ShardStatsBody>,
    router: RouterCountersBody,
    workers: usize,
    max_in_flight: usize,
    max_connections: usize,
    keep_alive: bool,
    reactor: bool,
    nofile_limit: u64,
    stats: ServerStats,
}

/// The one field the router needs out of a search body.
#[derive(Deserialize)]
struct VenuePeek {
    venue: String,
}

#[derive(Deserialize)]
struct BatchBody {
    requests: Vec<ikrq_core::SearchRequest>,
}

/// The sub-batch body for one shard: the owned request slots re-serialized
/// into a batch envelope (the vendored serde derive has no generics, so
/// the envelope is assembled by hand from per-request serializations —
/// the same compact encoding `serde_json` would emit for the whole body).
fn sub_batch_body(requests: &[ikrq_core::SearchRequest], slots: &[usize]) -> String {
    let parts: Vec<String> = slots
        .iter()
        .map(|&slot| serde_json::to_string(&requests[slot]).expect("requests serialize"))
        .collect();
    format!("{{\"requests\":[{}]}}", parts.join(","))
}

#[derive(Deserialize)]
struct ReloadBody {
    venue: String,
}

/// One replica's view of a completed reload.
#[derive(Serialize)]
struct ReplicaReloadBody {
    backend: String,
    /// The backend's registry epoch after its swap (epochs are per-process;
    /// replicas of one shard advance independently).
    epoch: u64,
}

#[derive(Serialize)]
struct RouterReloadBody {
    api_version: u16,
    venue: String,
    shard: String,
    replicas: Vec<ReplicaReloadBody>,
}

#[derive(Deserialize)]
struct BackendReloadedPeek {
    epoch: u64,
}

#[derive(Deserialize)]
struct BackendVenuesPeek {
    epoch: u64,
    venues: Vec<VenueSummaryPeek>,
}

#[derive(Deserialize, Serialize)]
struct VenueSummaryPeek {
    id: String,
    partitions: usize,
    doors: usize,
}

#[derive(Serialize)]
struct ShardVenuesBody {
    shard: String,
    epoch: u64,
    venues: usize,
}

#[derive(Serialize)]
struct RouterVenuesBody {
    api_version: u16,
    venues: Vec<VenueSummaryPeek>,
    shards: Vec<ShardVenuesBody>,
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

impl RouterApp {
    fn healthz(&self) -> Response {
        let mut healthy = 0usize;
        let mut total = 0usize;
        for shard in &self.cluster.shards {
            for backend in &shard.backends {
                total += 1;
                if backend.is_healthy() {
                    healthy += 1;
                }
            }
        }
        let body = RouterHealthBody {
            api_version: ApiVersion::CURRENT.wire(),
            status: if healthy == total { "ok" } else { "degraded" }.into(),
            shards: self.cluster.shards.len(),
            backends_healthy: healthy,
            backends_total: total,
        };
        Response::json(
            200,
            serde_json::to_string(&body).expect("health serializes"),
        )
    }

    fn stats(&self, engine: &EngineView<'_>) -> Response {
        let shards = self
            .cluster
            .shards
            .iter()
            .map(|shard| ShardStatsBody {
                shard: shard.name.clone(),
                backends: shard
                    .backends
                    .iter()
                    .map(|backend| BackendStatsBody {
                        addr: backend.addr.to_string(),
                        healthy: backend.is_healthy(),
                        consecutive_failures: backend.consecutive_failures(),
                        probes: backend.probes.load(Ordering::SeqCst),
                        probe_failures: backend.probe_failures.load(Ordering::SeqCst),
                        forwarded: backend.forwarded.load(Ordering::SeqCst),
                        forward_failures: backend.forward_failures.load(Ordering::SeqCst),
                    })
                    .collect(),
            })
            .collect();
        let counters = &self.cluster.counters;
        let body = RouterStatsBody {
            api_version: ApiVersion::CURRENT.wire(),
            shards,
            router: RouterCountersBody {
                forwarded: counters.forwarded.load(Ordering::SeqCst),
                failovers: counters.failovers.load(Ordering::SeqCst),
                rebalances: counters.rebalances.load(Ordering::SeqCst),
                backend_unavailable: counters.unavailable.load(Ordering::SeqCst),
                reloads: counters.reloads.load(Ordering::SeqCst),
            },
            workers: engine.config.effective_workers(),
            max_in_flight: engine.max_in_flight,
            max_connections: engine.max_connections,
            keep_alive: engine.config.keep_alive,
            reactor: engine.reactor,
            nofile_limit: engine.nofile_limit,
            stats: engine.stats,
        };
        Response::json(200, serde_json::to_string(&body).expect("stats serialize"))
    }

    /// Aggregates `GET /v1/venues` over one live replica per shard.
    fn venues(&self) -> Response {
        let mut venues: Vec<VenueSummaryPeek> = Vec::new();
        let mut shards: Vec<ShardVenuesBody> = Vec::new();
        for shard in &self.cluster.shards {
            let reply = match self.cluster.forward(shard, "GET", "/v1/venues", "") {
                Ok(reply) => reply,
                Err(error) => {
                    return error_response(
                        ErrorCode::BackendUnavailable,
                        error.message(&shard.name),
                    )
                }
            };
            if reply.status != 200 {
                return passthrough(&reply);
            }
            let peek: BackendVenuesPeek = match serde_json::from_str(&reply.body) {
                Ok(peek) => peek,
                Err(error) => {
                    return error_response(
                        ErrorCode::BackendUnavailable,
                        format!(
                            "backend of shard `{}` returned an unreadable venue list: {error}",
                            shard.name
                        ),
                    )
                }
            };
            // Every backend hosts every venue (replicas are symmetric and
            // shards are carved by the ring, not by registration), so only
            // the ring-owned subset is attributed to each shard.
            let owned: Vec<VenueSummaryPeek> = peek
                .venues
                .into_iter()
                .filter(|venue| self.cluster.ring.assign_name(&venue.id) == shard.name)
                .collect();
            shards.push(ShardVenuesBody {
                shard: shard.name.clone(),
                epoch: peek.epoch,
                venues: owned.len(),
            });
            venues.extend(owned);
        }
        venues.sort_by(|a, b| a.id.cmp(&b.id));
        let body = RouterVenuesBody {
            api_version: ApiVersion::CURRENT.wire(),
            venues,
            shards,
        };
        Response::json(200, serde_json::to_string(&body).expect("venues serialize"))
    }

    fn search(&self, request: &Request) -> Response {
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => return error_response(ErrorCode::InvalidJson, "body is not UTF-8"),
        };
        // Peek just the venue id. A body the peek cannot read is forwarded
        // anyway (to the first shard) so the backend's canonical error
        // bytes come back; the vendored serde ignores unknown fields, so
        // any body a backend would accept peeks successfully here.
        let shard = match serde_json::from_str::<VenuePeek>(body) {
            Ok(peek) => self.cluster.shard_for(&peek.venue),
            Err(_) => &self.cluster.shards[0],
        };
        match self.cluster.forward(shard, "POST", "/v1/search", body) {
            Ok(reply) => passthrough(&reply),
            Err(error) => error_response(ErrorCode::BackendUnavailable, error.message(&shard.name)),
        }
    }

    fn search_batch(&self, request: &Request, engine: &EngineView<'_>) -> Response {
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => return error_response(ErrorCode::InvalidJson, "body is not UTF-8"),
        };
        let batch: BatchBody = match serde_json::from_str(body) {
            Ok(batch) => batch,
            Err(error) => {
                return error_response(
                    ErrorCode::InvalidJson,
                    format!("body does not decode into a batch envelope: {error}"),
                )
            }
        };
        if batch.requests.is_empty() {
            return error_response(ErrorCode::InvalidRequest, "batch contains no requests");
        }
        if batch.requests.len() > engine.config.max_batch_size {
            return error_response(
                ErrorCode::InvalidRequest,
                format!(
                    "batch of {} requests exceeds the limit of {}",
                    batch.requests.len(),
                    engine.config.max_batch_size
                ),
            );
        }

        // Group request slots by owning shard, preserving request order
        // within each group so the spliced entries land back in their
        // original slots.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.cluster.shards.len()];
        for (slot, search) in batch.requests.iter().enumerate() {
            groups[self.cluster.ring.assign(&search.venue)].push(slot);
        }

        // Fan the non-empty sub-batches out concurrently, one thread per
        // shard (the engine's worker already holds this request; shard
        // count is small and bounded by configuration).
        let outcomes: Vec<Option<Result<ClientReply, ForwardError>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .enumerate()
                    .map(|(shard_index, slots)| {
                        if slots.is_empty() {
                            return None;
                        }
                        let sub_body = sub_batch_body(&batch.requests, slots);
                        let shard = &self.cluster.shards[shard_index];
                        Some(scope.spawn(move || {
                            self.cluster
                                .forward(shard, "POST", "/v1/search/batch", &sub_body)
                        }))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.map(|h| h.join().expect("fan-out threads do not panic")))
                    .collect()
            });

        // Splice the per-shard replies back into request order.
        let mut entries: Vec<Option<String>> = vec![None; batch.requests.len()];
        let mut cache_hits = 0u64;
        for (shard_index, outcome) in outcomes.into_iter().enumerate() {
            let Some(outcome) = outcome else { continue };
            let shard = &self.cluster.shards[shard_index];
            match outcome {
                Ok(reply) if reply.status == 200 => {
                    let Some((slices, hits)) = split_batch(&reply.body) else {
                        return error_response(
                            ErrorCode::BackendUnavailable,
                            format!(
                                "backend of shard `{}` returned an unspliceable batch body",
                                shard.name
                            ),
                        );
                    };
                    if slices.len() != groups[shard_index].len() {
                        return error_response(
                            ErrorCode::BackendUnavailable,
                            format!(
                                "backend of shard `{}` answered {} of {} requests",
                                shard.name,
                                slices.len(),
                                groups[shard_index].len()
                            ),
                        );
                    }
                    cache_hits += hits;
                    for (&slot, slice) in groups[shard_index].iter().zip(slices) {
                        entries[slot] = Some(slice.to_string());
                    }
                }
                // A backend rejected the whole sub-batch (e.g. admission
                // shed it with 429): surface that reply as the combined
                // outcome rather than inventing per-entry errors the
                // single process would never produce.
                Ok(reply) => return passthrough(&reply),
                // The shard is unreachable: its slots become per-entry
                // `backend_unavailable` errors so the surviving venues'
                // answers still come back byte-identical.
                Err(error) => {
                    let detail = ErrorDetail {
                        code: ErrorCode::BackendUnavailable.as_str().to_string(),
                        message: error.message(&shard.name),
                    };
                    let detail = serde_json::to_string(&detail).expect("details serialize");
                    for &slot in &groups[shard_index] {
                        entries[slot] = Some(format!("{{\"ok\":null,\"err\":{detail}}}"));
                    }
                }
            }
        }
        let entries: Vec<String> = entries
            .into_iter()
            .map(|entry| entry.expect("every slot belongs to exactly one shard group"))
            .collect();
        Response::json(200, join_batch(&entries, cache_hits))
            .with_header("x-ikrq-cache-hits", cache_hits.to_string())
    }

    /// Fans a venue reload out to **every** replica of the owning shard
    /// (replicas are symmetric; all of them must swap in the new engine or
    /// they would serve diverging answers). Succeeds only when every
    /// replica reloads; a partial failure reports 503 naming the replicas
    /// that did not — the reload is idempotent, so the caller retries.
    fn admin_reload(&self, request: &Request) -> Response {
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => return error_response(ErrorCode::InvalidJson, "body is not UTF-8"),
        };
        let reload: ReloadBody = match serde_json::from_str(body) {
            Ok(reload) => reload,
            Err(error) => {
                return error_response(
                    ErrorCode::InvalidJson,
                    format!("body does not decode into a reload envelope: {error}"),
                )
            }
        };
        let shard = self.cluster.shard_for(&reload.venue);
        let mut replicas = Vec::with_capacity(shard.backends.len());
        let mut failures: Vec<String> = Vec::new();
        for backend in &shard.backends {
            match self
                .cluster
                .forward_to_backend(backend, "POST", "/v1/admin/reload", body)
            {
                Ok(reply) if reply.status == 200 => {
                    let epoch = serde_json::from_str::<BackendReloadedPeek>(&reply.body)
                        .map(|peek| peek.epoch)
                        .unwrap_or(0);
                    replicas.push(ReplicaReloadBody {
                        backend: backend.addr.to_string(),
                        epoch,
                    });
                }
                // The backend answered but refused (unknown venue, no
                // reload source, reload error): every replica is symmetric,
                // so the first refusal is the authoritative answer —
                // forward it verbatim.
                Ok(reply) => return passthrough(&reply),
                Err(failure) => {
                    failures.push(format!("{} ({})", backend.addr, failure.error));
                }
            }
        }
        if !failures.is_empty() {
            self.cluster
                .counters
                .unavailable
                .fetch_add(1, Ordering::SeqCst);
            return error_response(
                ErrorCode::BackendUnavailable,
                format!(
                    "reload of venue `{}` did not reach every replica of shard `{}`: {}",
                    reload.venue,
                    shard.name,
                    failures.join(", ")
                ),
            );
        }
        self.cluster.counters.reloads.fetch_add(1, Ordering::SeqCst);
        let body = RouterReloadBody {
            api_version: ApiVersion::CURRENT.wire(),
            venue: reload.venue,
            shard: shard.name.clone(),
            replicas,
        };
        Response::json(
            200,
            serde_json::to_string(&body).expect("reload serializes"),
        )
    }
}

/// Relays a backend reply verbatim: status, body, and the cache headers
/// the protocol defines (`x-ikrq-cache`, `x-ikrq-cache-hits`). Hop-by-hop
/// headers (connection, content-length) are the router's own business and
/// are re-framed by the engine.
fn passthrough(reply: &ClientReply) -> Response {
    let mut response = Response::json(reply.status, reply.body.clone());
    for name in ["x-ikrq-cache", "x-ikrq-cache-hits", "allow", "retry-after"] {
        if let Some(value) = reply.header(name) {
            response = response.with_header(name, value);
        }
    }
    response
}
