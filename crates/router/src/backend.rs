//! Backends, shards and the forwarding/failover core.
//!
//! A **shard** is a named replica set: an ordered list of backend
//! `ikrq-server` addresses that all host the shard's venues. The router
//! forwards a request to the shard's first *healthy* backend (declared
//! order — replica 0 is the preferred primary) over a pooled
//! [`KeepAliveClient`], and fails over down the replica list only when the
//! failed exchange is **provably safe to resend** under the same rule the
//! client uses for its own redial ([`RequestFailure::safe_to_resend`]):
//! the connection died or the dial was refused *before any reply byte*.
//! A timeout or a mid-reply failure never fails over — the backend may be
//! slow-but-alive and still executing, and resending to a replica would
//! run the request twice. Those requests surface as
//! `503 backend_unavailable` instead.
//!
//! Health is tracked two ways: the prober thread (`prober_loop` in the
//! crate root) issues periodic `GET /v1/healthz` probes with
//! their own timeout and exponential backoff for down backends, and the
//! forwarding path itself counts consecutive failures. Either marking a
//! backend unhealthy (or healthy again) flips its flag and counts a
//! *rebalance* — the point where the shard's preferred serving order
//! changed.

use crate::RouterConfig;
use ikrq_server::client::{KeepAliveClient, RequestFailure};
use ikrq_server::ClientReply;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One backend `ikrq-server` process: its address, health flag, counters
/// and a small pool of keep-alive connections.
pub(crate) struct Backend {
    pub(crate) addr: SocketAddr,
    /// Starts `true` (optimistic: the first request probes it for real);
    /// flipped by probe or forward failures reaching the threshold.
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    pub(crate) probes: AtomicU64,
    pub(crate) probe_failures: AtomicU64,
    pub(crate) forwarded: AtomicU64,
    pub(crate) forward_failures: AtomicU64,
    pool: Mutex<Vec<KeepAliveClient>>,
}

impl Backend {
    pub(crate) fn new(addr: SocketAddr) -> Backend {
        Backend {
            addr,
            healthy: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            probes: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            forward_failures: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    pub(crate) fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::SeqCst)
    }

    /// A pooled connection to this backend, or a fresh one.
    fn client(&self, timeout: Duration) -> KeepAliveClient {
        self.pool
            .lock()
            .expect("backend pool lock")
            .pop()
            .unwrap_or_else(|| KeepAliveClient::new(self.addr).with_timeout(timeout))
    }

    /// Returns a connection to the pool after a successful exchange.
    fn recycle(&self, client: KeepAliveClient, cap: usize) {
        let mut pool = self.pool.lock().expect("backend pool lock");
        if pool.len() < cap {
            pool.push(client);
        }
    }

    /// Records a successful probe or forward; marks the backend healthy.
    /// Returns whether the health flag flipped (a rebalance).
    pub(crate) fn record_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        !self.healthy.swap(true, Ordering::SeqCst)
    }

    /// Records a failed probe or forward; marks the backend unhealthy once
    /// `threshold` consecutive failures accumulate. Returns whether the
    /// health flag flipped (a rebalance).
    pub(crate) fn record_failure(&self, threshold: u32) -> bool {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= threshold {
            return self.healthy.swap(false, Ordering::SeqCst);
        }
        false
    }
}

/// A named replica set.
pub(crate) struct Shard {
    pub(crate) name: String,
    pub(crate) backends: Vec<Backend>,
}

/// Router-level counters (distinct from the per-backend ones).
#[derive(Default)]
pub(crate) struct Counters {
    /// Exchanges forwarded to a backend (any outcome).
    pub(crate) forwarded: AtomicU64,
    /// Requests that moved on to another replica after a resend-safe
    /// failure.
    pub(crate) failovers: AtomicU64,
    /// Health-flag flips (either direction) — each one changes some
    /// shard's preferred serving order.
    pub(crate) rebalances: AtomicU64,
    /// Requests answered `503 backend_unavailable`.
    pub(crate) unavailable: AtomicU64,
    /// Venue reloads fanned out successfully to a whole shard.
    pub(crate) reloads: AtomicU64,
}

/// Why a forward could not produce a backend reply.
pub(crate) enum ForwardError {
    /// Every candidate replica failed in a resend-safe way; the request
    /// was never answered and never left executing anywhere reachable.
    AllReplicasDown { last: String },
    /// A backend took the request but the exchange failed in a way where
    /// a resend could double-execute (timeout, mid-reply death).
    UnsafeToResend { addr: SocketAddr, detail: String },
}

impl ForwardError {
    /// The human half of the `503 backend_unavailable` body.
    pub(crate) fn message(&self, shard: &str) -> String {
        match self {
            ForwardError::AllReplicasDown { last } => {
                format!("no live backend for shard `{shard}`: {last}")
            }
            ForwardError::UnsafeToResend { addr, detail } => format!(
                "backend {addr} of shard `{shard}` did not answer ({detail}); \
                 not resent to a replica because the backend may still be \
                 executing the request"
            ),
        }
    }
}

/// The shard topology plus everything the forwarding path needs.
pub(crate) struct Cluster {
    pub(crate) shards: Vec<Shard>,
    pub(crate) ring: crate::ring::HashRing,
    pub(crate) config: RouterConfig,
    pub(crate) counters: Counters,
}

impl Cluster {
    /// The shard owning a venue id.
    pub(crate) fn shard_for(&self, venue: &str) -> &Shard {
        &self.shards[self.ring.assign(venue)]
    }

    /// Records a health flip as a rebalance.
    pub(crate) fn note_flip(&self, flipped: bool) {
        if flipped {
            self.counters.rebalances.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Forwards one exchange to a shard, failing over down the replica
    /// list under the resend-safety rule (see the module docs).
    pub(crate) fn forward(
        &self,
        shard: &Shard,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<ClientReply, ForwardError> {
        // Preference order: healthy replicas in declared order, then the
        // unhealthy ones as a last resort (the prober may simply not have
        // noticed a recovery yet, and a dial refusal is resend-safe).
        let order = self.shard_backend_order(shard).collect::<Vec<&Backend>>();
        let candidates = order.len();
        let mut last = format!("shard `{}` has no backends", shard.name);
        for (position, backend) in order.into_iter().enumerate() {
            match self.forward_to_backend(backend, method, path, body) {
                Ok(reply) => return Ok(reply),
                Err(failure) => {
                    if failure.safe_to_resend() {
                        last = format!("{} ({})", backend.addr, failure.error);
                        if position + 1 < candidates {
                            self.counters.failovers.fetch_add(1, Ordering::SeqCst);
                        }
                        continue;
                    }
                    self.counters.unavailable.fetch_add(1, Ordering::SeqCst);
                    return Err(ForwardError::UnsafeToResend {
                        addr: backend.addr,
                        detail: failure.error.to_string(),
                    });
                }
            }
        }
        self.counters.unavailable.fetch_add(1, Ordering::SeqCst);
        Err(ForwardError::AllReplicasDown { last })
    }

    /// One pooled exchange against one specific backend, recording the
    /// outcome in its health bookkeeping (no failover — the reload path
    /// uses this to address every replica of a shard individually).
    pub(crate) fn forward_to_backend(
        &self,
        backend: &Backend,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<ClientReply, RequestFailure> {
        match self.try_backend(backend, method, path, body) {
            Ok(reply) => {
                self.note_flip(backend.record_success());
                Ok(reply)
            }
            Err(failure) => {
                self.note_flip(backend.record_failure(self.config.fail_threshold));
                Err(failure)
            }
        }
    }

    /// One pooled exchange against one backend.
    fn try_backend(
        &self,
        backend: &Backend,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<ClientReply, RequestFailure> {
        backend.forwarded.fetch_add(1, Ordering::SeqCst);
        self.counters.forwarded.fetch_add(1, Ordering::SeqCst);
        let mut client = backend.client(self.config.backend_timeout);
        match client.request_with_outcome(method, path, body) {
            Ok(reply) => {
                backend.recycle(client, self.config.pool_per_backend);
                Ok(reply)
            }
            Err(failure) => {
                backend.forward_failures.fetch_add(1, Ordering::SeqCst);
                Err(failure)
            }
        }
    }

    fn shard_backend_order<'a>(&self, shard: &'a Shard) -> impl Iterator<Item = &'a Backend> {
        let healthy = shard.backends.iter().filter(|b| b.is_healthy());
        let unhealthy = shard.backends.iter().filter(|b| !b.is_healthy());
        healthy.chain(unhealthy)
    }
}
