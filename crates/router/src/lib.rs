//! # ikrq-router — the venue-sharded scale-out tier
//!
//! A single `ikrq-server` process answers every venue it hosts; this crate
//! puts a routing tier in front of *many* of them so a deployment scales
//! horizontally: venues are placed onto named **shards** by a consistent
//! hash ring ([`HashRing`]), each shard is a replica set of identical
//! backends, and the router — itself an app on the same connection engine
//! — speaks the same protocol v1 on its front socket:
//!
//! * `POST /v1/search` is forwarded verbatim to the owning shard,
//! * `POST /v1/search/batch` fans out per shard and the replies are
//!   **byte-spliced** back together in request order,
//! * `POST /v1/admin/reload` fans a hot venue reload out to every replica
//!   of the owning shard,
//! * `GET /v1/healthz`, `/v1/venues`, `/v1/stats` report the cluster view.
//!
//! Failures fail over to replicas only when resending is provably safe —
//! the connection died or the dial was refused before any reply byte — and
//! surface as `503 backend_unavailable` otherwise (a timed-out backend may
//! still be executing; resending would run the request twice). See
//! `docs/ROUTER.md` for the full design, and [`fault::FaultProxy`] for the
//! chaos-test harness that pins these rules against real sockets.
//!
//! ```no_run
//! use ikrq_router::{route, RouterConfig, ShardSpec};
//!
//! let shards = vec![
//!     ShardSpec::parse("alpha=127.0.0.1:7101,127.0.0.1:7102").unwrap(),
//!     ShardSpec::parse("beta=127.0.0.1:7201").unwrap(),
//! ];
//! let handle = route(shards, "127.0.0.1:7100", RouterConfig::default()).unwrap();
//! println!("routing on http://{}", handle.local_addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod backend;
pub mod fault;
pub mod ring;
mod splice;

pub use fault::{FaultMode, FaultProxy};
pub use ring::{fnv1a64, ring_point, HashRing, DEFAULT_VNODES};

use backend::{Backend, Cluster, Counters, Shard};
use ikrq_server::client::KeepAliveClient;
use ikrq_server::{serve_app, ServerConfig, ServerHandle, ServerStats};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard of the cluster: a name (the unit of ring placement) and the
/// ordered replica list (replica 0 is the preferred primary).
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Ring name; must be unique across the cluster and is what placement
    /// hashes against, so renaming a shard moves its venues.
    pub name: String,
    /// Backend addresses, all hosting the same venues.
    pub replicas: Vec<SocketAddr>,
}

impl ShardSpec {
    /// Parses the CLI form `name=addr[,addr...]`.
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        let (name, replicas) = spec
            .split_once('=')
            .ok_or_else(|| format!("shard spec `{spec}` is not of the form name=addr[,addr...]"))?;
        if name.trim().is_empty() {
            return Err(format!("shard spec `{spec}` has an empty name"));
        }
        let replicas = replicas
            .split(',')
            .map(|addr| {
                addr.trim()
                    .parse::<SocketAddr>()
                    .map_err(|error| format!("shard `{name}`: bad address `{addr}`: {error}"))
            })
            .collect::<Result<Vec<SocketAddr>, String>>()?;
        if replicas.is_empty() {
            return Err(format!("shard `{name}` has no replicas"));
        }
        Ok(ShardSpec {
            name: name.trim().to_string(),
            replicas,
        })
    }
}

/// Router configuration: the front server's engine knobs plus the
/// routing-tier knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connection-engine configuration of the router's own front socket
    /// (workers, admission, keep-alive, reactor — the same engine the
    /// backends run). `server.max_batch_size` bounds the *combined* batch
    /// the router accepts, before the per-shard fan-out.
    pub server: ServerConfig,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: usize,
    /// Per-socket timeout on forwarded backend exchanges. An exchange that
    /// exceeds it is answered `503 backend_unavailable` *without* failover
    /// (the backend may still be executing).
    pub backend_timeout: Duration,
    /// Baseline interval between health probes of one backend.
    pub probe_interval: Duration,
    /// Per-socket timeout on health probes (kept separate from
    /// [`backend_timeout`](RouterConfig::backend_timeout): probes should
    /// fail fast).
    pub probe_timeout: Duration,
    /// Consecutive failures — probe or forward — before a backend is
    /// marked unhealthy and demoted in its shard's serving order.
    pub fail_threshold: u32,
    /// Probe interval ceiling for unhealthy backends: each consecutive
    /// failure doubles the backend's probe interval up to this cap, so a
    /// long-dead backend is not hammered.
    pub probe_backoff_max: Duration,
    /// Keep-alive connections pooled per backend for forwarding.
    pub pool_per_backend: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            server: ServerConfig::default(),
            vnodes: DEFAULT_VNODES,
            backend_timeout: Duration::from_secs(10),
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            fail_threshold: 3,
            probe_backoff_max: Duration::from_secs(5),
            pool_per_backend: 8,
        }
    }
}

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, message)
}

/// Starts the router: builds the ring over `shards`, binds the front
/// socket at `addr`, and starts the health prober.
pub fn route(
    shards: Vec<ShardSpec>,
    addr: impl ToSocketAddrs,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    if shards.is_empty() {
        return Err(invalid("a router needs at least one shard".into()));
    }
    {
        let mut names: Vec<&str> = shards.iter().map(|shard| shard.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != shards.len() {
            return Err(invalid("shard names must be unique".into()));
        }
    }
    for shard in &shards {
        if shard.replicas.is_empty() {
            return Err(invalid(format!("shard `{}` has no replicas", shard.name)));
        }
    }
    if config.vnodes == 0 {
        return Err(invalid("vnodes must be at least 1".into()));
    }
    let names: Vec<String> = shards.iter().map(|shard| shard.name.clone()).collect();
    let ring = HashRing::new(&names, config.vnodes);
    let server_config = config.server.clone();
    let cluster = Arc::new(Cluster {
        shards: shards
            .into_iter()
            .map(|spec| Shard {
                name: spec.name,
                backends: spec.replicas.into_iter().map(Backend::new).collect(),
            })
            .collect(),
        ring,
        config,
        counters: Counters::default(),
    });
    let server = serve_app(
        Arc::new(app::RouterApp::new(Arc::clone(&cluster))),
        addr,
        server_config,
    )?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let prober = {
        let cluster = Arc::clone(&cluster);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("ikrq-router-prober".into())
            .spawn(move || prober_loop(&cluster, &shutdown))
            .expect("prober thread spawns")
    };
    Ok(RouterHandle {
        server,
        cluster,
        shutdown,
        prober: Some(prober),
    })
}

/// A running router; dropping it shuts the front server and prober down.
pub struct RouterHandle {
    server: ServerHandle,
    cluster: Arc<Cluster>,
    shutdown: Arc<AtomicBool>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The front address the router actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Point-in-time counters of the router's own connection engine.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Whether a backend is currently marked healthy (`None` when the
    /// address is not part of the cluster). Test and CLI observability;
    /// the full picture is `GET /v1/stats`.
    pub fn backend_healthy(&self, addr: SocketAddr) -> Option<bool> {
        self.cluster
            .shards
            .iter()
            .flat_map(|shard| shard.backends.iter())
            .find(|backend| backend.addr == addr)
            .map(|backend| backend.is_healthy())
    }

    /// The shard name a venue id routes to.
    pub fn shard_for(&self, venue: &str) -> &str {
        self.cluster.ring.assign_name(venue)
    }

    /// Number of shards the router fronts.
    pub fn shard_count(&self) -> usize {
        self.cluster.shards.len()
    }

    /// Stops the prober and shuts the front server down (idempotent).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        self.server.shutdown();
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-backend probe bookkeeping owned by the prober thread.
struct ProbeState {
    client: KeepAliveClient,
    next: Instant,
    interval: Duration,
}

/// The health-probe loop: each backend gets a `GET /v1/healthz` every
/// `probe_interval`, with its own fast-failing timeout; failures double the
/// backend's interval up to `probe_backoff_max`, successes reset it. Health
/// flips feed the same bookkeeping the forwarding path uses.
fn prober_loop(cluster: &Arc<Cluster>, shutdown: &Arc<AtomicBool>) {
    let config = &cluster.config;
    let mut states: Vec<(usize, usize, ProbeState)> = Vec::new();
    let start = Instant::now();
    for (shard_index, shard) in cluster.shards.iter().enumerate() {
        for (backend_index, backend) in shard.backends.iter().enumerate() {
            states.push((
                shard_index,
                backend_index,
                ProbeState {
                    client: KeepAliveClient::new(backend.addr).with_timeout(config.probe_timeout),
                    next: start,
                    interval: config.probe_interval,
                },
            ));
        }
    }
    while !shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        for (shard_index, backend_index, state) in &mut states {
            if state.next > now {
                continue;
            }
            let backend = &cluster.shards[*shard_index].backends[*backend_index];
            backend.probes.fetch_add(1, Ordering::SeqCst);
            match state.client.request("GET", "/v1/healthz", "") {
                Ok(reply) if reply.status == 200 => {
                    cluster.note_flip(backend.record_success());
                    state.interval = config.probe_interval;
                }
                _ => {
                    backend.probe_failures.fetch_add(1, Ordering::SeqCst);
                    cluster.note_flip(backend.record_failure(config.fail_threshold));
                    state.interval = (state.interval * 2).min(config.probe_backoff_max);
                }
            }
            state.next = Instant::now() + state.interval;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
