//! Byte-exact batch splicing.
//!
//! The router fans one `POST /v1/search/batch` out as per-shard
//! sub-batches and must reassemble the combined reply so every entry is
//! **byte-identical** to what a single process would have produced. A
//! deserialize→reserialize round trip through `serde_json` would not
//! guarantee that (float formatting, map ordering are implementation
//! details), so instead the backend bodies are *sliced*: the server's
//! batch body has the fixed compact shape
//!
//! ```json
//! {"api_version":1,"responses":[<entry>,<entry>,...],"cache_hits":N}
//! ```
//!
//! and [`split_batch`] cuts the raw `responses` entries out of it with a
//! string-and-nesting-aware scanner (entries contain arbitrary JSON
//! strings — venue ids, error messages — which may themselves contain
//! brackets, commas or `"responses":[`). The router then re-joins entry
//! slices verbatim in request order.

/// Splits a backend batch body into its raw `responses` entry slices and
/// the `cache_hits` count. Returns `None` when the body is not a batch
/// reply of the expected wire version (e.g. an error body).
pub(crate) fn split_batch(body: &str) -> Option<(Vec<&str>, u64)> {
    let rest = body.strip_prefix("{\"api_version\":1,\"responses\":[")?;
    let bytes = rest.as_bytes();
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    let mut index = 0usize;
    loop {
        let byte = *bytes.get(index)?;
        if in_string {
            if escaped {
                escaped = false;
            } else if byte == b'\\' {
                escaped = true;
            } else if byte == b'"' {
                in_string = false;
            }
        } else {
            match byte {
                b'"' => in_string = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' if depth > 0 => depth -= 1,
                b']' => {
                    // The close of the `responses` array itself.
                    if index > start {
                        entries.push(&rest[start..index]);
                    }
                    let hits = rest[index + 1..]
                        .strip_prefix(",\"cache_hits\":")?
                        .strip_suffix('}')?;
                    return Some((entries, hits.parse().ok()?));
                }
                b',' if depth == 0 => {
                    entries.push(&rest[start..index]);
                    start = index + 1;
                }
                _ => {}
            }
        }
        index += 1;
    }
}

/// Reassembles a combined batch body from entry slices (in request order)
/// and the summed cache-hit count — the exact `format!` the server's own
/// batch handler uses, so healthy-path splices are byte-identical to
/// single-process serving.
pub(crate) fn join_batch(entries: &[String], cache_hits: u64) -> String {
    format!(
        "{{\"api_version\":1,\"responses\":[{}],\"cache_hits\":{cache_hits}}}",
        entries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_a_two_entry_body() {
        let body = r#"{"api_version":1,"responses":[{"ok":{"x":[1,2]},"err":null},{"ok":null,"err":{"code":"unknown_venue","message":"no venue `m`"}}],"cache_hits":7}"#;
        let (entries, hits) = split_batch(body).expect("splits");
        assert_eq!(hits, 7);
        assert_eq!(
            entries,
            vec![
                r#"{"ok":{"x":[1,2]},"err":null}"#,
                r#"{"ok":null,"err":{"code":"unknown_venue","message":"no venue `m`"}}"#,
            ]
        );
    }

    #[test]
    fn strings_with_structural_bytes_do_not_confuse_the_scanner() {
        // A venue id/message may contain anything — including the exact
        // delimiters the scanner looks for.
        let tricky = r#"{"ok":null,"err":{"code":"x","message":"a,b]{[\" \"responses\":[ end"}}"#;
        let body =
            format!("{{\"api_version\":1,\"responses\":[{tricky},{tricky}],\"cache_hits\":0}}");
        let (entries, hits) = split_batch(&body).expect("splits");
        assert_eq!(hits, 0);
        assert_eq!(entries, vec![tricky, tricky]);
    }

    #[test]
    fn split_then_join_is_the_identity() {
        let body = r#"{"api_version":1,"responses":[{"ok":1,"err":null},{"ok":2,"err":null},{"ok":3,"err":null}],"cache_hits":2}"#;
        let (entries, hits) = split_batch(body).expect("splits");
        let owned: Vec<String> = entries.iter().map(|e| e.to_string()).collect();
        assert_eq!(join_batch(&owned, hits), body);
    }

    #[test]
    fn non_batch_bodies_are_rejected() {
        assert!(
            split_batch(r#"{"api_version":1,"error":{"code":"overloaded","message":"m"}}"#)
                .is_none()
        );
        assert!(split_batch("").is_none());
        assert!(split_batch(r#"{"api_version":1,"responses":[{"ok":1]"#).is_none());
        // Truncated mid-array: no closing bracket.
        assert!(split_batch(r#"{"api_version":1,"responses":[{"ok":1},"#).is_none());
    }
}
