//! The consistent-hash ring that owns venue→shard placement.
//!
//! Each shard contributes [`HashRing::vnodes`] *virtual nodes* — points on
//! a `u64` ring hashed from `"{shard}#{replica_index}"` — and a venue id
//! belongs to the shard owning the first point at or clockwise-after the
//! venue's own hash. Two properties matter operationally:
//!
//! * **Determinism across processes.** Placement uses [`ring_point`]
//!   (fixed-constant FNV-1a through a finalizing mixer), *not* `std`'s
//!   `DefaultHasher` (which is randomly seeded per process). A router
//!   restart, or two routers in front of the same shards, must agree
//!   byte-for-byte on who owns what.
//! * **Minimal movement.** Adding a shard only moves venues *onto* the new
//!   shard (it claims arcs from existing points); removing one only moves
//!   the removed shard's venues. A naive `hash % n` placement reshuffles
//!   nearly everything on any topology change, orphaning every shard's
//!   response cache at once — the ring keeps `(n-1)/n` of the keyspace
//!   warm. Both properties are pinned by `tests/ring_props.rs`.

/// Virtual nodes per shard when the caller does not override it. More
/// points smooth the load split between shards at the cost of a larger
/// (still tiny) sorted array.
pub const DEFAULT_VNODES: usize = 64;

/// 64-bit FNV-1a. Chosen over `DefaultHasher` because placement must be
/// stable across processes, architectures and rust versions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Finalizing mixer (the murmur3 64-bit fmix). FNV-1a alone has weak
/// avalanche on near-identical strings: `"shard-0#3"` and `"shard-1#3"`
/// differ in one mid-string byte with only a short suffix left to mix it,
/// so their ring points come out correlated — measured on a 2-shard ring
/// with 64 vnodes each, one shard owned **91%** of the keyspace. Three
/// xor-shift/multiply rounds decorrelate the points; coverage becomes
/// ~49/51.
fn mix64(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

/// The ring coordinate of a byte string — what both vnode points and venue
/// ids are hashed with. Fixed-constant and process-independent, like
/// [`fnv1a64`] it wraps.
pub fn ring_point(bytes: &[u8]) -> u64 {
    mix64(fnv1a64(bytes))
}

/// A consistent-hash ring over named shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard index)` sorted by point, ties broken by index so
    /// placement is deterministic even under hash collisions.
    points: Vec<(u64, usize)>,
    names: Vec<String>,
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring over `shards` with `vnodes` points per shard.
    ///
    /// # Panics
    /// On an empty shard set, zero `vnodes`, or duplicate shard names —
    /// all configuration errors the caller validates first.
    pub fn new<S: AsRef<str>>(shards: &[S], vnodes: usize) -> HashRing {
        assert!(!shards.is_empty(), "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one virtual node");
        let names: Vec<String> = shards.iter().map(|s| s.as_ref().to_string()).collect();
        {
            let mut seen = names.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), names.len(), "shard names must be unique");
        }
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (index, name) in names.iter().enumerate() {
            for vnode in 0..vnodes {
                let point = ring_point(format!("{name}#{vnode}").as_bytes());
                points.push((point, index));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            names,
            vnodes,
        }
    }

    /// The shard index owning a venue id: the first ring point at or
    /// clockwise-after `fnv1a64(venue)`, wrapping around at the top.
    pub fn assign(&self, venue: &str) -> usize {
        let hash = ring_point(venue.as_bytes());
        let slot = self
            .points
            .partition_point(|&(point, _)| point < hash)
            .checked_rem(self.points.len())
            .expect("rings are never empty");
        self.points[slot].1
    }

    /// The shard name owning a venue id.
    pub fn assign_name(&self, venue: &str) -> &str {
        &self.names[self.assign(venue)]
    }

    /// Shard names in construction order (`assign` indexes into this).
    pub fn shard_names(&self) -> &[String] {
        &self.names
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Rings are never empty (construction rejects it), so this is false.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_published_vectors() {
        // Reference vectors of the FNV-1a 64 specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn assignment_is_total_and_stable() {
        let ring = HashRing::new(&["s0", "s1", "s2"], DEFAULT_VNODES);
        for venue in ["mega-0", "mega-1", "fig1", "", "☃"] {
            let shard = ring.assign(venue);
            assert!(shard < 3);
            assert_eq!(ring.assign(venue), shard, "assignment is deterministic");
            assert_eq!(ring.assign_name(venue), ring.shard_names()[shard].as_str());
        }
    }

    /// Golden placements: these exact values are what any other process
    /// (another router, a rebalancing tool) must compute. If this test
    /// breaks, the change reshuffles every deployed cluster.
    #[test]
    fn golden_placements_are_pinned() {
        let ring = HashRing::new(&["alpha", "beta", "gamma"], DEFAULT_VNODES);
        let placements: Vec<&str> = ["mega-0", "mega-1", "mega-2", "mega-3", "fig1"]
            .iter()
            .map(|venue| ring.assign_name(venue))
            .collect();
        assert_eq!(placements, ["beta", "beta", "gamma", "gamma", "beta"]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_shards_are_rejected() {
        HashRing::new(&["a", "a"], 4);
    }
}
