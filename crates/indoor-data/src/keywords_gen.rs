//! Builds a venue's [`KeywordDirectory`] from the synthetic corpus and
//! assigns i-words (with their t-words) to rooms, following §V-A1:
//! "We randomly assign an i-word and all its t-words to each room."

use crate::corpus_gen::GeneratedCorpus;
use indoor_keywords::{ExtractionConfig, ExtractionPipeline, KeywordDirectory, WordId};
use indoor_space::PartitionId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the keyword-directory construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeywordAssignmentConfig {
    /// Maximum extracted keywords kept per i-word (the paper keeps up to 60,
    /// ranked by TF-IDF).
    pub max_twords_per_iword: usize,
}

impl Default for KeywordAssignmentConfig {
    fn default() -> Self {
        KeywordAssignmentConfig {
            max_twords_per_iword: 60,
        }
    }
}

/// A keyword directory plus the i-word ids of every brand, in brand order.
#[derive(Debug, Clone)]
pub struct BuiltKeywords {
    /// The directory holding vocabularies and mappings (partitions not yet
    /// assigned).
    pub directory: KeywordDirectory,
    /// Brand i-word ids, aligned with `GeneratedCorpus::brands`.
    pub brand_iwords: Vec<WordId>,
}

/// Runs the extraction pipeline over the corpus and registers every brand as
/// an i-word with its extracted t-words.
pub fn build_directory(
    corpus: &GeneratedCorpus,
    config: &KeywordAssignmentConfig,
) -> BuiltKeywords {
    let pipeline = ExtractionPipeline::new(ExtractionConfig {
        max_keywords_per_brand: config.max_twords_per_iword,
        ..Default::default()
    });
    let extracted = pipeline.extract(&corpus.corpus);
    let mut directory = KeywordDirectory::new();
    let mut brand_iwords = Vec::with_capacity(corpus.brands.len());
    // First pass: register every brand name as an i-word so that brand names
    // appearing inside other brands' descriptions are never added as t-words
    // (the i-word / t-word sets stay disjoint).
    for brand in &corpus.brands {
        let iword = directory
            .add_iword(brand)
            .expect("brand names are generated before any t-word exists");
        brand_iwords.push(iword);
    }
    // Second pass: attach extracted keywords as t-words.
    for (brand, iword) in corpus.brands.iter().zip(&brand_iwords) {
        if let Some(keywords) = extracted.get(&brand.to_lowercase()) {
            for keyword in keywords {
                directory.add_tword_for(*iword, keyword);
            }
        }
    }
    BuiltKeywords {
        directory,
        brand_iwords,
    }
}

/// Randomly assigns a brand (i-word) to every room partition. The same brand
/// may serve several rooms (the `I2P` mapping is one-to-many). Returns the
/// brand index chosen for each room.
pub fn assign_rooms<R: Rng>(
    built: &mut BuiltKeywords,
    rooms: &[PartitionId],
    rng: &mut R,
) -> Vec<usize> {
    let mut choices = Vec::with_capacity(rooms.len());
    for &room in rooms {
        let idx = rng.gen_range(0..built.brand_iwords.len());
        built
            .directory
            .name_partition(room, built.brand_iwords[idx])
            .expect("rooms are named exactly once");
        choices.push(idx);
    }
    choices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus_gen::{generate_corpus, CorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_corpus(seed: u64) -> GeneratedCorpus {
        let config = CorpusConfig {
            num_brands: 40,
            ..Default::default()
        };
        generate_corpus(&config, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn directory_registers_all_brands_as_iwords() {
        let corpus = small_corpus(3);
        let built = build_directory(&corpus, &KeywordAssignmentConfig::default());
        assert_eq!(built.brand_iwords.len(), 40);
        assert_eq!(built.directory.vocab().num_iwords(), 40);
        // Most brands received t-words via extraction.
        let with_twords = built
            .brand_iwords
            .iter()
            .filter(|&&iw| !built.directory.twords_of(iw).is_empty())
            .count();
        assert!(with_twords >= 30);
        // No t-word equals a brand name.
        for &iw in &built.brand_iwords {
            for tw in built.directory.twords_of(iw) {
                assert!(built.directory.vocab().is_tword(tw));
            }
        }
    }

    #[test]
    fn tword_cap_is_respected() {
        let corpus = small_corpus(4);
        let built = build_directory(
            &corpus,
            &KeywordAssignmentConfig {
                max_twords_per_iword: 5,
            },
        );
        for &iw in &built.brand_iwords {
            assert!(built.directory.twords_of(iw).len() <= 5);
        }
    }

    #[test]
    fn room_assignment_names_every_room_once() {
        let corpus = small_corpus(5);
        let mut built = build_directory(&corpus, &KeywordAssignmentConfig::default());
        let rooms: Vec<PartitionId> = (0..20).map(PartitionId).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let choices = assign_rooms(&mut built, &rooms, &mut rng);
        assert_eq!(choices.len(), 20);
        for &room in &rooms {
            assert!(built.directory.partition_iword(room).is_some());
        }
        // Deterministic for a fixed seed.
        let mut built2 = build_directory(&corpus, &KeywordAssignmentConfig::default());
        let choices2 = assign_rooms(&mut built2, &rooms, &mut StdRng::seed_from_u64(9));
        assert_eq!(choices, choices2);
    }
}
