//! IKRQ query-instance generation, following the four-step procedure of
//! §V-A1:
//!
//! 1. fix the target start-to-terminal distance `δs2t` and pick a random
//!    start point `ps`;
//! 2. using the precomputed door-to-door matrix, find a door `d'` whose
//!    distance from `ps` approximates `δs2t`;
//! 3. expand from `d'` to a random terminal point `pt` whose indoor distance
//!    from `ps` best meets `δs2t`;
//! 4. set `∆ = η · δs2t` and draw the query keyword list `QW` with an i-word
//!    fraction `β` from the venue vocabulary.
//!
//! The crate does not depend on the engine crate, so the generated
//! [`QueryInstance`] carries plain fields; the benchmark harness converts it
//! into an `ikrq_core::IkrqQuery`.

use crate::params::ExperimentDefaults;
use crate::venue::Venue;
use indoor_index::LazyDoorRows;
use indoor_keywords::WordId;
use indoor_space::{IndoorPoint, PartitionId, PartitionKind, UNREACHABLE};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Workload parameters of one query setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of query keywords `|QW|`.
    pub qw_len: usize,
    /// Fraction of i-words in `QW` (`β`).
    pub beta: f64,
    /// Target start-to-terminal distance `δs2t` in metres.
    pub s2t: f64,
    /// Distance constraint coefficient `η`.
    pub eta: f64,
    /// Number of routes to return, `k`.
    pub k: usize,
    /// Ranking trade-off `α`.
    pub alpha: f64,
    /// Candidate similarity threshold `τ`.
    pub tau: f64,
}

impl From<ExperimentDefaults> for WorkloadConfig {
    fn from(d: ExperimentDefaults) -> Self {
        WorkloadConfig {
            qw_len: d.qw_len,
            beta: d.beta,
            s2t: d.s2t,
            eta: d.eta,
            k: d.k,
            alpha: d.alpha,
            tau: d.tau,
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        ExperimentDefaults::default().into()
    }
}

/// One generated query instance, engine-agnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryInstance {
    /// Start point `ps`.
    pub start: IndoorPoint,
    /// Terminal point `pt`.
    pub terminal: IndoorPoint,
    /// Distance constraint `∆ = η · δs2t`.
    pub delta: f64,
    /// Query keyword strings `QW` (i-words and t-words mixed; the engine
    /// classifies them automatically).
    pub keywords: Vec<String>,
    /// `k`.
    pub k: usize,
    /// Ranking trade-off `α`.
    pub alpha: f64,
    /// Candidate similarity threshold `τ`.
    pub tau: f64,
    /// The realised indoor distance between `ps` and `pt`.
    pub actual_s2t: f64,
}

/// Query generator bound to a venue. The paper's procedure uses a
/// "precomputed door-to-door matrix"; the generator exposes the same
/// distances through lazily materialized per-door rows, so only the rows
/// actually touched (the leave doors of sampled start partitions) are ever
/// computed. This keeps generation memory and setup time linear in the venue
/// size instead of the quadratic all-pairs matrix, which is what makes
/// workload generation feasible on the 10⁴–10⁵-partition mega venues of
/// [`crate::mega`].
#[derive(Debug)]
pub struct QueryGenerator<'a> {
    venue: &'a Venue,
    rows: LazyDoorRows,
    candidate_partitions: Vec<PartitionId>,
    iword_pool: Vec<WordId>,
    tword_pool: Vec<WordId>,
}

impl<'a> QueryGenerator<'a> {
    /// Creates a generator. Cheap: door-distance rows materialize on demand.
    pub fn new(venue: &'a Venue) -> Self {
        let rows = LazyDoorRows::new(Arc::new(venue.space.clone()));
        let candidate_partitions = venue
            .space
            .partitions()
            .iter()
            .filter(|p| !matches!(p.kind, PartitionKind::Staircase | PartitionKind::Elevator))
            .map(|p| p.id)
            .collect();
        let iword_pool = venue.directory.vocab().iwords().collect();
        let tword_pool = venue.directory.vocab().twords().collect();
        QueryGenerator {
            venue,
            rows,
            candidate_partitions,
            iword_pool,
            tword_pool,
        }
    }

    /// Door-to-door distance through the lazily materialized rows (also
    /// useful to experiment drivers).
    pub fn door_distance(&self, from: indoor_space::DoorId, to: indoor_space::DoorId) -> f64 {
        self.rows.distance(from, to)
    }

    /// Number of door-distance rows materialized so far.
    pub fn materialized_rows(&self) -> usize {
        self.rows.materialized_rows()
    }

    /// Generates one query instance; returns `None` when no valid instance
    /// could be produced after a bounded number of attempts (e.g. the venue
    /// is too small for the requested `δs2t`).
    pub fn generate<R: Rng>(&self, config: &WorkloadConfig, rng: &mut R) -> Option<QueryInstance> {
        for _ in 0..64 {
            if let Some(instance) = self.try_generate(config, rng) {
                return Some(instance);
            }
        }
        None
    }

    /// Generates a batch of query instances (the paper uses ten per setting).
    pub fn generate_batch<R: Rng>(
        &self,
        config: &WorkloadConfig,
        count: usize,
        rng: &mut R,
    ) -> Vec<QueryInstance> {
        (0..count)
            .filter_map(|_| self.generate(config, rng))
            .collect()
    }

    fn try_generate<R: Rng>(&self, config: &WorkloadConfig, rng: &mut R) -> Option<QueryInstance> {
        let space = &self.venue.space;
        // Step 1: random start point.
        let &start_partition = self.candidate_partitions.choose(rng)?;
        let start = self.random_point_in(start_partition, rng);

        // Distance from ps to every door, via the leavable doors of v(ps).
        let leave_doors = space.p2d_leave(start_partition);
        let dist_to_door = |door: indoor_space::DoorId| -> f64 {
            leave_doors
                .iter()
                .map(|&dx| {
                    let head = space.pt2d_distance(&start, dx);
                    if !head.is_finite() {
                        return UNREACHABLE;
                    }
                    head + if dx == door {
                        0.0
                    } else {
                        self.rows.distance(dx, door)
                    }
                })
                .fold(UNREACHABLE, f64::min)
        };

        // Step 2: the door whose distance to ps best approximates δs2t.
        let num_doors = space.num_doors();
        let mut best_door = None;
        let mut best_gap = f64::INFINITY;
        for idx in 0..num_doors {
            let door = indoor_space::DoorId(idx as u32);
            let d = dist_to_door(door);
            if !d.is_finite() {
                continue;
            }
            let gap = (d - config.s2t).abs();
            if gap < best_gap {
                best_gap = gap;
                best_door = Some((door, d));
            }
        }
        let (anchor_door, _) = best_door?;

        // Step 3: expand from d' to a terminal point whose realised distance
        // best meets δs2t: sample candidate points in the partitions
        // enterable through d' and keep the best.
        let mut best_terminal: Option<(IndoorPoint, f64)> = None;
        for &vp in space.d2p_enter(anchor_door) {
            if space
                .partition(vp)
                .map(|p| p.kind == PartitionKind::Staircase)
                .unwrap_or(true)
            {
                continue;
            }
            for _ in 0..4 {
                let candidate = self.random_point_in(vp, rng);
                let actual = self.point_to_point(&start, &candidate, start_partition);
                if !actual.is_finite() || actual <= 0.0 {
                    continue;
                }
                let gap = (actual - config.s2t).abs();
                if best_terminal
                    .as_ref()
                    .map(|(_, best)| gap < (best - config.s2t).abs())
                    .unwrap_or(true)
                {
                    best_terminal = Some((candidate, actual));
                }
            }
        }
        let (terminal, actual_s2t) = best_terminal?;
        // Reject degenerate instances that missed the target badly (e.g. the
        // venue is smaller than the requested δs2t).
        if actual_s2t < 0.25 * config.s2t {
            return None;
        }

        // Step 4: distance constraint and keywords.
        let delta = config.eta * actual_s2t;
        let keywords = self.sample_keywords(config, rng)?;
        Some(QueryInstance {
            start,
            terminal,
            delta,
            keywords,
            k: config.k,
            alpha: config.alpha,
            tau: config.tau,
            actual_s2t,
        })
    }

    fn sample_keywords<R: Rng>(&self, config: &WorkloadConfig, rng: &mut R) -> Option<Vec<String>> {
        if config.qw_len == 0 {
            return None;
        }
        let num_iwords = ((config.beta * config.qw_len as f64).round() as usize).min(config.qw_len);
        let num_twords = config.qw_len - num_iwords;
        let mut words = Vec::with_capacity(config.qw_len);
        for _ in 0..num_iwords {
            let &w = self.iword_pool.choose(rng)?;
            words.push(self.venue.directory.resolve(w)?.to_string());
        }
        for _ in 0..num_twords {
            // Fall back to i-words when the venue has no t-words at all.
            let w = if self.tword_pool.is_empty() {
                *self.iword_pool.choose(rng)?
            } else {
                *self.tword_pool.choose(rng)?
            };
            words.push(self.venue.directory.resolve(w)?.to_string());
        }
        words.shuffle(rng);
        Some(words)
    }

    fn random_point_in<R: Rng>(&self, partition: PartitionId, rng: &mut R) -> IndoorPoint {
        self.venue.point_in_partition(
            partition,
            (rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)),
        )
    }

    /// Indoor distance between two points using the precomputed matrix.
    fn point_to_point(&self, a: &IndoorPoint, b: &IndoorPoint, a_partition: PartitionId) -> f64 {
        let space = &self.venue.space;
        let Ok(b_partition) = space.host_partition(b) else {
            return UNREACHABLE;
        };
        let mut best = if a_partition == b_partition {
            a.position.distance(&b.position)
        } else {
            UNREACHABLE
        };
        for &dx in space.p2d_leave(a_partition) {
            let head = space.pt2d_distance(a, dx);
            if !head.is_finite() {
                continue;
            }
            for &de in space.p2d_enter(b_partition) {
                let tail = space.d2pt_distance(de, b);
                if !tail.is_finite() {
                    continue;
                }
                let mid = if dx == de {
                    0.0
                } else {
                    self.rows.distance(dx, de)
                };
                if mid.is_finite() {
                    best = best.min(head + mid + tail);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::venue::{SyntheticVenueConfig, Venue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_venue() -> Venue {
        Venue::synthetic(&SyntheticVenueConfig::small(11)).unwrap()
    }

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            s2t: 600.0,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn generated_instances_respect_the_workload_parameters() {
        let venue = small_venue();
        let generator = QueryGenerator::new(&venue);
        let mut rng = StdRng::seed_from_u64(1);
        let config = small_config();
        let instance = generator.generate(&config, &mut rng).expect("instance");
        assert_eq!(instance.keywords.len(), config.qw_len);
        assert_eq!(instance.k, config.k);
        assert!((instance.alpha - config.alpha).abs() < 1e-12);
        assert!((instance.delta - config.eta * instance.actual_s2t).abs() < 1e-9);
        assert!(instance.actual_s2t > 0.0);
        // Start and terminal are inside the venue.
        assert!(venue.space.host_partition(&instance.start).is_ok());
        assert!(venue.space.host_partition(&instance.terminal).is_ok());
        // Keywords resolve against the venue vocabulary.
        for w in &instance.keywords {
            assert!(venue.directory.lookup(w).is_some());
        }
    }

    #[test]
    fn beta_controls_the_iword_fraction() {
        let venue = small_venue();
        let generator = QueryGenerator::new(&venue);
        let mut rng = StdRng::seed_from_u64(2);
        let config = WorkloadConfig {
            beta: 1.0,
            qw_len: 4,
            ..small_config()
        };
        let instance = generator.generate(&config, &mut rng).unwrap();
        let iwords = instance
            .keywords
            .iter()
            .filter(|w| {
                matches!(
                    venue.directory.classify(w).1,
                    indoor_keywords::WordKind::IWord
                )
            })
            .count();
        assert_eq!(iwords, 4, "β = 100 % means only i-words");
        let config = WorkloadConfig {
            beta: 0.0,
            qw_len: 4,
            ..small_config()
        };
        let instance = generator.generate(&config, &mut rng).unwrap();
        let twords = instance
            .keywords
            .iter()
            .filter(|w| {
                matches!(
                    venue.directory.classify(w).1,
                    indoor_keywords::WordKind::TWord
                )
            })
            .count();
        assert_eq!(twords, 4, "β = 0 % means only t-words");
    }

    #[test]
    fn realised_s2t_tracks_the_target() {
        let venue = small_venue();
        let generator = QueryGenerator::new(&venue);
        let mut rng = StdRng::seed_from_u64(3);
        let config = small_config();
        let batch = generator.generate_batch(&config, 8, &mut rng);
        assert!(!batch.is_empty());
        for instance in &batch {
            // The realised distance is within a factor of the requested one
            // (the venue cannot always hit it exactly).
            assert!(instance.actual_s2t > 0.25 * config.s2t);
            assert!(instance.actual_s2t < 4.0 * config.s2t);
        }
    }

    #[test]
    fn lazy_rows_stay_sublinear_in_the_door_count() {
        let venue = small_venue();
        let generator = QueryGenerator::new(&venue);
        assert_eq!(generator.materialized_rows(), 0, "construction is lazy");
        let mut rng = StdRng::seed_from_u64(5);
        let batch = generator.generate_batch(&small_config(), 4, &mut rng);
        assert!(!batch.is_empty());
        let doors = venue.space.num_doors();
        assert!(generator.materialized_rows() > 0);
        assert!(
            generator.materialized_rows() < doors / 4,
            "only the sampled start partitions' leave-door rows materialize: {} of {doors}",
            generator.materialized_rows()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let venue = small_venue();
        let generator = QueryGenerator::new(&venue);
        let config = small_config();
        let a = generator.generate_batch(&config, 3, &mut StdRng::seed_from_u64(9));
        let b = generator.generate_batch(&config, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
