//! Mega-venue generator: venues of 10³–10⁵ partitions for the venue-scale
//! indexing experiments.
//!
//! The mall generator of [`crate::mall`] reproduces the paper's per-floor
//! statistics exactly, but its keyword pipeline (corpus synthesis + RAKE/
//! TF-IDF extraction) and its cross-shaped floorplan do not scale to the
//! partition counts the index benchmarks need. This module generates a
//! deliberately simple *comb* topology whose cost is linear in the partition
//! count:
//!
//! * per floor, a vertical **trunk** corridor on the west edge, decomposed
//!   into one segment per rib;
//! * **ribs**: horizontal corridors branching east off the trunk, each
//!   decomposed into regular segments;
//! * **rooms** lining both sides of every rib segment, one door each;
//! * one **staircase** at the south end of the trunk chaining floors with
//!   configurable stairway lengths (same intra-distance wiring as the mall
//!   generator, so one floor change costs exactly `stairway_length`).
//!
//! The door graph is linear in the partition count (one door per room, one
//! per corridor adjacency), and keywords are synthesized directly into the
//! [`KeywordDirectory`] — deterministic brand i-words drawn over shared
//! per-category t-word pools with a Zipf-skewed category choice — skipping
//! the corpus/extraction machinery entirely. The skew produces the
//! clustered, long-tailed posting lists the keyword-aware partition index
//! is designed to exploit.

use crate::venue::Venue;
use indoor_geom::{Point, Rect};
use indoor_keywords::KeywordDirectory;
use indoor_space::{
    DoorId, DoorKind, FloorId, IndoorSpaceBuilder, PartitionId, PartitionKind,
    Result as SpaceResult, SpaceError,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Room width along the rib corridor, metres.
const ROOM_W: f64 = 8.0;
/// Room depth perpendicular to the rib corridor, metres.
const ROOM_DEPTH: f64 = 10.0;
/// Corridor width (ribs and trunk), metres.
const CORRIDOR_W: f64 = 6.0;
/// Clearance between the room band of one rib and the next rib's band.
const GAP: f64 = 1.0;
/// Vertical pitch between consecutive ribs.
const PITCH: f64 = 2.0 * ROOM_DEPTH + CORRIDOR_W + 2.0 * GAP;
/// Trunk corridor width, metres.
const TRUNK_W: f64 = 6.0;
/// Staircase block height at the south end of the trunk, metres.
const STAIR_H: f64 = 12.0;

/// Configuration of the mega-venue generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MegaVenueConfig {
    /// Target total partition count across all floors. The generator rounds
    /// the comb layout up, so the built venue has *at least* this many
    /// partitions (and no more than a small layout-granularity overshoot).
    pub partitions: usize,
    /// Number of floors.
    pub floors: usize,
    /// Rooms on each side of each rib segment.
    pub rooms_per_segment_side: usize,
    /// Number of keyword categories; each category owns a t-word pool.
    pub categories: usize,
    /// T-words in each category pool.
    pub twords_per_category: usize,
    /// T-words associated with each brand i-word (drawn from its category
    /// pool, so brands of one category share descriptive terms).
    pub twords_per_brand: usize,
    /// Zipf exponent of the category-popularity skew (0 = uniform).
    pub zipf_exponent: f64,
    /// Walking length of one stairway between adjacent floors.
    pub stairway_length: f64,
    /// Seed for all random choices (category draws, t-word picks).
    pub seed: u64,
}

impl Default for MegaVenueConfig {
    fn default() -> Self {
        MegaVenueConfig {
            partitions: 1_000,
            floors: 3,
            rooms_per_segment_side: 4,
            categories: 32,
            twords_per_category: 12,
            twords_per_brand: 5,
            zipf_exponent: 1.0,
            stairway_length: 20.0,
            seed: 42,
        }
    }
}

impl MegaVenueConfig {
    /// Convenience: the default configuration at a different scale.
    pub fn sized(partitions: usize, seed: u64) -> Self {
        MegaVenueConfig {
            partitions,
            seed,
            ..Default::default()
        }
    }

    /// Checks the size parameters, returning a usage error instead of
    /// panicking (or allocating absurd amounts) later in generation.
    pub fn validate(&self) -> SpaceResult<()> {
        let fail = |msg: String| Err(SpaceError::InvalidConfig(msg));
        if self.floors == 0 || self.floors > 64 {
            return fail(format!("floors must be in 1..=64, got {}", self.floors));
        }
        if self.rooms_per_segment_side == 0 {
            return fail("rooms_per_segment_side must be at least 1".into());
        }
        if self.partitions > 1_000_000 {
            return fail(format!(
                "partitions capped at 1_000_000, got {}",
                self.partitions
            ));
        }
        let min = self.floors * (2 * self.rooms_per_segment_side + 3);
        if self.partitions < min {
            return fail(format!(
                "partitions {} is too small for {} floors: need at least {} \
                 (one rib segment per floor)",
                self.partitions, self.floors, min
            ));
        }
        if self.categories == 0 {
            return fail("categories must be at least 1".into());
        }
        if self.twords_per_brand == 0 || self.twords_per_brand > self.twords_per_category {
            return fail(format!(
                "twords_per_brand must be in 1..=twords_per_category ({}), got {}",
                self.twords_per_category, self.twords_per_brand
            ));
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return fail(format!(
                "zipf_exponent must be finite and non-negative, got {}",
                self.zipf_exponent
            ));
        }
        if !self.stairway_length.is_finite() || self.stairway_length <= 0.0 {
            return fail(format!(
                "stairway_length must be a positive finite length, got {}",
                self.stairway_length
            ));
        }
        Ok(())
    }

    /// The comb dimensions for this configuration: (ribs per floor, segments
    /// per rib). Chosen so each floor is roughly square and the total
    /// partition count meets the target.
    fn comb_dimensions(&self) -> (usize, usize) {
        let per_segment = 2 * self.rooms_per_segment_side + 1;
        let per_floor_target = self.partitions.div_ceil(self.floors);
        // Trunk + staircase overhead is one partition per rib plus one; the
        // segment solve below rounds up, which absorbs it.
        let total_segments = per_floor_target.div_ceil(per_segment).max(1);
        let ribs = (total_segments as f64).sqrt().ceil() as usize;
        let segments = total_segments.div_ceil(ribs);
        (ribs.max(1), segments.max(1))
    }
}

/// Generates a mega venue: comb floorplan plus directly synthesized
/// skewed keywords. Deterministic for a given configuration.
pub fn mega_venue(config: &MegaVenueConfig) -> SpaceResult<Venue> {
    config.validate()?;
    let (ribs, segments) = config.comb_dimensions();
    let rooms_side = config.rooms_per_segment_side;
    let seg_len = rooms_side as f64 * ROOM_W;
    let floor_w = TRUNK_W + segments as f64 * seg_len + GAP;
    let floor_h = STAIR_H + ribs as f64 * PITCH + GAP;

    let mut builder = IndoorSpaceBuilder::new().with_grid_cell(seg_len.max(PITCH));
    let mut rooms: Vec<PartitionId> = Vec::new();
    // Per floor: (staircase partition, its trunk-side door).
    let mut stair_by_floor: Vec<(PartitionId, DoorId)> = Vec::new();

    for floor_idx in 0..config.floors {
        let floor = FloorId(floor_idx as i32);
        builder.add_floor(
            floor,
            Rect::from_origin_size(Point::ORIGIN, floor_w, floor_h)?,
        );

        // Staircase block and trunk corridor on the west edge.
        let staircase = builder.add_partition(
            floor,
            PartitionKind::Staircase,
            Rect::new(Point::new(0.0, 0.0), Point::new(TRUNK_W, STAIR_H))?,
            Some(format!("stair-f{floor_idx}")),
        );
        let mut trunk = Vec::with_capacity(ribs);
        for i in 0..ribs {
            let y0 = STAIR_H + i as f64 * PITCH;
            let seg = builder.add_partition(
                floor,
                PartitionKind::Hallway,
                Rect::new(Point::new(0.0, y0), Point::new(TRUNK_W, y0 + PITCH))?,
                Some(format!("trunk-f{floor_idx}-{i}")),
            );
            trunk.push(seg);
        }
        let stair_door =
            builder.add_door(Point::new(TRUNK_W / 2.0, STAIR_H), floor, DoorKind::Normal);
        builder.connect_bidirectional(stair_door, staircase, trunk[0]);
        stair_by_floor.push((staircase, stair_door));
        for i in 0..ribs - 1 {
            let y = STAIR_H + (i + 1) as f64 * PITCH;
            let d = builder.add_door(Point::new(TRUNK_W / 2.0, y), floor, DoorKind::Normal);
            builder.connect_bidirectional(d, trunk[i], trunk[i + 1]);
        }

        // Ribs with rooms on both sides.
        for (i, &trunk_seg) in trunk.iter().enumerate() {
            let rib_y0 = STAIR_H + i as f64 * PITCH + GAP + ROOM_DEPTH;
            let rib_y1 = rib_y0 + CORRIDOR_W;
            let rib_mid = (rib_y0 + rib_y1) / 2.0;
            let mut prev_seg: Option<PartitionId> = None;
            for s in 0..segments {
                let x0 = TRUNK_W + s as f64 * seg_len;
                let x1 = x0 + seg_len;
                let seg = builder.add_partition(
                    floor,
                    PartitionKind::Hallway,
                    Rect::new(Point::new(x0, rib_y0), Point::new(x1, rib_y1))?,
                    Some(format!("rib-f{floor_idx}-{i}-{s}")),
                );
                match prev_seg {
                    None => {
                        let d =
                            builder.add_door(Point::new(TRUNK_W, rib_mid), floor, DoorKind::Normal);
                        builder.connect_bidirectional(d, trunk_seg, seg);
                    }
                    Some(prev) => {
                        let d = builder.add_door(Point::new(x0, rib_mid), floor, DoorKind::Normal);
                        builder.connect_bidirectional(d, prev, seg);
                    }
                }
                prev_seg = Some(seg);
                for side in [1.0f64, -1.0f64] {
                    let (ry0, ry1) = if side > 0.0 {
                        (rib_y1, rib_y1 + ROOM_DEPTH)
                    } else {
                        (rib_y0 - ROOM_DEPTH, rib_y0)
                    };
                    for j in 0..rooms_side {
                        let rx0 = x0 + j as f64 * ROOM_W;
                        let room = builder.add_partition(
                            floor,
                            PartitionKind::Room,
                            Rect::new(Point::new(rx0, ry0), Point::new(rx0 + ROOM_W, ry1))?,
                            None,
                        );
                        let wall_y = if side > 0.0 { rib_y1 } else { rib_y0 };
                        let d = builder.add_door(
                            Point::new(rx0 + ROOM_W / 2.0, wall_y),
                            floor,
                            DoorKind::Normal,
                        );
                        builder.connect_bidirectional(d, room, seg);
                        rooms.push(room);
                    }
                }
            }
        }
    }

    // Inter-floor stair doors, wired exactly like the mall generator so one
    // floor change costs `stairway_length`.
    let half_stair = config.stairway_length / 2.0;
    let mut previous_stair_door: Option<DoorId> = None;
    for floor_idx in 0..config.floors.saturating_sub(1) {
        let (lower_part, lower_hall_door) = stair_by_floor[floor_idx];
        let (upper_part, upper_hall_door) = stair_by_floor[floor_idx + 1];
        let stair_door = builder.add_door(
            Point::new(TRUNK_W / 2.0, STAIR_H / 2.0),
            FloorId(floor_idx as i32),
            DoorKind::Stair,
        );
        builder.connect_bidirectional(stair_door, lower_part, upper_part);
        builder.set_intra_distance(lower_part, lower_hall_door, stair_door, half_stair);
        builder.set_intra_distance(upper_part, upper_hall_door, stair_door, half_stair);
        if let Some(prev) = previous_stair_door {
            builder.set_intra_distance(lower_part, prev, stair_door, config.stairway_length);
        }
        previous_stair_door = Some(stair_door);
    }

    let space = builder.build()?;
    let directory = synthesize_keywords(config, &rooms);
    Ok(Venue {
        space,
        directory,
        rooms,
    })
}

/// Synthesizes the keyword directory: one deterministic brand i-word per
/// room, with its t-words drawn from the Zipf-chosen category's pool.
fn synthesize_keywords(config: &MegaVenueConfig, rooms: &[PartitionId]) -> KeywordDirectory {
    let mut directory = KeywordDirectory::new();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Cumulative Zipf weights over categories: w_k ∝ 1 / (k + 1)^s.
    let mut cumulative = Vec::with_capacity(config.categories);
    let mut total = 0.0f64;
    for k in 0..config.categories {
        total += 1.0 / ((k + 1) as f64).powf(config.zipf_exponent);
        cumulative.push(total);
    }

    // Pre-render every category t-word once; the per-room loop below would
    // otherwise `format!` rooms × twords_per_brand throwaway strings.
    let pool_names: Vec<Vec<String>> = (0..config.categories)
        .map(|category| {
            (0..config.twords_per_category)
                .map(|j| format!("cat{category}-item{j}"))
                .collect()
        })
        .collect();

    let mut pool_indices: Vec<usize> = (0..config.twords_per_category).collect();
    let mut brand_name = String::with_capacity(24);
    for (i, &room) in rooms.iter().enumerate() {
        brand_name.clear();
        write!(brand_name, "brand-{i}").expect("writing to a String cannot fail");
        let brand = directory
            .add_iword(&brand_name)
            .expect("generated brand names are distinct");
        let u = rng.gen_range(0.0..total);
        let category = cumulative
            .partition_point(|&c| c < u)
            .min(config.categories - 1);
        pool_indices.shuffle(&mut rng);
        for &j in pool_indices.iter().take(config.twords_per_brand) {
            directory.add_tword_for(brand, &pool_names[category][j]);
        }
        directory
            .name_partition(room, brand)
            .expect("each room is named exactly once");
    }
    directory
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::IndoorPoint;

    #[test]
    fn mega_venue_meets_the_requested_scale() {
        let config = MegaVenueConfig::sized(1_000, 7);
        let venue = mega_venue(&config).unwrap();
        let stats = venue.space.stats();
        assert!(
            stats.partitions >= 1_000,
            "at least the requested partitions, got {}",
            stats.partitions
        );
        assert!(
            stats.partitions < 1_500,
            "bounded layout overshoot, got {}",
            stats.partitions
        );
        assert_eq!(stats.floors, 3);
        // The door graph is linear in the partition count.
        assert!(stats.doors < 2 * stats.partitions);
        // Every room carries a brand i-word.
        for &room in &venue.rooms {
            assert!(venue.directory.partition_iword(room).is_some());
        }
    }

    #[test]
    fn floors_are_connected_through_the_stairway() {
        let config = MegaVenueConfig {
            partitions: 200,
            floors: 2,
            ..Default::default()
        };
        let venue = mega_venue(&config).unwrap();
        let a = venue.space.partition(venue.rooms[0]).unwrap();
        let b = venue
            .space
            .partition(venue.rooms[venue.rooms.len() - 1])
            .unwrap();
        assert_ne!(
            a.floor, b.floor,
            "first and last rooms are on different floors"
        );
        let pa = IndoorPoint::new(a.center(), a.floor);
        let pb = IndoorPoint::new(b.center(), b.floor);
        let d = venue.space.point_to_point_distance(&pa, &pb);
        assert!(d.is_finite(), "cross-floor route must exist");
        assert!(d >= config.stairway_length);
    }

    #[test]
    fn keyword_skew_favours_popular_categories() {
        let venue = mega_venue(&MegaVenueConfig::sized(2_000, 3)).unwrap();
        // Count brands whose t-words come from category 0 vs the tail
        // category: the Zipf skew must make the head strictly more popular.
        let brands_in = |category: usize| {
            venue
                .rooms
                .iter()
                .filter(|&&room| {
                    let iw = venue.directory.partition_iword(room).unwrap();
                    venue.directory.twords_of(iw).iter().any(|&tw| {
                        venue
                            .directory
                            .resolve(tw)
                            .is_some_and(|s| s.starts_with(&format!("cat{category}-")))
                    })
                })
                .count()
        };
        let head = brands_in(0);
        let tail = brands_in(31);
        assert!(
            head > 2 * tail.max(1),
            "Zipf skew: head category {head} vs tail {tail}"
        );
        // Shared category pools create i-word associations: at least one
        // t-word belongs to several brands.
        let shared = venue
            .directory
            .vocab()
            .twords()
            .any(|tw| venue.directory.mappings().t2i(tw).map_or(0, |s| s.len()) > 1);
        assert!(shared, "category pools must be shared across brands");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = mega_venue(&MegaVenueConfig::sized(300, 5)).unwrap();
        let b = mega_venue(&MegaVenueConfig::sized(300, 5)).unwrap();
        assert_eq!(a.rooms, b.rooms);
        for &room in &a.rooms {
            let wa = a.directory.partition_iword(room).unwrap();
            let wb = b.directory.partition_iword(room).unwrap();
            assert_eq!(a.directory.twords_of(wa), b.directory.twords_of(wb));
        }
    }

    #[test]
    fn degenerate_configurations_fail_with_usage_errors() {
        let cases = [
            MegaVenueConfig {
                floors: 0,
                ..Default::default()
            },
            MegaVenueConfig {
                partitions: 4,
                ..Default::default()
            },
            MegaVenueConfig {
                partitions: 2_000_000,
                ..Default::default()
            },
            MegaVenueConfig {
                twords_per_brand: 99,
                ..Default::default()
            },
            MegaVenueConfig {
                zipf_exponent: f64::NAN,
                ..Default::default()
            },
        ];
        for config in cases {
            let err = mega_venue(&config).unwrap_err();
            assert!(
                matches!(err, SpaceError::InvalidConfig(_)),
                "expected InvalidConfig, got {err:?}"
            );
        }
    }
}
