//! The [`Venue`] bundle (space + keywords) and the venue constructors: the
//! synthetic mall of §V-A and a small hand-crafted venue mirroring the
//! paper's Fig. 1 running example.

use crate::corpus_gen::{generate_corpus, CorpusConfig};
use crate::keywords_gen::{assign_rooms, build_directory, KeywordAssignmentConfig};
use crate::mall::{MallConfig, MallGenerator};
use indoor_geom::{Point, Rect};
use indoor_keywords::KeywordDirectory;
use indoor_space::{
    DoorKind, FloorId, IndoorPoint, IndoorSpace, IndoorSpaceBuilder, PartitionId, PartitionKind,
    Result as SpaceResult,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete venue: space model plus keyword directory plus the room
/// partitions that carry keywords.
#[derive(Debug, Clone)]
pub struct Venue {
    /// The indoor space model.
    pub space: IndoorSpace,
    /// The keyword directory.
    pub directory: KeywordDirectory,
    /// The room partitions, in deterministic generation order.
    pub rooms: Vec<PartitionId>,
}

/// Configuration of the synthetic venue of §V-A1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticVenueConfig {
    /// Floorplan configuration.
    pub mall: MallConfig,
    /// Keyword corpus configuration.
    pub corpus: CorpusConfig,
    /// Keyword assignment configuration.
    pub keywords: KeywordAssignmentConfig,
    /// Seed for all random choices (corpus generation and room assignment).
    pub seed: u64,
}

impl Default for SyntheticVenueConfig {
    fn default() -> Self {
        SyntheticVenueConfig {
            mall: MallConfig::default(),
            corpus: CorpusConfig::default(),
            keywords: KeywordAssignmentConfig::default(),
            seed: 42,
        }
    }
}

impl SyntheticVenueConfig {
    /// Convenience: a configuration with a different floor count.
    pub fn with_floors(mut self, floors: usize) -> Self {
        self.mall.floors = floors;
        self
    }

    /// A down-scaled configuration for unit tests and examples that need a
    /// realistic but quick-to-build venue (single floor, small corpus).
    pub fn small(seed: u64) -> Self {
        SyntheticVenueConfig {
            mall: MallConfig {
                floors: 1,
                ..Default::default()
            },
            corpus: CorpusConfig {
                num_brands: 120,
                ..Default::default()
            },
            keywords: KeywordAssignmentConfig::default(),
            seed,
        }
    }
}

impl Venue {
    /// Builds the synthetic venue of §V-A1: the multi-floor mall floorplan,
    /// the synthetic brand corpus run through the RAKE/TF-IDF extraction
    /// pipeline, and the random assignment of i-words to rooms.
    pub fn synthetic(config: &SyntheticVenueConfig) -> SpaceResult<Venue> {
        let layout = MallGenerator::generate(&config.mall)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let corpus = generate_corpus(&config.corpus, &mut rng);
        let mut built = build_directory(&corpus, &config.keywords);
        assign_rooms(&mut built, &layout.rooms, &mut rng);
        Ok(Venue {
            space: layout.space,
            directory: built.directory,
            rooms: layout.rooms,
        })
    }

    /// A random point strictly inside a partition (at a fixed inset from its
    /// boundary), useful for generating query endpoints.
    pub fn point_in_partition(&self, partition: PartitionId, fraction: (f64, f64)) -> IndoorPoint {
        let p = self
            .space
            .partition(partition)
            .expect("partition belongs to venue");
        let rect = p.footprint;
        let x = rect.min.x + rect.width() * fraction.0.clamp(0.05, 0.95);
        let y = rect.min.y + rect.height() * fraction.1.clamp(0.05, 0.95);
        IndoorPoint::new(Point::new(x, y), p.floor)
    }
}

/// The hand-crafted venue mirroring the paper's Fig. 1 example: a single
/// corridor with shops on both sides, carrying the keyword mappings used in
/// Examples 3–8 and in the result-quality study of §V-A5.
#[derive(Debug, Clone)]
pub struct PaperExampleVenue {
    /// The venue (space + keywords).
    pub venue: Venue,
    /// Partition of each named shop / hallway cell.
    pub partitions: BTreeMap<String, PartitionId>,
    /// The start point `ps` of the running example (inside zara).
    pub ps: IndoorPoint,
    /// The terminal point `pt` of the running example (in the east hallway).
    pub pt: IndoorPoint,
    /// The point `p1` of the result-quality example (§V-A5).
    pub p1: IndoorPoint,
    /// The point `p2` of the result-quality example (§V-A5).
    pub p2: IndoorPoint,
}

/// Builds the Fig. 1 example venue.
///
/// Layout (one floor, 100 m × 60 m): a west-to-east corridor decomposed into
/// three hallway cells, five shops on the north side (zara, watsons, apple,
/// samsung, ecco) and four on the south side (oppo, costa, starbucks, bank).
/// Every shop has a single corridor door, so visiting a shop requires the
/// one-hop door loop that the regularity principle permits.
pub fn paper_example_venue() -> PaperExampleVenue {
    build_paper_example().expect("the hand-crafted example venue is valid")
}

fn build_paper_example() -> SpaceResult<PaperExampleVenue> {
    let floor = FloorId(0);
    let mut b = IndoorSpaceBuilder::new().with_grid_cell(10.0);
    b.add_floor(floor, Rect::from_origin_size(Point::ORIGIN, 100.0, 60.0)?);

    let mut partitions = BTreeMap::new();

    // Corridor cells: y ∈ [25, 35].
    let hall_bounds = [(0.0, 33.0), (33.0, 80.0), (80.0, 100.0)];
    let mut halls = Vec::new();
    for (i, (x0, x1)) in hall_bounds.iter().enumerate() {
        let id = b.add_partition(
            floor,
            PartitionKind::Hallway,
            Rect::new(Point::new(*x0, 25.0), Point::new(*x1, 35.0))?,
            Some(format!("hall{}", i + 1)),
        );
        partitions.insert(format!("hall{}", i + 1), id);
        halls.push(id);
    }
    // Corridor doors between adjacent cells.
    for i in 0..2 {
        let d = b.add_door(Point::new(hall_bounds[i].1, 30.0), floor, DoorKind::Normal);
        b.connect_bidirectional(d, halls[i], halls[i + 1]);
    }

    // Shops: (name, x0, x1, north?).
    let shops = [
        ("zara", 0.0, 20.0, true),
        ("watsons", 20.0, 40.0, true),
        ("apple", 40.0, 60.0, true),
        ("samsung", 60.0, 80.0, true),
        ("ecco", 80.0, 100.0, true),
        ("oppo", 0.0, 25.0, false),
        ("costa", 25.0, 50.0, false),
        ("starbucks", 50.0, 75.0, false),
        ("bank", 75.0, 100.0, false),
    ];
    for (name, x0, x1, north) in shops {
        let (y0, y1) = if north { (35.0, 55.0) } else { (5.0, 25.0) };
        let id = b.add_partition(
            floor,
            PartitionKind::Room,
            Rect::new(Point::new(x0, y0), Point::new(x1, y1))?,
            Some(name.to_string()),
        );
        partitions.insert(name.to_string(), id);
        let door_x = (x0 + x1) / 2.0;
        let door_y = if north { 35.0 } else { 25.0 };
        let hall = halls[hall_bounds
            .iter()
            .position(|(hx0, hx1)| door_x >= *hx0 && door_x <= *hx1)
            .expect("door lies on some hallway cell")];
        let d = b.add_door(Point::new(door_x, door_y), floor, DoorKind::Normal);
        b.connect_bidirectional(d, id, hall);
    }

    let space = b.build()?;

    // Keyword mappings mirroring Example 4 and §V-A5.
    let mut directory = KeywordDirectory::new();
    let twords: &[(&str, &[&str])] = &[
        ("zara", &["pants", "sweater", "coat"]),
        ("watsons", &["shampoo", "cosmetics", "lotion"]),
        ("apple", &["phone", "mac", "laptop", "watch"]),
        ("samsung", &["phone", "laptop", "earphone"]),
        ("ecco", &["shoes", "leather", "boots"]),
        ("oppo", &["phone", "earphone", "charger"]),
        ("costa", &["coffee", "drinks", "macha"]),
        ("starbucks", &["coffee", "macha", "latte", "drinks"]),
        ("bank", &["cash", "euro", "currency", "exchange"]),
    ];
    let mut rooms = Vec::new();
    for (name, words) in twords {
        let iword = directory.add_iword(name).expect("shop names are distinct");
        for w in *words {
            directory.add_tword_for(iword, w);
        }
        let partition = partitions[*name];
        directory
            .name_partition(partition, iword)
            .expect("each shop is named once");
        rooms.push(partition);
    }

    let ps = IndoorPoint::from_xy(10.0, 45.0, floor); // inside zara
    let pt = IndoorPoint::from_xy(90.0, 30.0, floor); // east hallway cell
    let p1 = IndoorPoint::from_xy(45.0, 30.0, floor); // hallway cell near apple
    let p2 = IndoorPoint::from_xy(75.0, 30.0, floor); // same hallway cell, near samsung

    Ok(PaperExampleVenue {
        venue: Venue {
            space,
            directory,
            rooms,
        },
        partitions,
        ps,
        pt,
        p1,
        p2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_small_venue_builds_and_names_rooms() {
        let venue = Venue::synthetic(&SyntheticVenueConfig::small(7)).unwrap();
        assert_eq!(venue.rooms.len(), 96);
        assert_eq!(venue.space.stats().partitions, 141);
        for &room in &venue.rooms {
            assert!(venue.directory.partition_iword(room).is_some());
        }
        let p = venue.point_in_partition(venue.rooms[0], (0.5, 0.5));
        assert_eq!(venue.space.host_partition(&p).unwrap(), venue.rooms[0]);
    }

    #[test]
    fn synthetic_venue_is_deterministic_per_seed() {
        let a = Venue::synthetic(&SyntheticVenueConfig::small(3)).unwrap();
        let b = Venue::synthetic(&SyntheticVenueConfig::small(3)).unwrap();
        for &room in &a.rooms {
            let wa = a
                .directory
                .partition_iword(room)
                .map(|w| a.directory.resolve(w).unwrap().to_string());
            let wb = b
                .directory
                .partition_iword(room)
                .map(|w| b.directory.resolve(w).unwrap().to_string());
            assert_eq!(wa, wb);
        }
    }

    #[test]
    fn paper_example_venue_matches_running_example() {
        let example = paper_example_venue();
        let venue = &example.venue;
        assert_eq!(
            venue.space.stats().partitions,
            12,
            "3 hallway cells + 9 shops"
        );
        // ps is hosted by zara, pt by the east hallway cell.
        assert_eq!(
            venue.space.host_partition(&example.ps).unwrap(),
            example.partitions["zara"]
        );
        assert_eq!(
            venue.space.host_partition(&example.pt).unwrap(),
            example.partitions["hall3"]
        );
        // Keyword mappings of Example 4.
        let latte = venue.directory.lookup("latte").unwrap();
        let starbucks = venue.directory.lookup("starbucks").unwrap();
        assert!(venue.directory.twords_of(starbucks).contains(&latte));
        assert!(venue
            .directory
            .partition_iword(example.partitions["costa"])
            .is_some());
        // Every shop requires a door loop: exactly one door per shop.
        for name in ["zara", "apple", "samsung", "oppo", "costa"] {
            assert_eq!(venue.space.p2d_enter(example.partitions[name]).len(), 1);
        }
        // The corridor connects end to end.
        let d = venue
            .space
            .point_to_point_distance(&example.ps, &example.pt);
        assert!(d.is_finite() && d > 80.0);
    }
}
