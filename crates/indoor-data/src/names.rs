//! Synthetic brand names and per-category thematic vocabularies.
//!
//! The paper crawls 1225 real brand names and their shop descriptions from
//! five Hong Kong malls. This module synthesises an equivalent vocabulary:
//! pronounceable brand names generated from syllables, grouped into retail
//! categories, each category carrying a pool of thematic words that the
//! corpus generator mixes into shop descriptions. Sharing category pools is
//! what creates the t-word overlap between brands that drives the paper's
//! indirect (Jaccard) keyword matching.

use rand::seq::SliceRandom;
use rand::Rng;

/// A retail category with its thematic vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Category {
    /// Category name (not itself a keyword).
    pub name: &'static str,
    /// Thematic words characteristic of the category.
    pub words: &'static [&'static str],
}

/// The built-in retail categories.
pub const CATEGORIES: &[Category] = &[
    Category {
        name: "coffee",
        words: &[
            "coffee",
            "espresso",
            "latte",
            "mocha",
            "cappuccino",
            "macchiato",
            "brew",
            "beans",
            "roast",
            "pastry",
            "croissant",
            "muffin",
            "tea",
            "matcha",
            "frappe",
            "decaf",
        ],
    },
    Category {
        name: "restaurant",
        words: &[
            "noodle", "ramen", "sushi", "dumpling", "pizza", "burger", "salad", "steak", "curry",
            "rice", "soup", "dessert", "seafood", "barbecue", "dimsum", "hotpot", "buffet",
        ],
    },
    Category {
        name: "electronics",
        words: &[
            "smartphone",
            "laptop",
            "tablet",
            "earphone",
            "headphone",
            "charger",
            "camera",
            "smartwatch",
            "console",
            "monitor",
            "keyboard",
            "router",
            "drone",
            "speaker",
            "powerbank",
            "television",
        ],
    },
    Category {
        name: "fashion",
        words: &[
            "dress", "pants", "sweater", "coat", "jacket", "jeans", "skirt", "shirt", "blouse",
            "suit", "scarf", "denim", "knitwear", "hoodie", "blazer", "cardigan",
        ],
    },
    Category {
        name: "shoes",
        words: &[
            "sneakers", "boots", "sandals", "loafers", "heels", "leather", "running", "trainers",
            "slippers", "laces", "insole", "outdoor", "hiking", "canvas",
        ],
    },
    Category {
        name: "beauty",
        words: &[
            "cosmetics",
            "lipstick",
            "perfume",
            "skincare",
            "shampoo",
            "lotion",
            "mascara",
            "foundation",
            "serum",
            "sunscreen",
            "cleanser",
            "fragrance",
            "moisturizer",
            "toner",
        ],
    },
    Category {
        name: "sports",
        words: &[
            "fitness",
            "yoga",
            "racket",
            "football",
            "basketball",
            "swimming",
            "cycling",
            "dumbbell",
            "jersey",
            "treadmill",
            "tennis",
            "golf",
            "ski",
            "camping",
            "climbing",
        ],
    },
    Category {
        name: "toys",
        words: &[
            "lego",
            "puzzle",
            "doll",
            "boardgame",
            "plush",
            "robot",
            "blocks",
            "figurine",
            "stroller",
            "crayon",
            "playset",
            "scooter",
            "kite",
        ],
    },
    Category {
        name: "books",
        words: &[
            "novel",
            "magazine",
            "stationery",
            "notebook",
            "comics",
            "textbook",
            "pens",
            "bestseller",
            "bookmark",
            "journal",
            "atlas",
            "dictionary",
            "calendar",
        ],
    },
    Category {
        name: "jewelry",
        words: &[
            "necklace", "bracelet", "earrings", "diamond", "gold", "silver", "watch", "pendant",
            "gemstone", "ring", "platinum", "pearl", "brooch",
        ],
    },
    Category {
        name: "grocery",
        words: &[
            "snacks",
            "chocolate",
            "cookies",
            "wine",
            "cheese",
            "organic",
            "fruit",
            "vegetables",
            "bakery",
            "frozen",
            "dairy",
            "cereal",
            "honey",
            "juice",
        ],
    },
    Category {
        name: "home",
        words: &[
            "furniture",
            "sofa",
            "lighting",
            "bedding",
            "kitchenware",
            "curtain",
            "carpet",
            "candles",
            "vase",
            "cushion",
            "wardrobe",
            "mirror",
            "clock",
        ],
    },
    Category {
        name: "services",
        words: &[
            "banking",
            "currency",
            "exchange",
            "printing",
            "photography",
            "repair",
            "pharmacy",
            "optician",
            "travel",
            "ticketing",
            "courier",
            "laundry",
            "tailor",
            "euro",
            "cash",
        ],
    },
    Category {
        name: "luggage",
        words: &[
            "suitcase",
            "backpack",
            "handbag",
            "wallet",
            "duffel",
            "trolley",
            "briefcase",
            "passport",
            "organizer",
            "strap",
        ],
    },
];

/// Generic filler words shared across all categories, giving descriptions a
/// realistic common vocabulary.
pub const GENERIC_WORDS: &[&str] = &[
    "store",
    "shop",
    "brand",
    "quality",
    "service",
    "premium",
    "collection",
    "classic",
    "limited",
    "season",
    "member",
    "discount",
    "flagship",
    "popular",
    "design",
    "style",
    "selection",
    "gift",
    "exclusive",
    "international",
];

const SYLLABLES_A: &[&str] = &[
    "ze", "va", "lo", "mi", "ka", "ren", "su", "tor", "bel", "nor", "fi", "gal", "hu", "jas",
    "kel", "lum", "mar", "nov", "ori", "pra",
];
const SYLLABLES_B: &[&str] = &[
    "ra", "lia", "no", "vex", "din", "sa", "ton", "mia", "rus", "lle", "qui", "zen", "dor", "eta",
    "fin", "gra", "han", "ive", "jo", "kan",
];
const SYLLABLES_C: &[&str] = &[
    "x", "s", "lo", "na", "ri", "co", "li", "ta", "do", "ne", "va", "mo", "ki", "za", "",
];

/// Generates `count` distinct pronounceable brand names. Collisions are
/// resolved with a numeric suffix so the result always has exactly `count`
/// distinct names.
pub fn generate_brand_names<R: Rng>(count: usize, rng: &mut R) -> Vec<String> {
    let mut names = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    while names.len() < count {
        let a = SYLLABLES_A.choose(rng).expect("non-empty");
        let b = SYLLABLES_B.choose(rng).expect("non-empty");
        let c = SYLLABLES_C.choose(rng).expect("non-empty");
        let mut name = format!("{a}{b}{c}");
        if seen.contains(&name) {
            name = format!("{name}{}", names.len());
        }
        if seen.insert(name.clone()) {
            names.push(name);
        }
    }
    names
}

/// Picks a category index for a brand, deterministically spread so every
/// category receives a roughly equal share.
pub fn category_for_brand(brand_index: usize) -> &'static Category {
    &CATEGORIES[brand_index % CATEGORIES.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categories_have_distinct_nonempty_vocabularies() {
        assert!(CATEGORIES.len() >= 10);
        for c in CATEGORIES {
            assert!(!c.words.is_empty());
            assert!(!c.name.is_empty());
        }
        // Vocabulary across categories is reasonably large (drives the t-word
        // diversity of the synthetic data).
        let all: std::collections::HashSet<_> =
            CATEGORIES.iter().flat_map(|c| c.words.iter()).collect();
        assert!(all.len() > 150);
    }

    #[test]
    fn brand_name_generation_is_deterministic_and_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = generate_brand_names(500, &mut rng);
        assert_eq!(a.len(), 500);
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 500);
        let mut rng = StdRng::seed_from_u64(7);
        let b = generate_brand_names(500, &mut rng);
        assert_eq!(a, b, "same seed, same names");
        let mut rng = StdRng::seed_from_u64(8);
        let c = generate_brand_names(500, &mut rng);
        assert_ne!(a, c, "different seed, different names");
    }

    #[test]
    fn category_assignment_covers_all_categories() {
        let used: std::collections::HashSet<_> = (0..CATEGORIES.len() * 3)
            .map(|i| category_for_brand(i).name)
            .collect();
        assert_eq!(used.len(), CATEGORIES.len());
    }
}
