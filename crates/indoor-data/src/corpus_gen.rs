//! Synthetic shop-description corpus generator.
//!
//! Substitutes the paper's Scrapy-crawled corpus (≈2074 documents for 1225
//! brands, §V-A1). Each brand gets one to three documents mixing its
//! category's thematic vocabulary, a set of brand-specific product tokens and
//! generic retail filler. Feeding the result through the RAKE/TF-IDF
//! extraction pipeline of `indoor-keywords` yields per-brand t-words with the
//! same structure as the paper's data: shared category words (driving
//! indirect Jaccard matches) plus brand-specific long-tail words.

use crate::names::{category_for_brand, generate_brand_names, GENERIC_WORDS};
use indoor_keywords::{Corpus, Document};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of brands (the paper crawls 1225).
    pub num_brands: usize,
    /// Minimum documents per brand.
    pub min_docs_per_brand: usize,
    /// Maximum documents per brand (the paper averages ≈1.7).
    pub max_docs_per_brand: usize,
    /// Number of brand-specific product tokens per brand (long-tail t-words).
    pub specific_tokens_per_brand: usize,
    /// Number of category words sampled per document.
    pub category_words_per_doc: usize,
    /// Number of generic filler words sampled per document.
    pub generic_words_per_doc: usize,
    /// Fraction of brands that get an essentially empty description (the
    /// paper reports 105 of 1225 i-words yield no extracted keywords).
    pub empty_description_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_brands: 1225,
            min_docs_per_brand: 1,
            max_docs_per_brand: 3,
            specific_tokens_per_brand: 12,
            category_words_per_doc: 3,
            generic_words_per_doc: 4,
            empty_description_fraction: 0.085,
        }
    }
}

/// Number of brand subgroups per category. Brands only share thematic words
/// with the other brands of their subgroup, which keeps the T2I mapping as
/// sparse as the paper's crawled data (an extracted t-word maps to roughly
/// two i-words on average there); without the subgrouping every category word
/// would be shared by ~90 brands and the candidate i-word sets — and hence
/// the key-partition sets driving the search — would be far denser than in
/// the paper's setting.
const SUBGROUPS_PER_CATEGORY: usize = 12;

/// Generator output: the brand list (in generation order) and the corpus.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// Brand names; index `i` is brand `i`.
    pub brands: Vec<String>,
    /// The documents.
    pub corpus: Corpus,
}

/// Generates the synthetic corpus.
pub fn generate_corpus<R: Rng>(config: &CorpusConfig, rng: &mut R) -> GeneratedCorpus {
    let brands = generate_brand_names(config.num_brands, rng);
    let mut corpus = Corpus::new();
    for (i, brand) in brands.iter().enumerate() {
        let category = category_for_brand(i);
        // Subgroup vocabulary: a slice of the category's own words plus a few
        // subgroup-specific tokens, shared only by the brands of the same
        // subgroup (see SUBGROUPS_PER_CATEGORY).
        let subgroup = (i / crate::names::CATEGORIES.len()) % SUBGROUPS_PER_CATEGORY;
        let offset = (subgroup * 3) % category.words.len();
        let mut shared_pool: Vec<String> = (0..4)
            .map(|j| category.words[(offset + j) % category.words.len()].to_string())
            .collect();
        shared_pool.extend((0..4).map(|j| format!("{}{}kit{j}", category.name, subgroup)));
        // Brand-specific product tokens, e.g. "zerapro3".
        let specific: Vec<String> = (0..config.specific_tokens_per_brand)
            .map(|j| format!("{brand}pro{j}"))
            .collect();
        let empty = rng.gen_bool(config.empty_description_fraction);
        let docs = rng.gen_range(config.min_docs_per_brand..=config.max_docs_per_brand);
        for _ in 0..docs {
            let mut words: Vec<String> = Vec::new();
            if !empty {
                for word in shared_pool.choose_multiple(rng, config.category_words_per_doc) {
                    words.push(word.clone());
                }
                for token in
                    specific.choose_multiple(rng, (config.specific_tokens_per_brand / 2).max(1))
                {
                    words.push(token.clone());
                }
            }
            for _ in 0..config.generic_words_per_doc {
                words.push((*GENERIC_WORDS.choose(rng).expect("non-empty")).to_string());
            }
            words.shuffle(rng);
            let text = format!("{} offers {}.", brand, words.join(" "));
            corpus.push(Document::new(brand.clone(), text));
        }
    }
    GeneratedCorpus { brands, corpus }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_keywords::{ExtractionConfig, ExtractionPipeline};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> CorpusConfig {
        CorpusConfig {
            num_brands: 60,
            ..Default::default()
        }
    }

    #[test]
    fn corpus_has_expected_document_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = generate_corpus(&small_config(), &mut rng);
        assert_eq!(out.brands.len(), 60);
        assert!(out.corpus.len() >= 60);
        assert!(out.corpus.len() <= 180);
        assert_eq!(out.corpus.num_brands(), 60);
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let c = CorpusConfig::default();
        assert_eq!(c.num_brands, 1225);
        assert!(
            c.max_docs_per_brand >= 2,
            "≈2074 docs for 1225 brands needs >1 doc for some"
        );
    }

    #[test]
    fn extraction_over_generated_corpus_yields_category_keywords() {
        let mut rng = StdRng::seed_from_u64(42);
        let out = generate_corpus(&small_config(), &mut rng);
        let pipeline = ExtractionPipeline::new(ExtractionConfig::default());
        let keywords = pipeline.extract(&out.corpus);
        // Most brands get keywords.
        let with_keywords = keywords.values().filter(|v| !v.is_empty()).count();
        assert!(with_keywords as f64 >= 0.8 * 60.0);
        // Some pair of brands shares a thematic word (same category and
        // subgroup), but sharing stays sparse: on average a keyword maps to
        // only a handful of brands, mirroring the paper's crawled data.
        let mut brands_per_word: std::collections::HashMap<&String, usize> =
            std::collections::HashMap::new();
        for kws in keywords.values() {
            for w in kws {
                *brands_per_word.entry(w).or_default() += 1;
            }
        }
        assert!(
            brands_per_word.values().any(|&c| c > 1),
            "some sharing exists"
        );
        let avg = brands_per_word.values().map(|&c| c as f64).sum::<f64>()
            / brands_per_word.len().max(1) as f64;
        assert!(avg < 5.0, "t-word sharing must stay sparse, got {avg}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_corpus(&small_config(), &mut StdRng::seed_from_u64(5));
        let b = generate_corpus(&small_config(), &mut StdRng::seed_from_u64(5));
        assert_eq!(a.brands, b.brands);
        assert_eq!(a.corpus, b.corpus);
    }
}
