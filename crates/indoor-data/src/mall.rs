//! Parametric multi-floor shopping-mall floorplan generator.
//!
//! The synthetic indoor space of §V-A1 is "based on a real-world floorplan":
//! each floor is 1368 m × 1368 m with 96 rooms, 4 hallways and 4 staircases;
//! the irregular hallways are decomposed into smaller regular partitions,
//! giving 141 partitions and 220 doors per floor; floors are duplicated 3–9
//! times and connected by 20 m stairways at the four staircases.
//!
//! The generator reproduces those statistics with a cross-shaped layout:
//! a central junction, four corridor arms decomposed into regular segments,
//! rooms lining both sides of every arm, and a staircase at the end of each
//! arm. The same generator, differently parametrised (larger floor, extra
//! staircases, more rooms), produces the floorplan of the simulated "real"
//! venue of §V-B.

use indoor_geom::{Point, Rect};
use indoor_space::{
    DoorId, DoorKind, FloorId, IndoorSpace, IndoorSpaceBuilder, PartitionId, PartitionKind,
    Result as SpaceResult,
};
use serde::{Deserialize, Serialize};

/// Configuration of the mall generator. The default reproduces the paper's
/// synthetic floorplan statistics exactly (141 partitions / 220 doors per
/// floor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MallConfig {
    /// Number of floors (the paper uses 3, 5, 7 or 9; default 5).
    pub floors: usize,
    /// Floor width in metres.
    pub floor_width: f64,
    /// Floor height in metres.
    pub floor_height: f64,
    /// Corridor width in metres.
    pub corridor_width: f64,
    /// Number of regular hallway segments each corridor arm is decomposed
    /// into (4 arms × segments + 1 junction = hallway partitions per floor).
    pub segments_per_arm: usize,
    /// Number of rooms on each side of each arm (4 arms × 2 sides × rooms).
    pub rooms_per_arm_side: usize,
    /// Depth of the rooms, perpendicular to the corridor.
    pub room_depth: f64,
    /// Length of the staircase partitions at the arm ends.
    pub staircase_length: f64,
    /// Walking length of one stairway between adjacent floors (the paper
    /// uses 20 m).
    pub stairway_length: f64,
    /// How many rooms per arm side receive a second corridor door (tunes the
    /// per-floor door count; 10 of 12 gives the paper's 220 doors).
    pub two_door_rooms_per_arm_side: usize,
    /// Number of additional staircases per floor beyond the four arm-end
    /// ones; each replaces the outermost room of an (arm, side) pair. Used by
    /// the simulated real venue (10 staircases).
    pub extra_staircases: usize,
}

impl Default for MallConfig {
    fn default() -> Self {
        MallConfig {
            floors: 5,
            floor_width: 1368.0,
            floor_height: 1368.0,
            corridor_width: 40.0,
            segments_per_arm: 10,
            rooms_per_arm_side: 12,
            room_depth: 80.0,
            staircase_length: 20.0,
            stairway_length: 20.0,
            two_door_rooms_per_arm_side: 10,
            extra_staircases: 0,
        }
    }
}

impl MallConfig {
    /// Configuration with a different number of floors.
    pub fn with_floors(mut self, floors: usize) -> Self {
        self.floors = floors;
        self
    }

    /// Checks that the configuration describes a buildable floorplan,
    /// returning a usage error instead of letting the generator panic on a
    /// degenerate rectangle deep inside the layout code.
    pub fn validate(&self) -> SpaceResult<()> {
        let fail = |msg: String| Err(indoor_space::SpaceError::InvalidConfig(msg));
        if self.floors == 0 {
            return fail("floors must be at least 1".into());
        }
        if self.segments_per_arm == 0 || self.rooms_per_arm_side == 0 {
            return fail("segments_per_arm and rooms_per_arm_side must be at least 1".into());
        }
        for (name, v) in [
            ("floor_width", self.floor_width),
            ("floor_height", self.floor_height),
            ("corridor_width", self.corridor_width),
            ("room_depth", self.room_depth),
            ("staircase_length", self.staircase_length),
            ("stairway_length", self.stairway_length),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return fail(format!("{name} must be a positive finite length, got {v}"));
            }
        }
        // Every arm must keep a positive length after the central junction
        // and the arm-end staircase are carved out, and the rooms flanking
        // the arms must fit inside the floor.
        let arm_extent = self.floor_width.min(self.floor_height) / 2.0;
        let arm_length = arm_extent - self.corridor_width / 2.0 - self.staircase_length;
        if arm_length <= 1.0 {
            return fail(format!(
                "floor {} m x {} m is too small for corridor_width {} and staircase_length {}",
                self.floor_width, self.floor_height, self.corridor_width, self.staircase_length
            ));
        }
        if self.corridor_width / 2.0 + self.room_depth > arm_extent {
            return fail(format!(
                "room_depth {} does not fit beside the corridor on a {} m x {} m floor",
                self.room_depth, self.floor_width, self.floor_height
            ));
        }
        Ok(())
    }

    /// Expected number of partitions per floor.
    pub fn partitions_per_floor(&self) -> usize {
        let rooms = self.rooms_per_arm_side * 8;
        let hallways = self.segments_per_arm * 4 + 1;
        // Extra staircases replace rooms one for one.
        rooms + hallways + 4
    }

    /// Expected number of doors per floor (excluding the inter-floor stair
    /// doors, which the paper's per-floor counts do not include).
    pub fn doors_per_floor(&self) -> usize {
        let room_slots = self.rooms_per_arm_side * 8;
        let extra_room_doors = (self
            .two_door_rooms_per_arm_side
            .min(self.rooms_per_arm_side))
            * 8;
        // Rooms replaced by extra staircases lose their potential second door.
        let lost_second_doors = self.extra_staircases.min(8).min(
            if self.two_door_rooms_per_arm_side >= self.rooms_per_arm_side {
                self.extra_staircases.min(8)
            } else {
                0
            },
        );
        let hallway_doors = self.segments_per_arm * 4;
        let stair_hall_doors = 4 + self.extra_staircases.min(8);
        room_slots + extra_room_doors - lost_second_doors + hallway_doors + stair_hall_doors
            - self.extra_staircases.min(8)
    }
}

/// The four corridor arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    East,
    West,
    North,
    South,
}

const ARMS: [Arm; 4] = [Arm::East, Arm::West, Arm::North, Arm::South];

/// Local frame of one arm: maps (t, lateral) coordinates — `t` metres outward
/// from the junction edge along the arm, `lateral` metres sideways from the
/// arm centreline — to floor coordinates.
#[derive(Debug, Clone, Copy)]
struct ArmFrame {
    horizontal: bool,
    dir: f64,
    origin: Point,
    length: f64,
}

impl ArmFrame {
    fn new(arm: Arm, config: &MallConfig) -> ArmFrame {
        let cx = config.floor_width / 2.0;
        let cy = config.floor_height / 2.0;
        let half = config.corridor_width / 2.0;
        match arm {
            Arm::East => ArmFrame {
                horizontal: true,
                dir: 1.0,
                origin: Point::new(cx + half, cy),
                length: config.floor_width - (cx + half) - config.staircase_length,
            },
            Arm::West => ArmFrame {
                horizontal: true,
                dir: -1.0,
                origin: Point::new(cx - half, cy),
                length: (cx - half) - config.staircase_length,
            },
            Arm::North => ArmFrame {
                horizontal: false,
                dir: 1.0,
                origin: Point::new(cx, cy + half),
                length: config.floor_height - (cy + half) - config.staircase_length,
            },
            Arm::South => ArmFrame {
                horizontal: false,
                dir: -1.0,
                origin: Point::new(cx, cy - half),
                length: (cy - half) - config.staircase_length,
            },
        }
    }

    fn point(&self, t: f64, lateral: f64) -> Point {
        if self.horizontal {
            Point::new(self.origin.x + self.dir * t, self.origin.y + lateral)
        } else {
            Point::new(self.origin.x + lateral, self.origin.y + self.dir * t)
        }
    }

    fn rect(&self, t0: f64, t1: f64, l0: f64, l1: f64) -> Rect {
        Rect::new(self.point(t0, l0), self.point(t1, l1)).expect("non-degenerate arm rect")
    }
}

/// Output of the generator: the space plus per-kind partition listings.
#[derive(Debug, Clone)]
pub struct MallLayout {
    /// The built indoor space.
    pub space: IndoorSpace,
    /// Room partitions in deterministic generation order (floor, arm, side,
    /// position). These are the partitions that receive store keywords.
    pub rooms: Vec<PartitionId>,
    /// Hallway partitions.
    pub hallways: Vec<PartitionId>,
    /// Staircase partitions.
    pub staircases: Vec<PartitionId>,
}

/// The mall floorplan generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct MallGenerator;

impl MallGenerator {
    /// Generates a mall from the configuration.
    pub fn generate(config: &MallConfig) -> SpaceResult<MallLayout> {
        config.validate()?;
        let mut builder = IndoorSpaceBuilder::new().with_grid_cell(60.0);
        let mut rooms = Vec::new();
        let mut hallways = Vec::new();
        let mut staircases = Vec::new();
        // Per floor, per staircase column: (staircase partition, hallway-side door).
        let mut stair_columns: Vec<Vec<(PartitionId, DoorId)>> = Vec::new();

        for floor_idx in 0..config.floors {
            let floor = FloorId(floor_idx as i32);
            builder.add_floor(
                floor,
                Rect::from_origin_size(Point::ORIGIN, config.floor_width, config.floor_height)?,
            );
            let columns = Self::build_floor(
                &mut builder,
                floor,
                config,
                &mut rooms,
                &mut hallways,
                &mut staircases,
            )?;
            stair_columns.push(columns);
        }

        // Inter-floor stair doors: one per staircase column per adjacent floor
        // pair, with intra-partition distances configured so that one floor
        // change costs exactly `stairway_length`.
        let half_stair = config.stairway_length / 2.0;
        let num_columns = stair_columns.first().map(Vec::len).unwrap_or(0);
        #[allow(clippy::needless_range_loop)] // indexes two parallel floor rows
        for column in 0..num_columns {
            let mut previous_stair_door: Option<DoorId> = None;
            for floor_idx in 0..config.floors.saturating_sub(1) {
                let (lower_part, lower_hall_door) = stair_columns[floor_idx][column];
                let (upper_part, upper_hall_door) = stair_columns[floor_idx + 1][column];
                // Door positioned at the centre of the lower staircase.
                let lower_rect = stair_door_position(&builder, lower_part);
                let stair_door =
                    builder.add_door(lower_rect, FloorId(floor_idx as i32), DoorKind::Stair);
                builder.connect_bidirectional(stair_door, lower_part, upper_part);
                builder.set_intra_distance(lower_part, lower_hall_door, stair_door, half_stair);
                builder.set_intra_distance(upper_part, upper_hall_door, stair_door, half_stair);
                if let Some(prev) = previous_stair_door {
                    builder.set_intra_distance(
                        lower_part,
                        prev,
                        stair_door,
                        config.stairway_length,
                    );
                }
                previous_stair_door = Some(stair_door);
            }
        }

        let space = builder.build()?;
        Ok(MallLayout {
            space,
            rooms,
            hallways,
            staircases,
        })
    }

    /// Builds one floor; returns the staircase columns (partition, hallway
    /// door) in a deterministic order shared by all floors.
    fn build_floor(
        builder: &mut IndoorSpaceBuilder,
        floor: FloorId,
        config: &MallConfig,
        rooms: &mut Vec<PartitionId>,
        hallways: &mut Vec<PartitionId>,
        staircases: &mut Vec<PartitionId>,
    ) -> SpaceResult<Vec<(PartitionId, DoorId)>> {
        let half = config.corridor_width / 2.0;
        let cx = config.floor_width / 2.0;
        let cy = config.floor_height / 2.0;

        // Central junction.
        let junction = builder.add_partition(
            floor,
            PartitionKind::Hallway,
            Rect::new(
                Point::new(cx - half, cy - half),
                Point::new(cx + half, cy + half),
            )?,
            Some("junction".to_string()),
        );
        hallways.push(junction);

        let mut stair_columns: Vec<(PartitionId, DoorId)> = Vec::new();
        // (arm index, side) pairs whose outermost room becomes an extra
        // staircase, in a fixed order.
        let extra_slots: Vec<(usize, f64)> = [
            (0usize, 1.0),
            (1, 1.0),
            (2, 1.0),
            (3, 1.0),
            (0, -1.0),
            (1, -1.0),
            (2, -1.0),
            (3, -1.0),
        ]
        .into_iter()
        .take(config.extra_staircases.min(8))
        .collect();

        for (arm_idx, arm) in ARMS.into_iter().enumerate() {
            let frame = ArmFrame::new(arm, config);
            let segment_len = frame.length / config.segments_per_arm as f64;
            let room_len = frame.length / config.rooms_per_arm_side as f64;

            // Hallway segments.
            let mut segments = Vec::with_capacity(config.segments_per_arm);
            for s in 0..config.segments_per_arm {
                let rect = frame.rect(
                    s as f64 * segment_len,
                    (s + 1) as f64 * segment_len,
                    -half,
                    half,
                );
                let seg = builder.add_partition(
                    floor,
                    PartitionKind::Hallway,
                    rect,
                    Some(format!("hall-{arm:?}-{s}")),
                );
                hallways.push(seg);
                segments.push(seg);
            }
            // Junction ↔ first segment door.
            let d = builder.add_door(frame.point(0.0, 0.0), floor, DoorKind::Normal);
            builder.connect_bidirectional(d, junction, segments[0]);
            // Segment ↔ segment doors.
            for s in 0..config.segments_per_arm - 1 {
                let d = builder.add_door(
                    frame.point((s + 1) as f64 * segment_len, 0.0),
                    floor,
                    DoorKind::Normal,
                );
                builder.connect_bidirectional(d, segments[s], segments[s + 1]);
            }
            // Arm-end staircase.
            let stair_rect = frame.rect(
                frame.length,
                frame.length + config.staircase_length,
                -half,
                half,
            );
            let staircase = builder.add_partition(
                floor,
                PartitionKind::Staircase,
                stair_rect,
                Some(format!("staircase-{arm:?}")),
            );
            staircases.push(staircase);
            let stair_hall_door =
                builder.add_door(frame.point(frame.length, 0.0), floor, DoorKind::Normal);
            builder.connect_bidirectional(
                stair_hall_door,
                segments[config.segments_per_arm - 1],
                staircase,
            );
            stair_columns.push((staircase, stair_hall_door));

            // Rooms on both sides of the arm.
            for side in [1.0f64, -1.0f64] {
                for j in 0..config.rooms_per_arm_side {
                    let t0 = j as f64 * room_len;
                    let t1 = (j + 1) as f64 * room_len;
                    let rect = frame.rect(t0, t1, side * half, side * (half + config.room_depth));
                    let is_extra_staircase = j == config.rooms_per_arm_side - 1
                        && extra_slots.contains(&(arm_idx, side));
                    let kind = if is_extra_staircase {
                        PartitionKind::Staircase
                    } else {
                        PartitionKind::Room
                    };
                    let part = builder.add_partition(
                        floor,
                        kind,
                        rect,
                        Some(format!("{:?}-{arm:?}-{side}-{j}", kind)),
                    );
                    // Door(s) on the corridor-facing wall; the hallway segment
                    // is determined by the door's position along the arm.
                    let door_positions: Vec<f64> = if is_extra_staircase {
                        vec![(t0 + t1) / 2.0]
                    } else if j < config.two_door_rooms_per_arm_side {
                        vec![t0 + 0.3 * room_len, t0 + 0.7 * room_len]
                    } else {
                        vec![(t0 + t1) / 2.0]
                    };
                    let mut first_door = None;
                    for (di, t) in door_positions.iter().enumerate() {
                        let seg_index =
                            ((t / segment_len) as usize).min(config.segments_per_arm - 1);
                        let door =
                            builder.add_door(frame.point(*t, side * half), floor, DoorKind::Normal);
                        builder.connect_bidirectional(door, part, segments[seg_index]);
                        if di == 0 {
                            first_door = Some(door);
                        }
                    }
                    if is_extra_staircase {
                        staircases.push(part);
                        stair_columns.push((part, first_door.expect("staircase has a door")));
                    } else {
                        rooms.push(part);
                    }
                }
            }
        }
        Ok(stair_columns)
    }
}

/// Centre position of a staircase partition recorded in the builder; used to
/// place the inter-floor stair door. The builder does not expose lookups, so
/// the generator recomputes the position from the deterministic layout by
/// reading it back from the partitions it just created.
fn stair_door_position(builder: &IndoorSpaceBuilder, partition: PartitionId) -> Point {
    builder
        .partition_footprint(partition)
        .map(|r| r.center())
        .unwrap_or(Point::ORIGIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::IndoorPoint;

    #[test]
    fn single_floor_matches_published_statistics() {
        let config = MallConfig::default().with_floors(1);
        let layout = MallGenerator::generate(&config).unwrap();
        let stats = layout.space.stats();
        assert_eq!(stats.partitions, 141, "141 partitions per floor (§V-A1)");
        assert_eq!(stats.doors, 220, "220 doors per floor (§V-A1)");
        assert_eq!(layout.rooms.len(), 96, "96 rooms per floor (§V-A1)");
        assert_eq!(
            layout.hallways.len(),
            41,
            "4 hallways decomposed into 41 partitions"
        );
        assert_eq!(layout.staircases.len(), 4, "4 staircases per floor");
        assert_eq!(config.partitions_per_floor(), 141);
        assert_eq!(config.doors_per_floor(), 220);
    }

    #[test]
    fn five_floor_default_matches_paper_counts() {
        let layout = MallGenerator::generate(&MallConfig::default()).unwrap();
        let stats = layout.space.stats();
        assert_eq!(
            stats.partitions, 705,
            "705 partitions in the default 5-floor space"
        );
        // 1100 per-floor doors plus 4 stair columns × 4 inter-floor doors.
        assert_eq!(stats.doors, 1100 + 16);
        assert_eq!(stats.vertical_doors, 16);
        assert_eq!(stats.floors, 5);
        assert_eq!(layout.rooms.len(), 96 * 5);
    }

    #[test]
    fn rooms_are_reachable_from_each_other() {
        let config = MallConfig::default().with_floors(2);
        let layout = MallGenerator::generate(&config).unwrap();
        let space = &layout.space;
        // A room on floor 0 and a room on floor 1 are connected, and the
        // distance is at least the stairway length.
        let a = space.partition(layout.rooms[0]).unwrap();
        let b = space
            .partition(layout.rooms[layout.rooms.len() - 1])
            .unwrap();
        assert_ne!(a.floor, b.floor);
        let pa = IndoorPoint::new(a.center(), a.floor);
        let pb = IndoorPoint::new(b.center(), b.floor);
        let d = space.point_to_point_distance(&pa, &pb);
        assert!(d.is_finite(), "cross-floor route must exist");
        assert!(d >= config.stairway_length);
        // Skeleton lower bound never exceeds the true distance.
        assert!(space.skeleton_distance(&pa, &pb) <= d + 1e-6);
    }

    #[test]
    fn extra_staircases_replace_rooms() {
        let config = MallConfig {
            floors: 1,
            extra_staircases: 6,
            ..Default::default()
        };
        let layout = MallGenerator::generate(&config).unwrap();
        assert_eq!(layout.staircases.len(), 10, "4 corner + 6 extra staircases");
        assert_eq!(layout.rooms.len(), 96 - 6);
    }

    #[test]
    fn floors_scale_partition_and_door_counts_linearly() {
        for floors in [3usize, 7] {
            let layout =
                MallGenerator::generate(&MallConfig::default().with_floors(floors)).unwrap();
            let stats = layout.space.stats();
            assert_eq!(stats.partitions, 141 * floors);
            assert_eq!(stats.doors, 220 * floors + 4 * (floors - 1));
        }
    }

    #[test]
    fn degenerate_configurations_fail_with_usage_errors() {
        use indoor_space::SpaceError;
        let cases = [
            MallConfig {
                floors: 0,
                ..Default::default()
            },
            MallConfig {
                segments_per_arm: 0,
                ..Default::default()
            },
            MallConfig {
                floor_width: 100.0,
                floor_height: 100.0,
                ..Default::default()
            },
            MallConfig {
                room_depth: f64::NAN,
                ..Default::default()
            },
        ];
        for config in cases {
            let err = MallGenerator::generate(&config).unwrap_err();
            assert!(
                matches!(err, SpaceError::InvalidConfig(_)),
                "expected InvalidConfig, got {err:?}"
            );
            assert!(err.to_string().contains("invalid configuration"));
        }
    }

    #[test]
    fn stairway_costs_twenty_metres_per_floor() {
        let layout = MallGenerator::generate(&MallConfig::default().with_floors(3)).unwrap();
        let space = &layout.space;
        // Pick the hallway doors of the same staircase column on floors 0
        // and 1: the shortest path between them is the 20 m stairway.
        let stair0 = layout.staircases[0];
        let stair1 = layout
            .staircases
            .iter()
            .copied()
            .find(|&s| {
                let p = space.partition(s).unwrap();
                p.floor == FloorId(1)
                    && p.footprint
                        .center()
                        .approx_eq(&space.partition(stair0).unwrap().footprint.center())
            })
            .expect("same column staircase on floor 1");
        let d0 = space.p2d_enter(stair0)[0];
        let d1 = space.p2d_enter(stair1)[0];
        let dist = space
            .shortest_paths()
            .door_to_door(d0, d1, &Default::default());
        assert!(
            (dist - 20.0).abs() < 1e-6,
            "one floor change costs 20 m, got {dist}"
        );
    }
}
