//! The simulated "real" venue of §V-B.
//!
//! The paper evaluates on a proprietary dataset collected from a seven-floor,
//! 2700 m × 2000 m shopping mall in Hangzhou: 639 stores, ten staircases with
//! ≈20 m stairways, 533 i-words, 5036 t-words extracted from the mall's
//! website (103 stores carry only an i-word; an i-word has at most 31 and on
//! average 9.4 t-words), and — crucially for the reported behaviour of KoE —
//! stores of the same category are clustered on the same floor(s).
//!
//! This module synthesises a venue with those published characteristics.

use crate::mall::{MallConfig, MallGenerator};
use crate::names::{generate_brand_names, CATEGORIES};
use crate::venue::Venue;
use indoor_keywords::KeywordDirectory;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the simulated real venue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RealMallConfig {
    /// Number of floors.
    pub floors: usize,
    /// Floor width in metres.
    pub floor_width: f64,
    /// Floor height in metres.
    pub floor_height: f64,
    /// Number of stores (rooms that receive a brand).
    pub stores: usize,
    /// Number of distinct brands (i-words).
    pub brands: usize,
    /// Number of staircases per floor.
    pub staircases: usize,
    /// Fraction of brands that carry no t-word at all.
    pub bare_brand_fraction: f64,
    /// Maximum t-words per brand.
    pub max_twords: usize,
    /// Mean t-words per brand that has any.
    pub mean_twords: f64,
    /// Seed of all random choices.
    pub seed: u64,
}

impl Default for RealMallConfig {
    fn default() -> Self {
        RealMallConfig {
            floors: 7,
            floor_width: 2700.0,
            floor_height: 2000.0,
            stores: 639,
            brands: 533,
            staircases: 10,
            bare_brand_fraction: 103.0 / 639.0,
            max_twords: 31,
            mean_twords: 9.4,
            seed: 2020,
        }
    }
}

/// The simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealMallSimulator;

impl RealMallSimulator {
    /// Builds the simulated real venue.
    pub fn generate(config: &RealMallConfig) -> indoor_space::Result<Venue> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mall_config = MallConfig {
            floors: config.floors,
            floor_width: config.floor_width,
            floor_height: config.floor_height,
            rooms_per_arm_side: 13,
            extra_staircases: config.staircases.saturating_sub(4).min(8),
            ..MallConfig::default()
        };
        let layout = MallGenerator::generate(&mall_config)?;

        // Brands, grouped by category; categories are assigned to floors so
        // that same-category stores land on the same floor.
        let brand_names = generate_brand_names(config.brands, &mut rng);
        let mut directory = KeywordDirectory::new();
        let mut brand_iwords = Vec::with_capacity(config.brands);
        for name in &brand_names {
            brand_iwords.push(directory.add_iword(name).expect("distinct brand names"));
        }
        // T-word generation: category words shared within the category plus
        // brand-specific long-tail tokens; a fraction of brands stays bare.
        for (i, name) in brand_names.iter().enumerate() {
            if rng.gen_bool(config.bare_brand_fraction) {
                continue;
            }
            let category = &CATEGORIES[i % CATEGORIES.len()];
            let target = sample_tword_count(config, &mut rng);
            let shared = (target / 2).min(category.words.len());
            let mut added = 0usize;
            for w in category.words.choose_multiple(&mut rng, shared) {
                if directory.add_tword_for(brand_iwords[i], w).is_some() {
                    added += 1;
                }
            }
            let mut j = 0usize;
            while added < target && j < config.max_twords * 2 {
                if directory
                    .add_tword_for(brand_iwords[i], &format!("{name}item{j}"))
                    .is_some()
                {
                    added += 1;
                }
                j += 1;
            }
        }

        // Category → floor clustering: category c goes to floor c mod floors.
        // Stores on a floor draw brands only from that floor's categories.
        let mut brands_by_floor: Vec<Vec<usize>> = vec![Vec::new(); config.floors];
        for i in 0..config.brands {
            let floor = (i % CATEGORIES.len()) % config.floors;
            brands_by_floor[floor].push(i);
        }

        // Distribute the stores over the floors (remainder goes to the first
        // floors) and name the corresponding rooms.
        let per_floor = config.stores / config.floors;
        let remainder = config.stores % config.floors;
        let mut rooms_by_floor: Vec<Vec<indoor_space::PartitionId>> =
            vec![Vec::new(); config.floors];
        for &room in &layout.rooms {
            let floor = layout.space.partition(room).expect("room exists").floor;
            rooms_by_floor[floor.level() as usize].push(room);
        }
        for floor in 0..config.floors {
            let quota = per_floor + usize::from(floor < remainder);
            let pool = &brands_by_floor[floor];
            for (slot, &room) in rooms_by_floor[floor].iter().enumerate() {
                if slot >= quota || pool.is_empty() {
                    break;
                }
                let brand = pool[rng.gen_range(0..pool.len())];
                directory
                    .name_partition(room, brand_iwords[brand])
                    .expect("rooms are named once");
            }
        }

        // Only rooms that actually received a brand count as stores.
        let stores: Vec<_> = layout
            .rooms
            .iter()
            .copied()
            .filter(|&r| directory.partition_iword(r).is_some())
            .collect();
        Ok(Venue {
            space: layout.space,
            directory,
            rooms: stores,
        })
    }
}

/// Samples a per-brand t-word count with the configured mean and maximum
/// (a clamped geometric-like distribution, giving the long tail the paper's
/// statistics suggest).
fn sample_tword_count<R: Rng>(config: &RealMallConfig, rng: &mut R) -> usize {
    let mean = config.mean_twords.max(1.0);
    let mut count = 1usize;
    // Geometric with success probability 1/mean, clamped to [1, max].
    while count < config.max_twords && rng.gen::<f64>() > 1.0 / mean {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn venue() -> Venue {
        RealMallSimulator::generate(&RealMallConfig::default()).unwrap()
    }

    #[test]
    fn store_and_floor_counts_match_the_paper() {
        let v = venue();
        assert_eq!(v.rooms.len(), 639, "639 stores");
        assert_eq!(v.space.floors().len(), 7, "seven floors");
        // Ten staircases per floor.
        let stats = v.space.stats();
        assert_eq!(
            stats.count_of(indoor_space::PartitionKind::Staircase),
            10 * 7
        );
    }

    #[test]
    fn keyword_statistics_are_in_the_published_ballpark() {
        let v = venue();
        let vocab = v.directory.vocab();
        assert_eq!(vocab.num_iwords(), 533, "533 i-words");
        // ≈5036 t-words in the paper; the simulator lands in the same order
        // of magnitude (thousands, not hundreds).
        assert!(vocab.num_twords() > 1500, "got {}", vocab.num_twords());
        // Average t-words per i-word (over i-words that have any) near 9.4.
        let avg = v.directory.mappings().avg_twords_per_iword();
        assert!((5.0..=15.0).contains(&avg), "avg {avg}");
        // Some brands carry no t-word at all (the paper reports 103 such
        // stores).
        let bare = vocab
            .iwords()
            .filter(|&iw| v.directory.twords_of(iw).is_empty())
            .count();
        assert!(bare > 30, "bare brands: {bare}");
        // Maximum is capped at 31.
        let max = vocab
            .iwords()
            .map(|iw| v.directory.twords_of(iw).len())
            .max()
            .unwrap();
        assert!(max <= 31);
    }

    #[test]
    fn same_category_stores_cluster_on_the_same_floor() {
        let v = venue();
        // Every i-word's stores all lie on one floor (brands are drawn from a
        // per-floor pool).
        let mut floors_per_brand: BTreeMap<_, BTreeSet<_>> = BTreeMap::new();
        for &room in &v.rooms {
            let iw = v.directory.partition_iword(room).unwrap();
            let floor = v.space.partition(room).unwrap().floor;
            floors_per_brand.entry(iw).or_default().insert(floor);
        }
        assert!(floors_per_brand.values().all(|floors| floors.len() == 1));
        // And several brands serve more than one store (639 stores for 533
        // brands).
        let multi = v
            .rooms
            .iter()
            .map(|&r| v.directory.partition_iword(r).unwrap())
            .fold(BTreeMap::<_, usize>::new(), |mut acc, iw| {
                *acc.entry(iw).or_default() += 1;
                acc
            })
            .values()
            .filter(|&&c| c > 1)
            .count();
        assert!(multi > 10);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = venue();
        let b = venue();
        assert_eq!(a.rooms, b.rooms);
        for &room in &a.rooms {
            assert_eq!(
                a.directory.partition_iword(room),
                b.directory.partition_iword(room)
            );
        }
    }
}
