//! The experiment parameter space of Table IV, with the paper's default
//! values (shown bold there) and the sweep ranges of §V.

use serde::{Deserialize, Serialize};

/// Default parameter values used by the synthetic experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentDefaults {
    /// Number of routes to return, `k`.
    pub k: usize,
    /// Number of query keywords, `|QW|`.
    pub qw_len: usize,
    /// Fraction of i-words in `QW` (`β`).
    pub beta: f64,
    /// Start-to-terminal indoor distance `δs2t` in metres.
    pub s2t: f64,
    /// Distance constraint coefficient `η` (`∆ = η · δs2t`).
    pub eta: f64,
    /// Ranking trade-off `α`.
    pub alpha: f64,
    /// Candidate similarity threshold `τ`.
    pub tau: f64,
    /// Number of floors of the synthetic venue.
    pub floors: usize,
    /// Number of query instances generated per parameter setting.
    pub instances_per_setting: usize,
    /// Number of runs per query instance.
    pub runs_per_instance: usize,
}

impl Default for ExperimentDefaults {
    fn default() -> Self {
        ExperimentDefaults {
            k: 7,
            qw_len: 4,
            beta: 0.6,
            s2t: 1500.0,
            eta: 1.6,
            alpha: 0.5,
            tau: 0.1,
            floors: 5,
            instances_per_setting: 10,
            runs_per_instance: 5,
        }
    }
}

impl ExperimentDefaults {
    /// The defaults used for the real-data experiments of §V-B: identical to
    /// the synthetic ones except `α` is raised to 0.7 "to suit the needs of
    /// keyword-awareness in shopping".
    pub fn real_data() -> Self {
        ExperimentDefaults {
            alpha: 0.7,
            floors: 7,
            ..Default::default()
        }
    }

    /// The distance constraint `∆ = η · δs2t`.
    pub fn delta(&self) -> f64 {
        self.eta * self.s2t
    }
}

/// The sweep ranges of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpace {
    /// `k` values (default 7).
    pub k: Vec<usize>,
    /// `|QW|` values (default 4).
    pub qw_len: Vec<usize>,
    /// `β` values as fractions (default 60 %).
    pub beta: Vec<f64>,
    /// `δs2t` values in metres (default 1500).
    pub s2t: Vec<f64>,
    /// `η` values (default 1.6).
    pub eta: Vec<f64>,
    /// `α` values (default 0.5).
    pub alpha: Vec<f64>,
    /// `τ` values (default 0.1).
    pub tau: Vec<f64>,
    /// Floor counts (default 5).
    pub floors: Vec<usize>,
}

impl Default for ParameterSpace {
    fn default() -> Self {
        ParameterSpace {
            k: vec![1, 3, 5, 7, 9, 11],
            qw_len: vec![1, 2, 3, 4, 5],
            beta: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            s2t: vec![1100.0, 1300.0, 1500.0, 1700.0, 1900.0, 2100.0],
            eta: vec![1.4, 1.6, 1.8, 2.0],
            alpha: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            tau: vec![0.05, 0.1, 0.2, 0.4],
            floors: vec![3, 5, 7, 9],
        }
    }
}

impl ParameterSpace {
    /// The defaults corresponding to the bold entries of Table IV.
    pub fn defaults(&self) -> ExperimentDefaults {
        ExperimentDefaults::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv_bold_entries() {
        let d = ExperimentDefaults::default();
        assert_eq!(d.k, 7);
        assert_eq!(d.qw_len, 4);
        assert!((d.beta - 0.6).abs() < 1e-12);
        assert!((d.s2t - 1500.0).abs() < 1e-12);
        assert!((d.eta - 1.6).abs() < 1e-12);
        assert!((d.alpha - 0.5).abs() < 1e-12);
        assert!((d.tau - 0.1).abs() < 1e-12);
        assert_eq!(d.floors, 5);
        assert_eq!(d.instances_per_setting, 10);
        assert_eq!(d.runs_per_instance, 5);
        assert!((d.delta() - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn real_data_defaults_adjust_alpha_and_floors() {
        let d = ExperimentDefaults::real_data();
        assert!((d.alpha - 0.7).abs() < 1e-12);
        assert_eq!(d.floors, 7);
        assert_eq!(d.k, 7);
    }

    #[test]
    fn sweep_ranges_match_table_iv() {
        let p = ParameterSpace::default();
        assert_eq!(p.k, vec![1, 3, 5, 7, 9, 11]);
        assert_eq!(p.qw_len, vec![1, 2, 3, 4, 5]);
        assert_eq!(p.beta.len(), 5);
        assert_eq!(p.s2t.len(), 6);
        assert_eq!(p.eta, vec![1.4, 1.6, 1.8, 2.0]);
        assert_eq!(p.alpha.len(), 5);
        assert_eq!(p.tau, vec![0.05, 0.1, 0.2, 0.4]);
        assert_eq!(p.floors, vec![3, 5, 7, 9]);
        assert_eq!(p.defaults(), ExperimentDefaults::default());
    }
}
