//! # indoor-data
//!
//! Synthetic and simulated-real venues, keyword corpora and IKRQ query
//! workloads, reproducing the experimental setup of §V of the paper.
//!
//! * [`mall`] — a parametric multi-floor shopping-mall floorplan generator
//!   matching the published synthetic-space statistics (1368 m × 1368 m per
//!   floor, 96 rooms, 4 hallways decomposed into 41 regular partitions,
//!   4 staircases, 141 partitions / 220 doors per floor, 20 m stairways,
//!   3–9 floors);
//! * [`names`] / [`corpus_gen`] — a synthetic brand + shop-description corpus
//!   generator standing in for the paper's crawled Hong Kong mall data
//!   (≈1225 brands, ≈2074 documents);
//! * [`keywords_gen`] — runs the RAKE/TF-IDF extraction pipeline over the
//!   corpus and assigns i-words (and their t-words) to rooms;
//! * [`real_mall`] — the simulated "real" venue standing in for the paper's
//!   proprietary Hangzhou mall dataset (7 floors, 2700 m × 2000 m, 639
//!   stores, 533 i-words, ≈5036 t-words, per-floor category clustering);
//! * [`mega`] — the mega-venue generator: comb-topology venues of 10³–10⁵
//!   partitions with directly synthesized Zipf-skewed keywords, for the
//!   venue-scale indexing experiments;
//! * [`queries`] — the query-instance generator of §V-A1 (δs2t targeting via
//!   lazily materialized door-distance rows, ∆ = η · δs2t, β-controlled
//!   i-word/t-word mix);
//! * [`params`] — the parameter space of Table IV with the paper's defaults;
//! * [`venue`] — the [`Venue`] bundle (space + keywords) plus
//!   the small hand-crafted venue mirroring the paper's Fig. 1 running
//!   example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus_gen;
pub mod keywords_gen;
pub mod mall;
pub mod mega;
pub mod names;
pub mod params;
pub mod queries;
pub mod real_mall;
pub mod venue;

pub use mall::{MallConfig, MallGenerator};
pub use mega::{mega_venue, MegaVenueConfig};
pub use params::{ExperimentDefaults, ParameterSpace};
pub use queries::{QueryGenerator, QueryInstance, WorkloadConfig};
pub use real_mall::RealMallSimulator;
pub use venue::{paper_example_venue, PaperExampleVenue, SyntheticVenueConfig, Venue};

/// Commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::{
        mega_venue, paper_example_venue, ExperimentDefaults, MallConfig, MallGenerator,
        MegaVenueConfig, ParameterSpace, QueryGenerator, QueryInstance, RealMallSimulator,
        SyntheticVenueConfig, Venue, WorkloadConfig,
    };
}
