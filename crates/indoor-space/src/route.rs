//! Routes: sequences of doors between two items, with the regularity
//! principle of §II-B and the distance computation of Definition 1.

use crate::error::SpaceError;
use crate::ids::{DoorId, PartitionId};
use crate::point::IndoorPoint;
use crate::space::IndoorSpace;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A route item: a point or a door (`x` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RouteItem {
    /// An indoor point (start or terminal point of a query).
    Point(IndoorPoint),
    /// A door.
    Door(DoorId),
}

/// Alias kept for readability at route ends.
pub type RouteEnd = RouteItem;

impl RouteItem {
    /// The door id when the item is a door.
    pub fn as_door(&self) -> Option<DoorId> {
        match self {
            RouteItem::Door(d) => Some(*d),
            RouteItem::Point(_) => None,
        }
    }

    /// The point when the item is a point.
    pub fn as_point(&self) -> Option<IndoorPoint> {
        match self {
            RouteItem::Point(p) => Some(*p),
            RouteItem::Door(_) => None,
        }
    }
}

/// A route `R = (xs, d_i, ..., d_n, xt)`.
///
/// The route stores, alongside the door sequence, the *connecting partition*
/// of every leg: `partitions[i]` is the partition traversed between item `i`
/// and item `i + 1`. This mirrors how the paper annotates routes (Table II)
/// and makes the route distance, key-partition sequence and regularity checks
/// purely local computations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    start: RouteItem,
    doors: Vec<DoorId>,
    terminal: Option<RouteItem>,
    partitions: Vec<PartitionId>,
}

impl Route {
    /// A new partial route consisting of only the start point (the paper's
    /// initial route `R0 = (ps)` in Algorithm 1 line 7).
    pub fn from_point(start: IndoorPoint) -> Self {
        Route {
            start: RouteItem::Point(start),
            doors: Vec::new(),
            terminal: None,
            partitions: Vec::new(),
        }
    }

    /// A new partial route starting at a door (used for route fragments).
    pub fn from_door(start: DoorId) -> Self {
        Route {
            start: RouteItem::Door(start),
            doors: Vec::new(),
            terminal: None,
            partitions: Vec::new(),
        }
    }

    /// The start item `xs`.
    pub fn start(&self) -> &RouteItem {
        &self.start
    }

    /// The terminal item `xt` when the route is complete.
    pub fn terminal(&self) -> Option<&RouteItem> {
        self.terminal.as_ref()
    }

    /// Whether the route has been completed with a terminal item.
    pub fn is_complete(&self) -> bool {
        self.terminal.is_some()
    }

    /// The door sequence of the route.
    pub fn doors(&self) -> &[DoorId] {
        &self.doors
    }

    /// The connecting partitions, one per leg.
    pub fn legs(&self) -> &[PartitionId] {
        &self.partitions
    }

    /// Number of items (`xs`, doors, `xt`).
    pub fn num_items(&self) -> usize {
        1 + self.doors.len() + usize::from(self.terminal.is_some())
    }

    /// The last door of the route (`R.tail` in the paper), if any.
    pub fn tail_door(&self) -> Option<DoorId> {
        self.doors.last().copied()
    }

    /// The last item of the route: terminal if complete, otherwise the last
    /// door, otherwise the start item.
    pub fn last_item(&self) -> RouteItem {
        if let Some(t) = self.terminal {
            t
        } else if let Some(d) = self.tail_door() {
            RouteItem::Door(d)
        } else {
            self.start
        }
    }

    /// Whether the route already visits the door.
    pub fn contains_door(&self, d: DoorId) -> bool {
        self.doors.contains(&d)
    }

    /// The set of doors used by the route; the search algorithms pass this as
    /// the exclusion set of shortest-path queries to enforce global
    /// regularity when connecting to the terminal point.
    pub fn door_set(&self) -> HashSet<DoorId> {
        self.doors.iter().copied().collect()
    }

    /// Regularity check for appending a door (Principle of Regularity,
    /// §II-B): a door may re-appear only immediately after itself (a one-hop
    /// loop), never with other doors in between, and never more than twice.
    pub fn can_append_door(&self, d: DoorId) -> bool {
        if self.terminal.is_some() {
            return false;
        }
        // A route starting at a door counts that door as an occurrence too:
        // (d13, d14, d14, d13) from the paper's regularity example is
        // irregular because doors lie between the two occurrences of d13.
        if self.start.as_door() == Some(d) && !self.doors.is_empty() && self.tail_door() != Some(d)
        {
            return false;
        }
        match self.doors.iter().rposition(|&x| x == d) {
            None => true,
            Some(pos) => {
                // Only allowed if d is the current tail and this is its first
                // repetition (no d,d,d).
                pos == self.doors.len() - 1
                    && !(self.doors.len() >= 2 && self.doors[self.doors.len() - 2] == d)
            }
        }
    }

    /// Appends a door reached by traversing `via`. Fails when the route is
    /// already complete or the append violates the regularity principle.
    pub fn append_door(&mut self, d: DoorId, via: PartitionId) -> Result<()> {
        if self.terminal.is_some() {
            return Err(SpaceError::MalformedRoute(
                "cannot append to a complete route".into(),
            ));
        }
        if !self.can_append_door(d) {
            return Err(SpaceError::IrregularRoute(format!(
                "door {d} would re-appear non-consecutively"
            )));
        }
        self.doors.push(d);
        self.partitions.push(via);
        Ok(())
    }

    /// Extends the route with a door path produced by a shortest-path query.
    /// `path_doors[0]` must equal the current tail door (it is not duplicated)
    /// unless the route has no doors yet, in which case the whole path is
    /// appended. `path_partitions[i]` connects `path_doors[i]` to
    /// `path_doors[i + 1]`.
    pub fn extend_with_door_path(
        &mut self,
        path_doors: &[DoorId],
        path_partitions: &[PartitionId],
    ) -> Result<()> {
        if path_doors.is_empty() {
            return Ok(());
        }
        let (rest_doors, rest_parts): (&[DoorId], &[PartitionId]) = match self.tail_door() {
            Some(tail) => {
                if path_doors[0] != tail {
                    return Err(SpaceError::MalformedRoute(format!(
                        "path starts at {} but route tail is {}",
                        path_doors[0], tail
                    )));
                }
                if path_doors.len() != path_partitions.len() + 1 {
                    return Err(SpaceError::MalformedRoute(
                        "path partition count must be door count - 1".into(),
                    ));
                }
                (&path_doors[1..], path_partitions)
            }
            None => {
                if path_doors.len() != path_partitions.len() {
                    return Err(SpaceError::MalformedRoute(
                        "initial path needs one partition per door".into(),
                    ));
                }
                (path_doors, path_partitions)
            }
        };
        for (d, v) in rest_doors.iter().zip(rest_parts.iter()) {
            self.append_door(*d, *v)?;
        }
        Ok(())
    }

    /// Completes the route with the terminal point reached through `via`
    /// (the terminal point's host partition).
    pub fn complete_with_point(&mut self, pt: IndoorPoint, via: PartitionId) -> Result<()> {
        if self.terminal.is_some() {
            return Err(SpaceError::MalformedRoute("route already complete".into()));
        }
        self.terminal = Some(RouteItem::Point(pt));
        self.partitions.push(via);
        Ok(())
    }

    /// Full regularity check (Principle of Regularity, §II-B): no door occurs
    /// with other doors between two of its occurrences, and no door occurs
    /// more than twice.
    pub fn is_regular(&self) -> bool {
        for (i, &d) in self.doors.iter().enumerate() {
            let later: Vec<usize> = self
                .doors
                .iter()
                .enumerate()
                .skip(i + 1)
                .filter_map(|(j, &e)| (e == d).then_some(j))
                .collect();
            if later.len() > 1 {
                return false;
            }
            if later.len() == 1 && later[0] != i + 1 {
                return false;
            }
        }
        if let Some(d) = self.start.as_door() {
            if let Some(pos) = self.doors.iter().position(|&x| x == d) {
                if pos != 0 || self.doors.iter().filter(|&&x| x == d).count() > 1 {
                    return false;
                }
            }
        }
        true
    }

    /// The raw sequence of partitions traversed by the route's legs.
    pub fn partitions_traversed(&self) -> &[PartitionId] {
        &self.partitions
    }

    /// The sequence of *key partitions* `KP(R)` (Definition 2 context): the
    /// partitions traversed that satisfy `is_key`, deduplicated so each key
    /// partition appears once, at the position of its **last** traversal.
    /// This matches the paper's Table II where route `R2` passes `v5` both in
    /// the middle and at the end yet `KP(R2) = ⟨v1, v2, v3, v5⟩`.
    pub fn key_partition_sequence(
        &self,
        mut is_key: impl FnMut(PartitionId) -> bool,
    ) -> Vec<PartitionId> {
        let keys: Vec<PartitionId> = self
            .partitions
            .iter()
            .copied()
            .filter(|&v| is_key(v))
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for (i, v) in keys.iter().enumerate() {
            if !keys[i + 1..].contains(v) {
                out.push(*v);
            }
        }
        out
    }

    /// Route distance `δ(R)` per Definition 1, evaluated against the space.
    /// Returns [`crate::UNREACHABLE`] if any leg is impossible, which
    /// indicates a malformed route.
    pub fn distance(&self, space: &IndoorSpace) -> f64 {
        let mut total = 0.0;
        let mut prev = self.start;
        for (leg, &door) in self.doors.iter().enumerate() {
            let via = self.partitions[leg];
            total += match prev {
                RouteItem::Point(p) => space.pt2d_distance(&p, door),
                RouteItem::Door(d) => space.intra_door_distance(via, d, door),
            };
            prev = RouteItem::Door(door);
        }
        if let Some(t) = self.terminal {
            let via = *self.partitions.last().expect("complete route has legs");
            total += match (prev, t) {
                (RouteItem::Door(d), RouteItem::Point(p)) => space.d2pt_distance(d, &p),
                (RouteItem::Point(p), RouteItem::Point(q)) => {
                    // Degenerate route with no doors: both points must share the
                    // host partition.
                    let _ = via;
                    p.position.distance(&q.position)
                }
                (RouteItem::Door(d), RouteItem::Door(e)) => space.intra_door_distance(via, d, e),
                (RouteItem::Point(p), RouteItem::Door(e)) => space.pt2d_distance(&p, e),
            };
        }
        total
    }

    /// Estimated heap size in bytes, for the engine's memory accounting.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.doors.capacity() * std::mem::size_of::<DoorId>()
            + self.partitions.capacity() * std::mem::size_of::<PartitionId>()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        match self.start {
            RouteItem::Point(p) => write!(f, "{p}")?,
            RouteItem::Door(d) => write!(f, "{d}")?,
        }
        for (i, d) in self.doors.iter().enumerate() {
            write!(f, " -[{}]-> {}", self.partitions[i], d)?;
        }
        if let Some(t) = &self.terminal {
            match t {
                RouteItem::Point(p) => write!(
                    f,
                    " -[{}]-> {}",
                    self.partitions.last().expect("complete route has legs"),
                    p
                )?,
                RouteItem::Door(d) => write!(
                    f,
                    " -[{}]-> {}",
                    self.partitions.last().expect("complete route has legs"),
                    d
                )?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::door::DoorKind;
    use crate::ids::FloorId;
    use crate::partition::PartitionKind;
    use crate::space::IndoorSpaceBuilder;
    use indoor_geom::{approx_eq, Point, Rect};

    /// v0 -d0- v1 -d1- v2, rooms 10x10 in a row, doors at y = 5.
    fn corridor3() -> IndoorSpace {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        let rooms: Vec<_> = (0..3)
            .map(|i| {
                b.add_partition(
                    f,
                    PartitionKind::Room,
                    Rect::from_origin_size(Point::new(i as f64 * 10.0, 0.0), 10.0, 10.0).unwrap(),
                    None,
                )
            })
            .collect();
        for i in 0..2 {
            let d = b.add_door(Point::new((i + 1) as f64 * 10.0, 5.0), f, DoorKind::Normal);
            b.connect_bidirectional(d, rooms[i], rooms[i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn build_and_measure_a_complete_route() {
        let s = corridor3();
        let ps = IndoorPoint::from_xy(2.0, 5.0, FloorId(0));
        let pt = IndoorPoint::from_xy(28.0, 5.0, FloorId(0));
        let mut r = Route::from_point(ps);
        r.append_door(DoorId(0), PartitionId(0)).unwrap();
        r.append_door(DoorId(1), PartitionId(1)).unwrap();
        r.complete_with_point(pt, PartitionId(2)).unwrap();
        assert!(r.is_complete());
        assert_eq!(r.num_items(), 4);
        assert_eq!(r.tail_door(), Some(DoorId(1)));
        // 8 + 10 + 8
        assert!(approx_eq(r.distance(&s), 26.0));
        assert!(r.is_regular());
        assert!(r.to_string().contains("d0"));
    }

    #[test]
    fn example_1_distances() {
        // Mirrors Example 1 of the paper with synthetic numbers: partial route
        // distance is the prefix sum of the complete route distance.
        let s = corridor3();
        let ps = IndoorPoint::from_xy(2.0, 5.0, FloorId(0));
        let mut partial = Route::from_point(ps);
        partial.append_door(DoorId(0), PartitionId(0)).unwrap();
        partial.append_door(DoorId(1), PartitionId(1)).unwrap();
        let mut complete = partial.clone();
        complete
            .complete_with_point(IndoorPoint::from_xy(28.0, 5.0, FloorId(0)), PartitionId(2))
            .unwrap();
        assert!(approx_eq(partial.distance(&s), 18.0));
        assert!(approx_eq(complete.distance(&s), 26.0));
    }

    #[test]
    fn regularity_forbids_separated_repeats() {
        let mut r = Route::from_point(IndoorPoint::from_xy(0.0, 0.0, FloorId(0)));
        r.append_door(DoorId(1), PartitionId(0)).unwrap();
        r.append_door(DoorId(2), PartitionId(1)).unwrap();
        // d1 appeared before and is not the tail: (d1, d2, d1) is irregular.
        assert!(!r.can_append_door(DoorId(1)));
        assert!(r.append_door(DoorId(1), PartitionId(0)).is_err());
        // Immediate repeat of the tail is fine (one-hop loop).
        assert!(r.can_append_door(DoorId(2)));
        r.append_door(DoorId(2), PartitionId(2)).unwrap();
        // But a third consecutive occurrence is not.
        assert!(!r.can_append_door(DoorId(2)));
        assert!(r.is_regular());
    }

    #[test]
    fn full_regularity_check_detects_violations() {
        let mut r = Route::from_door(DoorId(13));
        r.append_door(DoorId(14), PartitionId(7)).unwrap();
        r.append_door(DoorId(14), PartitionId(8)).unwrap();
        // Manually constructing (d13, d14, d14, d13) is rejected by the
        // appending API, mirroring the paper's example of an irregular route.
        assert!(!r.can_append_door(DoorId(13)));
    }

    #[test]
    fn key_partition_sequence_matches_paper_table2_semantics() {
        // Route legs traverse: v1, v2, v5, v3, v5 (like R2 in Table II).
        let mut r = Route::from_point(IndoorPoint::from_xy(0.0, 0.0, FloorId(0)));
        let legs = [1u32, 2, 5, 3, 5];
        for (i, v) in legs.iter().enumerate() {
            r.append_door(DoorId(i as u32), PartitionId(*v)).unwrap();
        }
        let keys = [1u32, 2, 3, 5];
        let kp = r.key_partition_sequence(|v| keys.contains(&v.0));
        assert_eq!(
            kp,
            vec![
                PartitionId(1),
                PartitionId(2),
                PartitionId(3),
                PartitionId(5)
            ]
        );
        // Non-key partitions never show up.
        let kp = r.key_partition_sequence(|v| v.0 == 5);
        assert_eq!(kp, vec![PartitionId(5)]);
        assert!(r.key_partition_sequence(|_| false).is_empty());
    }

    #[test]
    fn extend_with_door_path_requires_matching_tail() {
        let mut r = Route::from_point(IndoorPoint::from_xy(2.0, 5.0, FloorId(0)));
        r.append_door(DoorId(0), PartitionId(0)).unwrap();
        // Path starting somewhere else is rejected.
        let err = r.extend_with_door_path(&[DoorId(5), DoorId(6)], &[PartitionId(1)]);
        assert!(err.is_err());
        // Path starting at the tail extends the route without duplicating it.
        r.extend_with_door_path(&[DoorId(0), DoorId(1)], &[PartitionId(1)])
            .unwrap();
        assert_eq!(r.doors(), &[DoorId(0), DoorId(1)]);
        assert_eq!(r.legs(), &[PartitionId(0), PartitionId(1)]);
    }

    #[test]
    fn extend_with_door_path_on_fresh_route() {
        let mut r = Route::from_point(IndoorPoint::from_xy(2.0, 5.0, FloorId(0)));
        r.extend_with_door_path(&[DoorId(0), DoorId(1)], &[PartitionId(0), PartitionId(1)])
            .unwrap();
        assert_eq!(r.doors().len(), 2);
        // Mismatched lengths rejected.
        let mut r = Route::from_point(IndoorPoint::from_xy(2.0, 5.0, FloorId(0)));
        assert!(r
            .extend_with_door_path(&[DoorId(0), DoorId(1)], &[PartitionId(0)])
            .is_err());
        // Empty path is a no-op.
        assert!(r.extend_with_door_path(&[], &[]).is_ok());
        assert!(r.doors().is_empty());
    }

    #[test]
    fn complete_route_rejects_further_modification() {
        let mut r = Route::from_point(IndoorPoint::from_xy(2.0, 5.0, FloorId(0)));
        r.append_door(DoorId(0), PartitionId(0)).unwrap();
        r.complete_with_point(IndoorPoint::from_xy(15.0, 5.0, FloorId(0)), PartitionId(1))
            .unwrap();
        assert!(r.append_door(DoorId(1), PartitionId(1)).is_err());
        assert!(r
            .complete_with_point(IndoorPoint::from_xy(1.0, 1.0, FloorId(0)), PartitionId(0))
            .is_err());
        assert!(!r.can_append_door(DoorId(1)));
    }

    #[test]
    fn item_accessors() {
        let ps = IndoorPoint::from_xy(2.0, 5.0, FloorId(0));
        let mut r = Route::from_point(ps);
        assert_eq!(r.last_item().as_point(), Some(ps));
        assert_eq!(r.start().as_point(), Some(ps));
        assert!(r.terminal().is_none());
        r.append_door(DoorId(3), PartitionId(0)).unwrap();
        assert_eq!(r.last_item().as_door(), Some(DoorId(3)));
        assert!(r.contains_door(DoorId(3)));
        assert!(!r.contains_door(DoorId(4)));
        assert_eq!(r.door_set().len(), 1);
        assert!(r.estimated_bytes() > 0);
        let frag = Route::from_door(DoorId(9));
        assert_eq!(frag.last_item().as_door(), Some(DoorId(9)));
    }

    #[test]
    fn degenerate_point_to_point_route_distance() {
        let s = corridor3();
        let ps = IndoorPoint::from_xy(2.0, 5.0, FloorId(0));
        let pt = IndoorPoint::from_xy(6.0, 2.0, FloorId(0));
        let mut r = Route::from_point(ps);
        // Same-partition route with no doors: distance is planar Euclidean.
        r.complete_with_point(pt, PartitionId(0)).unwrap();
        assert!(approx_eq(r.distance(&s), 5.0));
    }
}
