//! Compressed sparse row (CSR) adjacency storage.
//!
//! The topology mappings (`D2PA`, `D2P@`, `P2DA`, `P2D@`) and the door-graph
//! adjacency used to be `Vec<Vec<_>>` — one heap allocation per door and per
//! partition, which dominates cold-start time at venue scale (10⁵ partitions
//! ⇒ ~4×10⁵ tiny allocations) and scatters the hot Dijkstra/expansion loops
//! across the heap. [`Csr`] packs all adjacency lists of one mapping into two
//! contiguous arrays: a flat `data` array holding every list back to back,
//! and an `offsets` array of `n + 1` positions; the list of node `i` is
//! `data[offsets[i]..offsets[i + 1]]`. Two allocations total, cache-linear
//! iteration, identical slices to the old layout.

/// A compact adjacency map from dense `u32`-indexed nodes to lists of `T`.
#[derive(Debug, Clone, Default)]
pub struct Csr<T> {
    /// `n + 1` positions into `data`; list `i` is `data[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// All lists, concatenated in node order.
    data: Vec<T>,
}

impl<T: Copy + Ord> Csr<T> {
    /// Builds a CSR map over `n` nodes from unordered `(node, value)` pairs.
    /// Pairs are sorted and deduplicated, so every list comes out sorted —
    /// the same order the previous per-node `BTreeSet` assembly produced.
    pub fn from_pairs(n: usize, mut pairs: Vec<(u32, T)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u32; n + 1];
        for &(node, _) in &pairs {
            offsets[node as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let data = pairs.into_iter().map(|(_, v)| v).collect();
        Csr { offsets, data }
    }
}

impl<T> Csr<T> {
    /// Builds a CSR map directly from already-grouped rows (sorted-by-node
    /// concatenation); used where the caller produces rows in node order.
    pub fn from_rows<I: IntoIterator<Item = Vec<T>>>(rows: I) -> Self {
        let mut offsets = vec![0u32];
        let mut data = Vec::new();
        for row in rows {
            data.extend(row);
            offsets.push(data.len() as u32);
        }
        Csr { offsets, data }
    }

    /// Adopts an already-flat CSR map (e.g. decoded from a columnar venue
    /// file) after validating its shape: `n + 1` offsets, starting at zero,
    /// monotone, and ending exactly at `data.len()`. Value ranges are the
    /// caller's responsibility — `T` is opaque here. Returns a human-readable
    /// reason when the shape is inconsistent so persistence layers can degrade
    /// gracefully instead of panicking.
    pub fn from_flat(
        n: usize,
        offsets: Vec<u32>,
        data: Vec<T>,
    ) -> std::result::Result<Self, String> {
        if offsets.len() != n + 1 {
            return Err(format!(
                "csr offset table has {} entries for {} nodes",
                offsets.len(),
                n
            ));
        }
        if offsets[0] != 0 {
            return Err(format!("csr offsets start at {} instead of 0", offsets[0]));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("csr offsets are not monotone".to_string());
        }
        if offsets[n] as usize != data.len() {
            return Err(format!(
                "csr offsets end at {} but {} values are stored",
                offsets[n],
                data.len()
            ));
        }
        Ok(Csr { offsets, data })
    }

    /// The `n + 1` offset table, exposed so persistence layers can write the
    /// map as two flat columns.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// All stored values in node order (the concatenation of every list).
    pub fn values(&self) -> &[T] {
        &self.data
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored values across all lists.
    pub fn num_values(&self) -> usize {
        self.data.len()
    }

    /// The list of a node; empty for out-of-range nodes.
    #[inline]
    pub fn row(&self, node: usize) -> &[T] {
        match (self.offsets.get(node), self.offsets.get(node + 1)) {
            (Some(&a), Some(&b)) => &self.data[a as usize..b as usize],
            _ => &[],
        }
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.data.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let csr = Csr::from_pairs(4, vec![(2, 7u32), (0, 3), (2, 1), (2, 7), (0, 3)]);
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.row(0), &[3]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[1, 7]);
        assert_eq!(csr.row(3), &[] as &[u32]);
        assert_eq!(csr.row(99), &[] as &[u32]);
        assert_eq!(csr.num_values(), 3);
        assert!(csr.estimated_bytes() > 0);
    }

    #[test]
    fn from_rows_preserves_row_contents() {
        let csr = Csr::from_rows(vec![vec![1u8, 2], vec![], vec![9]]);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[u8]);
        assert_eq!(csr.row(2), &[9]);
    }

    #[test]
    fn empty_csr() {
        let csr: Csr<u32> = Csr::from_pairs(0, Vec::new());
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.row(0), &[] as &[u32]);
    }

    #[test]
    fn from_flat_round_trips_and_validates() {
        let csr = Csr::from_pairs(3, vec![(0, 5u32), (2, 1), (2, 9)]);
        let back = Csr::from_flat(3, csr.offsets().to_vec(), csr.values().to_vec()).unwrap();
        assert_eq!(back.row(0), csr.row(0));
        assert_eq!(back.row(2), csr.row(2));

        assert!(Csr::from_flat(3, vec![0, 1, 3], vec![5u32, 1, 9]).is_err());
        assert!(Csr::from_flat(3, vec![1, 1, 3, 3], vec![5u32, 1, 9]).is_err());
        assert!(Csr::from_flat(3, vec![0, 2, 1, 3], vec![5u32, 1, 9]).is_err());
        assert!(Csr::from_flat(3, vec![0, 1, 3, 4], vec![5u32, 1, 9]).is_err());
    }
}
