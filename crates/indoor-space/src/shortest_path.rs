//! Dijkstra shortest paths over the door graph.
//!
//! The IKRQ search needs several flavours of shortest-path computation:
//!
//! * plain door-to-door shortest distances (all-pairs matrix, query
//!   generation, KoE* precomputation),
//! * shortest *regular* routes that avoid a set of already-visited doors
//!   (the global regularity checks in Algorithm 5 line 12 and Algorithm 6
//!   line 13),
//! * shortest door-to-point connections (the final hop to the terminal
//!   point `pt`).
//!
//! All of them are built on a single Dijkstra implementation with an
//! exclusion set.

use crate::door_graph::DoorGraphEdge;
use crate::ids::{DoorId, PartitionId};
use crate::point::IndoorPoint;
use crate::space::IndoorSpace;
use crate::UNREACHABLE;
use indoor_geom::OrderedF64;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    source: DoorId,
    dist: Vec<f64>,
    /// Predecessor edge for each settled door: `(previous door, partition)`.
    prev: Vec<Option<(DoorId, PartitionId)>>,
}

impl DijkstraResult {
    /// Source door of the run.
    pub fn source(&self) -> DoorId {
        self.source
    }

    /// Shortest distance from the source to `d` ([`UNREACHABLE`] when
    /// unreachable or excluded).
    pub fn distance(&self, d: DoorId) -> f64 {
        self.dist.get(d.index()).copied().unwrap_or(UNREACHABLE)
    }

    /// Shortest distances to all doors.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Reconstructs the shortest path to `target` as
    /// `(doors, connecting partitions)`, where `doors` starts with the source
    /// and ends with `target`, and `partitions[i]` connects `doors[i]` to
    /// `doors[i + 1]`. Returns `None` when unreachable.
    pub fn path_to(&self, target: DoorId) -> Option<(Vec<DoorId>, Vec<PartitionId>)> {
        if !self.distance(target).is_finite() {
            return None;
        }
        let mut doors = vec![target];
        let mut partitions = Vec::new();
        let mut cur = target;
        while cur != self.source {
            let (prev, via) = self.prev[cur.index()]?;
            doors.push(prev);
            partitions.push(via);
            cur = prev;
        }
        doors.reverse();
        partitions.reverse();
        Some((doors, partitions))
    }
}

/// A shortest-path engine borrowing the indoor space.
#[derive(Debug, Clone, Copy)]
pub struct ShortestPaths<'a> {
    space: &'a IndoorSpace,
}

impl<'a> ShortestPaths<'a> {
    /// Creates the engine for a space.
    pub fn new(space: &'a IndoorSpace) -> Self {
        ShortestPaths { space }
    }

    /// Single-source Dijkstra from `source`, never expanding through doors in
    /// `excluded` (the source itself is allowed even if listed). The exclusion
    /// set is how the search algorithms enforce the global regularity
    /// principle: doors already used by a partial route may not be revisited.
    pub fn from_door(&self, source: DoorId, excluded: &HashSet<DoorId>) -> DijkstraResult {
        let n = self.space.num_doors();
        let graph = self.space.door_graph();
        let mut dist = vec![UNREACHABLE; n];
        let mut prev: Vec<Option<(DoorId, PartitionId)>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(OrderedF64, DoorId)>> = BinaryHeap::new();
        if source.index() < n {
            dist[source.index()] = 0.0;
            heap.push(Reverse((OrderedF64::new(0.0), source)));
        }
        while let Some(Reverse((d, u))) = heap.pop() {
            let d = d.get();
            if d > dist[u.index()] {
                continue;
            }
            for &DoorGraphEdge { to, via, weight } in graph.edges_from(u) {
                if excluded.contains(&to) && to != source {
                    continue;
                }
                let nd = d + weight;
                if nd < dist[to.index()] {
                    dist[to.index()] = nd;
                    prev[to.index()] = Some((u, via));
                    heap.push(Reverse((OrderedF64::new(nd), to)));
                }
            }
        }
        DijkstraResult { source, dist, prev }
    }

    /// Shortest door-to-door distance avoiding `excluded` doors.
    pub fn door_to_door(&self, from: DoorId, to: DoorId, excluded: &HashSet<DoorId>) -> f64 {
        if from == to {
            return 0.0;
        }
        self.from_door(from, excluded).distance(to)
    }

    /// Shortest path from `from` to `to` avoiding `excluded` doors, returned
    /// as `(distance, doors, partitions)` with `doors[0] == from`.
    pub fn door_to_door_path(
        &self,
        from: DoorId,
        to: DoorId,
        excluded: &HashSet<DoorId>,
    ) -> Option<(f64, Vec<DoorId>, Vec<PartitionId>)> {
        if from == to {
            return Some((0.0, vec![from], Vec::new()));
        }
        let result = self.from_door(from, excluded);
        let d = result.distance(to);
        if !d.is_finite() {
            return None;
        }
        let (doors, partitions) = result.path_to(to)?;
        Some((d, doors, partitions))
    }

    /// Shortest connection from door `from` to the terminal point `pt`,
    /// avoiding `excluded` doors: the minimum over enterable doors `de` of
    /// `pt`'s host partition of `dist(from, de) + δd2pt(de, pt)`. Returns
    /// `(distance, doors, partitions)` where the partition sequence includes
    /// the final hop through `v(pt)`.
    pub fn door_to_point_path(
        &self,
        from: DoorId,
        pt: &IndoorPoint,
        excluded: &HashSet<DoorId>,
    ) -> Option<(f64, Vec<DoorId>, Vec<PartitionId>)> {
        let host = self.space.host_partition(pt).ok()?;
        let result = self.from_door(from, excluded);
        let mut best: Option<(f64, DoorId)> = None;
        for &de in self.space.p2d_enter(host) {
            if excluded.contains(&de) && de != from {
                continue;
            }
            let tail = self.space.d2pt_distance(de, pt);
            if !tail.is_finite() {
                continue;
            }
            let head = if de == from { 0.0 } else { result.distance(de) };
            if !head.is_finite() {
                continue;
            }
            let total = head + tail;
            if best.map(|(b, _)| total < b).unwrap_or(true) {
                best = Some((total, de));
            }
        }
        let (total, de) = best?;
        let (mut doors, mut partitions) = if de == from {
            (vec![from], Vec::new())
        } else {
            result.path_to(de)?
        };
        partitions.push(host);
        // The point itself is not a door; callers append it to the route. We
        // still return the door sequence ending at the entry door.
        debug_assert_eq!(doors.last(), Some(&de));
        doors.shrink_to_fit();
        Some((total, doors, partitions))
    }

    /// Shortest distance from door `from` to point `pt` (no path).
    pub fn door_to_point(&self, from: DoorId, pt: &IndoorPoint, excluded: &HashSet<DoorId>) -> f64 {
        self.door_to_point_path(from, pt, excluded)
            .map(|(d, _, _)| d)
            .unwrap_or(UNREACHABLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::door::DoorKind;
    use crate::ids::FloorId;
    use crate::partition::PartitionKind;
    use crate::space::IndoorSpaceBuilder;
    use indoor_geom::{approx_eq, Point, Rect};

    /// A 1x4 corridor of rooms: v0 -d0- v1 -d1- v2 -d2- v3, all bidirectional,
    /// rooms are 10x10, doors on shared walls at y=5.
    fn corridor4() -> IndoorSpace {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        let rooms: Vec<_> = (0..4)
            .map(|i| {
                b.add_partition(
                    f,
                    PartitionKind::Room,
                    Rect::from_origin_size(Point::new(i as f64 * 10.0, 0.0), 10.0, 10.0).unwrap(),
                    None,
                )
            })
            .collect();
        for i in 0..3 {
            let d = b.add_door(Point::new((i + 1) as f64 * 10.0, 5.0), f, DoorKind::Normal);
            b.connect_bidirectional(d, rooms[i], rooms[i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_distances_along_corridor() {
        let s = corridor4();
        let sp = s.shortest_paths();
        let r = sp.from_door(DoorId(0), &HashSet::new());
        assert!(approx_eq(r.distance(DoorId(0)), 0.0));
        assert!(approx_eq(r.distance(DoorId(1)), 10.0));
        assert!(approx_eq(r.distance(DoorId(2)), 20.0));
        assert_eq!(r.source(), DoorId(0));
        assert_eq!(r.distances().len(), 3);
    }

    #[test]
    fn path_reconstruction_includes_partitions() {
        let s = corridor4();
        let sp = s.shortest_paths();
        let (d, doors, parts) = sp
            .door_to_door_path(DoorId(0), DoorId(2), &HashSet::new())
            .unwrap();
        assert!(approx_eq(d, 20.0));
        assert_eq!(doors, vec![DoorId(0), DoorId(1), DoorId(2)]);
        assert_eq!(parts, vec![PartitionId(1), PartitionId(2)]);
    }

    #[test]
    fn exclusion_blocks_paths() {
        let s = corridor4();
        let sp = s.shortest_paths();
        let mut excluded = HashSet::new();
        excluded.insert(DoorId(1));
        assert!(!sp.door_to_door(DoorId(0), DoorId(2), &excluded).is_finite());
        // The excluded source is still usable as a source.
        excluded.insert(DoorId(0));
        assert!(approx_eq(
            sp.door_to_door(DoorId(0), DoorId(0), &excluded),
            0.0
        ));
    }

    #[test]
    fn door_to_point_path_enters_host_partition() {
        let s = corridor4();
        let sp = s.shortest_paths();
        let pt = IndoorPoint::from_xy(35.0, 5.0, FloorId(0)); // inside v3
        let (d, doors, parts) = sp
            .door_to_point_path(DoorId(0), &pt, &HashSet::new())
            .unwrap();
        // 10 (d0->d1) + 10 (d1->d2) + 5 (d2 -> point)
        assert!(approx_eq(d, 25.0));
        assert_eq!(doors.last(), Some(&DoorId(2)));
        assert_eq!(parts.last(), Some(&PartitionId(3)));
        assert!(approx_eq(
            sp.door_to_point(DoorId(0), &pt, &HashSet::new()),
            25.0
        ));
    }

    #[test]
    fn door_to_point_respects_exclusions() {
        let s = corridor4();
        let sp = s.shortest_paths();
        let pt = IndoorPoint::from_xy(35.0, 5.0, FloorId(0));
        let mut excluded = HashSet::new();
        excluded.insert(DoorId(2));
        assert!(sp.door_to_point_path(DoorId(0), &pt, &excluded).is_none());
    }

    #[test]
    fn unreachable_pairs_report_infinity() {
        let s = corridor4();
        let sp = s.shortest_paths();
        assert!(!sp
            .from_door(DoorId(2), &HashSet::new())
            .distance(DoorId(42))
            .is_finite());
        assert!(sp
            .from_door(DoorId(2), &HashSet::new())
            .path_to(DoorId(42))
            .is_none());
    }

    #[test]
    fn point_in_start_partition_short_circuit() {
        let s = corridor4();
        let sp = s.shortest_paths();
        // Point in v1, starting from d0 which is on v1's boundary.
        let pt = IndoorPoint::from_xy(12.0, 5.0, FloorId(0));
        let (d, doors, parts) = sp
            .door_to_point_path(DoorId(0), &pt, &HashSet::new())
            .unwrap();
        assert!(approx_eq(d, 2.0));
        assert_eq!(doors, vec![DoorId(0)]);
        assert_eq!(parts, vec![PartitionId(1)]);
    }
}
