//! Strongly typed identifiers for partitions, doors and floors.
//!
//! All identifiers are small dense integers assigned by the
//! [`crate::IndoorSpaceBuilder`]; using newtypes prevents mixing them up in
//! the search algorithms where partition ids and door ids flow side by side.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an indoor partition (`v` in the paper's notation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PartitionId(pub u32);

/// Identifier of a door (`d` in the paper's notation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct DoorId(pub u32);

/// Identifier of a floor. Floors are numbered from 0 upward; the generator
/// uses consecutive integers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct FloorId(pub i32);

impl PartitionId {
    /// Index usable for dense `Vec` storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DoorId {
    /// Index usable for dense `Vec` storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FloorId {
    /// Raw floor number.
    #[inline]
    pub fn level(self) -> i32 {
        self.0
    }

    /// Absolute number of floors between two floor ids.
    #[inline]
    pub fn floors_between(self, other: FloorId) -> u32 {
        (self.0 - other.0).unsigned_abs()
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for DoorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for FloorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_like_the_paper() {
        assert_eq!(PartitionId(3).to_string(), "v3");
        assert_eq!(DoorId(15).to_string(), "d15");
        assert_eq!(FloorId(2).to_string(), "F2");
    }

    #[test]
    fn ids_are_usable_in_sets_and_vec_indexing() {
        let mut s = HashSet::new();
        s.insert(DoorId(1));
        s.insert(DoorId(1));
        s.insert(DoorId(2));
        assert_eq!(s.len(), 2);
        assert_eq!(PartitionId(7).index(), 7);
        assert_eq!(DoorId(9).index(), 9);
    }

    #[test]
    fn floor_arithmetic() {
        assert_eq!(FloorId(4).floors_between(FloorId(1)), 3);
        assert_eq!(FloorId(1).floors_between(FloorId(4)), 3);
        assert_eq!(FloorId(2).level(), 2);
    }

    #[test]
    fn ordering_is_by_raw_value() {
        let mut v = vec![DoorId(5), DoorId(1), DoorId(3)];
        v.sort();
        assert_eq!(v, vec![DoorId(1), DoorId(3), DoorId(5)]);
    }
}
