//! Summary statistics of an indoor space, used to validate generated venues
//! against the counts published in §V-A1 and §V-B of the paper.

use crate::partition::PartitionKind;
use crate::space::IndoorSpace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Venue statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceStats {
    /// Total number of partitions.
    pub partitions: usize,
    /// Total number of doors.
    pub doors: usize,
    /// Number of floors.
    pub floors: usize,
    /// Number of partitions per kind.
    pub partitions_by_kind: BTreeMap<String, usize>,
    /// Number of doors that connect floors (stair/elevator doors).
    pub vertical_doors: usize,
    /// Number of directed edges in the door graph.
    pub door_graph_edges: usize,
    /// Average number of doors per partition.
    pub avg_doors_per_partition: f64,
}

impl SpaceStats {
    /// Computes statistics from a space.
    pub fn from_space(space: &IndoorSpace) -> Self {
        let mut partitions_by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for p in space.partitions() {
            *partitions_by_kind
                .entry(p.kind.label().to_string())
                .or_insert(0) += 1;
        }
        let vertical_doors = space
            .doors()
            .iter()
            .filter(|d| d.kind.is_vertical())
            .count();
        let total_door_slots: usize = space
            .partitions()
            .iter()
            .map(|p| {
                let mut doors: Vec<_> = space.p2d_enter(p.id).to_vec();
                doors.extend_from_slice(space.p2d_leave(p.id));
                doors.sort();
                doors.dedup();
                doors.len()
            })
            .sum();
        SpaceStats {
            partitions: space.num_partitions(),
            doors: space.num_doors(),
            floors: space.floors().len(),
            partitions_by_kind,
            vertical_doors,
            door_graph_edges: space.door_graph().num_edges(),
            avg_doors_per_partition: if space.num_partitions() == 0 {
                0.0
            } else {
                total_door_slots as f64 / space.num_partitions() as f64
            },
        }
    }

    /// Count of partitions of a given kind.
    pub fn count_of(&self, kind: PartitionKind) -> usize {
        self.partitions_by_kind
            .get(kind.label())
            .copied()
            .unwrap_or(0)
    }
}

impl fmt::Display for SpaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} partitions / {} doors / {} floors ({} vertical doors, {} door-graph edges)",
            self.partitions, self.doors, self.floors, self.vertical_doors, self.door_graph_edges
        )?;
        for (kind, count) in &self.partitions_by_kind {
            writeln!(f, "  {kind}: {count}")?;
        }
        write!(
            f,
            "  avg doors per partition: {:.2}",
            self.avg_doors_per_partition
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::door::DoorKind;
    use crate::ids::FloorId;
    use crate::space::IndoorSpaceBuilder;
    use indoor_geom::{Point, Rect};

    #[test]
    fn stats_count_kinds_and_doors() {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        let room = b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::ORIGIN, 10.0, 10.0).unwrap(),
            None,
        );
        let hall = b.add_partition(
            f,
            PartitionKind::Hallway,
            Rect::from_origin_size(Point::new(10.0, 0.0), 10.0, 10.0).unwrap(),
            None,
        );
        let d = b.add_door(Point::new(10.0, 5.0), f, DoorKind::Normal);
        b.connect_bidirectional(d, room, hall);
        let s = b.build().unwrap();
        let stats = s.stats();
        assert_eq!(stats.partitions, 2);
        assert_eq!(stats.doors, 1);
        assert_eq!(stats.floors, 1);
        assert_eq!(stats.count_of(PartitionKind::Room), 1);
        assert_eq!(stats.count_of(PartitionKind::Hallway), 1);
        assert_eq!(stats.count_of(PartitionKind::Staircase), 0);
        assert_eq!(stats.vertical_doors, 0);
        assert_eq!(stats.door_graph_edges, 0);
        assert!((stats.avg_doors_per_partition - 1.0).abs() < 1e-9);
        assert!(stats.to_string().contains("2 partitions"));
    }
}
