//! All-pairs door-to-door shortest distance matrix.
//!
//! The workload generator of §V-A1 relies on a "precomputed door-to-door
//! matrix" to pick terminal points at a controlled indoor distance `δs2t`
//! from the start point, and the KoE* variant of §V precomputes the shortest
//! route between any two doors. [`DoorMatrix`] provides both: distances for
//! everyone, and optional predecessor storage for KoE* path reconstruction.

use crate::ids::{DoorId, PartitionId};
use crate::shortest_path::ShortestPaths;
use crate::space::IndoorSpace;
use crate::UNREACHABLE;
use std::collections::HashSet;

/// All-pairs door distances, with optional path (predecessor) storage.
#[derive(Debug, Clone)]
pub struct DoorMatrix {
    n: usize,
    dist: Vec<f64>,
    /// Predecessor door and connecting partition on the shortest path from
    /// `src` to each door; only populated when paths are requested.
    prev: Option<Vec<Option<(DoorId, PartitionId)>>>,
}

impl DoorMatrix {
    /// Builds the distance-only matrix (used by the query generator).
    pub fn build(space: &IndoorSpace) -> Self {
        Self::build_inner(space, false)
    }

    /// Builds the matrix including predecessors for path reconstruction
    /// (used by the KoE* variant; roughly doubles the memory footprint).
    pub fn build_with_paths(space: &IndoorSpace) -> Self {
        Self::build_inner(space, true)
    }

    fn build_inner(space: &IndoorSpace, with_paths: bool) -> Self {
        let n = space.num_doors();
        let sp = ShortestPaths::new(space);
        let empty = HashSet::new();
        let mut dist = vec![UNREACHABLE; n * n];
        let mut prev = if with_paths {
            Some(vec![None; n * n])
        } else {
            None
        };
        for src in 0..n {
            let result = sp.from_door(DoorId(src as u32), &empty);
            dist[src * n..(src + 1) * n].copy_from_slice(result.distances());
            if let Some(prev) = prev.as_mut() {
                for dst in 0..n {
                    if let Some((mut doors, mut parts)) = result.path_to(DoorId(dst as u32)) {
                        // Predecessor of dst on the path from src.
                        if doors.len() >= 2 {
                            let p = doors[doors.len() - 2];
                            let via = parts.pop().expect("non-empty partition list");
                            prev[src * n + dst] = Some((p, via));
                        }
                        doors.clear();
                    }
                }
            }
        }
        DoorMatrix { n, dist, prev }
    }

    /// Number of doors covered by the matrix.
    pub fn num_doors(&self) -> usize {
        self.n
    }

    /// Whether predecessor paths were precomputed.
    pub fn has_paths(&self) -> bool {
        self.prev.is_some()
    }

    /// Shortest distance between two doors ignoring any regularity
    /// constraints.
    pub fn distance(&self, from: DoorId, to: DoorId) -> f64 {
        if from.index() >= self.n || to.index() >= self.n {
            return UNREACHABLE;
        }
        self.dist[from.index() * self.n + to.index()]
    }

    /// Reconstructs the precomputed shortest path from `from` to `to` as
    /// `(doors, partitions)`. Requires [`DoorMatrix::build_with_paths`].
    pub fn path(&self, from: DoorId, to: DoorId) -> Option<(Vec<DoorId>, Vec<PartitionId>)> {
        let prev = self.prev.as_ref()?;
        if from.index() >= self.n || to.index() >= self.n {
            return None;
        }
        if from == to {
            return Some((vec![from], Vec::new()));
        }
        if !self.distance(from, to).is_finite() {
            return None;
        }
        let mut doors = vec![to];
        let mut parts = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, via) = prev[from.index() * self.n + cur.index()]?;
            doors.push(p);
            parts.push(via);
            cur = p;
        }
        doors.reverse();
        parts.reverse();
        Some((doors, parts))
    }

    /// Doors whose shortest distance from `from` is closest to `target`
    /// metres; used by the workload generator to pick a door `d'` whose
    /// distance to `ps` approximates `δs2t` (step 2 of §V-A1).
    pub fn doors_near_distance(&self, from: DoorId, target: f64, count: usize) -> Vec<DoorId> {
        let mut candidates: Vec<(f64, DoorId)> = (0..self.n)
            .filter_map(|i| {
                let d = self.dist[from.index() * self.n + i];
                d.is_finite()
                    .then(|| ((d - target).abs(), DoorId(i as u32)))
            })
            .collect();
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        candidates.into_iter().take(count).map(|(_, d)| d).collect()
    }

    /// Estimated heap size in bytes; KoE*'s memory accounting charges this.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.dist.capacity() * std::mem::size_of::<f64>()
            + self
                .prev
                .as_ref()
                .map(|p| p.capacity() * std::mem::size_of::<Option<(DoorId, PartitionId)>>())
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::door::DoorKind;
    use crate::ids::FloorId;
    use crate::partition::PartitionKind;
    use crate::space::IndoorSpaceBuilder;
    use indoor_geom::{approx_eq, Point, Rect};

    fn corridor(n: usize) -> IndoorSpace {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        let rooms: Vec<_> = (0..n)
            .map(|i| {
                b.add_partition(
                    f,
                    PartitionKind::Room,
                    Rect::from_origin_size(Point::new(i as f64 * 10.0, 0.0), 10.0, 10.0).unwrap(),
                    None,
                )
            })
            .collect();
        for i in 0..n - 1 {
            let d = b.add_door(Point::new((i + 1) as f64 * 10.0, 5.0), f, DoorKind::Normal);
            b.connect_bidirectional(d, rooms[i], rooms[i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn distances_match_dijkstra() {
        let s = corridor(5);
        let m = DoorMatrix::build(&s);
        assert_eq!(m.num_doors(), 4);
        assert!(!m.has_paths());
        assert!(approx_eq(m.distance(DoorId(0), DoorId(3)), 30.0));
        assert!(approx_eq(m.distance(DoorId(3), DoorId(0)), 30.0));
        assert!(approx_eq(m.distance(DoorId(2), DoorId(2)), 0.0));
        assert!(!m.distance(DoorId(0), DoorId(99)).is_finite());
    }

    #[test]
    fn paths_reconstruct_in_order() {
        let s = corridor(5);
        let m = DoorMatrix::build_with_paths(&s);
        assert!(m.has_paths());
        let (doors, parts) = m.path(DoorId(0), DoorId(3)).unwrap();
        assert_eq!(doors, vec![DoorId(0), DoorId(1), DoorId(2), DoorId(3)]);
        assert_eq!(parts.len(), 3);
        let (doors, parts) = m.path(DoorId(2), DoorId(2)).unwrap();
        assert_eq!(doors, vec![DoorId(2)]);
        assert!(parts.is_empty());
        assert!(m.path(DoorId(0), DoorId(99)).is_none());
    }

    #[test]
    fn doors_near_distance_picks_closest() {
        let s = corridor(6);
        let m = DoorMatrix::build(&s);
        let near = m.doors_near_distance(DoorId(0), 20.0, 1);
        assert_eq!(near, vec![DoorId(2)]);
        let near = m.doors_near_distance(DoorId(0), 20.0, 3);
        assert_eq!(near.len(), 3);
        assert!(near.contains(&DoorId(2)));
    }

    #[test]
    fn distance_only_matrix_has_no_paths() {
        let s = corridor(3);
        let m = DoorMatrix::build(&s);
        assert!(m.path(DoorId(0), DoorId(1)).is_none());
        assert!(m.estimated_bytes() > 0);
        let mp = DoorMatrix::build_with_paths(&s);
        assert!(mp.estimated_bytes() > m.estimated_bytes());
    }
}
