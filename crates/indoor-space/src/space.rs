//! The [`IndoorSpace`] aggregate: partitions, doors, topology mappings and the
//! intra-partition distance functions of §II-A, plus the derived structures
//! (door graph, skeleton index, per-floor point-location grids).

use crate::csr::Csr;
use crate::door::{Door, DoorKind};
use crate::door_graph::DoorGraph;
use crate::error::SpaceError;
use crate::ids::{DoorId, FloorId, PartitionId};
use crate::partition::{Partition, PartitionKind};
use crate::point::IndoorPoint;
use crate::shortest_path::ShortestPaths;
use crate::skeleton::SkeletonIndex;
use crate::stats::SpaceStats;
use crate::Result;
use crate::UNREACHABLE;
use indoor_geom::{Point, Rect, UniformGrid};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Connection descriptor between a door and a partition recorded by the
/// builder before validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Connection {
    door: DoorId,
    partition: PartitionId,
    /// One can enter the partition through the door (`partition ∈ D2PA(door)`).
    enterable: bool,
    /// One can leave the partition through the door (`partition ∈ D2P@(door)`).
    leavable: bool,
}

/// Builder for [`IndoorSpace`]. The floorplan generators in `indoor-data`
/// drive this API; it can also be used directly to model hand-crafted venues
/// such as the paper's Fig. 1 example (see `ikrq-core` tests).
#[derive(Debug, Default)]
pub struct IndoorSpaceBuilder {
    floors: BTreeMap<FloorId, Rect>,
    partitions: Vec<Partition>,
    doors: Vec<Door>,
    connections: Vec<Connection>,
    intra_overrides: HashMap<(PartitionId, DoorId, DoorId), f64>,
    loop_overrides: HashMap<(PartitionId, DoorId), f64>,
    grid_cell: f64,
}

impl IndoorSpaceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        IndoorSpaceBuilder {
            grid_cell: 25.0,
            ..Default::default()
        }
    }

    /// Overrides the cell size (metres) of the per-floor point-location grids.
    pub fn with_grid_cell(mut self, cell: f64) -> Self {
        self.grid_cell = cell;
        self
    }

    /// Registers a floor and its bounding rectangle.
    pub fn add_floor(&mut self, floor: FloorId, bounds: Rect) -> &mut Self {
        self.floors.insert(floor, bounds);
        self
    }

    /// Adds a partition and returns its identifier.
    pub fn add_partition(
        &mut self,
        floor: FloorId,
        kind: PartitionKind,
        footprint: Rect,
        name: Option<String>,
    ) -> PartitionId {
        let id = PartitionId(self.partitions.len() as u32);
        self.partitions.push(Partition {
            id,
            floor,
            kind,
            footprint,
            name,
        });
        id
    }

    /// Adds a door and returns its identifier.
    pub fn add_door(&mut self, position: Point, floor: FloorId, kind: DoorKind) -> DoorId {
        let id = DoorId(self.doors.len() as u32);
        self.doors.push(Door {
            id,
            position,
            floor,
            kind,
        });
        id
    }

    /// Footprint of a partition added earlier to this builder. Generators use
    /// this to place doors relative to partitions they just created.
    pub fn partition_footprint(&self, id: PartitionId) -> Option<Rect> {
        self.partitions.get(id.index()).map(|p| p.footprint)
    }

    /// Floor of a partition added earlier to this builder.
    pub fn partition_floor(&self, id: PartitionId) -> Option<FloorId> {
        self.partitions.get(id.index()).map(|p| p.floor)
    }

    /// Declares that `door` connects to `partition`. `enterable` means the
    /// partition can be entered through the door (`partition ∈ D2PA(door)`),
    /// `leavable` that it can be left through it (`partition ∈ D2P@(door)`).
    pub fn connect(
        &mut self,
        door: DoorId,
        partition: PartitionId,
        enterable: bool,
        leavable: bool,
    ) -> &mut Self {
        self.connections.push(Connection {
            door,
            partition,
            enterable,
            leavable,
        });
        self
    }

    /// Declares a fully bidirectional door between two partitions: both can be
    /// entered and left through it. This is the common case for the generated
    /// venues.
    pub fn connect_bidirectional(
        &mut self,
        door: DoorId,
        a: PartitionId,
        b: PartitionId,
    ) -> &mut Self {
        self.connect(door, a, true, true);
        self.connect(door, b, true, true);
        self
    }

    /// Overrides the intra-partition walking distance between two doors of a
    /// partition (stored symmetrically). Used for staircases, where the walk
    /// cost is the stairway length rather than the planar Euclidean distance.
    pub fn set_intra_distance(
        &mut self,
        partition: PartitionId,
        a: DoorId,
        b: DoorId,
        distance: f64,
    ) -> &mut Self {
        self.intra_overrides.insert((partition, a, b), distance);
        self.intra_overrides.insert((partition, b, a), distance);
        self
    }

    /// Overrides the same-door loop cost `δd2d(d, d)` inside a partition.
    pub fn set_loop_distance(
        &mut self,
        partition: PartitionId,
        door: DoorId,
        distance: f64,
    ) -> &mut Self {
        self.loop_overrides.insert((partition, door), distance);
        self
    }

    /// Validates the model and produces the immutable [`IndoorSpace`].
    pub fn build(self) -> Result<IndoorSpace> {
        if self.partitions.is_empty() {
            return Err(SpaceError::EmptySpace);
        }
        let num_partitions = self.partitions.len();
        let num_doors = self.doors.len();

        // Validate connection endpoints and floor consistency.
        for c in &self.connections {
            let door = self
                .doors
                .get(c.door.index())
                .ok_or(SpaceError::UnknownDoor(c.door))?;
            let part = self
                .partitions
                .get(c.partition.index())
                .ok_or(SpaceError::UnknownPartition(c.partition))?;
            if !door.touches_floor(part.floor) {
                return Err(SpaceError::FloorMismatch {
                    door: c.door,
                    partition: c.partition,
                });
            }
        }

        // Distance overrides must reference declared partitions and doors:
        // a dangling override would otherwise survive into the sorted tables
        // and silently never match a binary search.
        for &(v, a, b) in self.intra_overrides.keys() {
            if self.partitions.get(v.index()).is_none() {
                return Err(SpaceError::UnknownPartition(v));
            }
            if self.doors.get(a.index()).is_none() {
                return Err(SpaceError::UnknownDoor(a));
            }
            if self.doors.get(b.index()).is_none() {
                return Err(SpaceError::UnknownDoor(b));
            }
        }
        for &(v, d) in self.loop_overrides.keys() {
            if self.partitions.get(v.index()).is_none() {
                return Err(SpaceError::UnknownPartition(v));
            }
            if self.doors.get(d.index()).is_none() {
                return Err(SpaceError::UnknownDoor(d));
            }
        }

        // Assemble the four topology mappings as CSR arrays: flat pair lists,
        // one sort + dedup each — sorted, deduplicated and deterministic like
        // the previous per-node BTreeSet assembly, without the per-node heap
        // allocations that dominated cold-start time at venue scale.
        let mut d2p_enter_pairs: Vec<(u32, PartitionId)> =
            Vec::with_capacity(self.connections.len());
        let mut d2p_leave_pairs: Vec<(u32, PartitionId)> =
            Vec::with_capacity(self.connections.len());
        let mut p2d_enter_pairs: Vec<(u32, DoorId)> = Vec::with_capacity(self.connections.len());
        let mut p2d_leave_pairs: Vec<(u32, DoorId)> = Vec::with_capacity(self.connections.len());
        for c in &self.connections {
            if c.enterable {
                d2p_enter_pairs.push((c.door.0, c.partition));
                p2d_enter_pairs.push((c.partition.0, c.door));
            }
            if c.leavable {
                d2p_leave_pairs.push((c.door.0, c.partition));
                p2d_leave_pairs.push((c.partition.0, c.door));
            }
        }
        let d2p_enter = Csr::from_pairs(num_doors, d2p_enter_pairs);
        let d2p_leave = Csr::from_pairs(num_doors, d2p_leave_pairs);
        let p2d_enter = Csr::from_pairs(num_partitions, p2d_enter_pairs);
        let p2d_leave = Csr::from_pairs(num_partitions, p2d_leave_pairs);

        // Every door must connect to something; every partition must have a
        // door (otherwise it can never appear on a route).
        for i in 0..num_doors {
            if d2p_enter.row(i).is_empty() && d2p_leave.row(i).is_empty() {
                return Err(SpaceError::DisconnectedDoor(DoorId(i as u32)));
            }
        }
        for i in 0..num_partitions {
            if p2d_enter.row(i).is_empty() && p2d_leave.row(i).is_empty() {
                return Err(SpaceError::DisconnectedPartition(PartitionId(i as u32)));
            }
        }

        // Distance overrides become sorted flat tables looked up by binary
        // search — the per-query HashMap probes of the old layout were a
        // measurable constant on the hot d2d path.
        let mut intra_overrides: Vec<(PartitionId, DoorId, DoorId, f64)> = self
            .intra_overrides
            .into_iter()
            .map(|((v, a, b), d)| (v, a, b, d))
            .collect();
        intra_overrides.sort_unstable_by_key(|&(v, a, b, _)| (v, a, b));
        let mut loop_overrides: Vec<(PartitionId, DoorId, f64)> = self
            .loop_overrides
            .into_iter()
            .map(|((v, d), dist)| (v, d, dist))
            .collect();
        loop_overrides.sort_unstable_by_key(|&(v, d, _)| (v, d));

        // Per-floor point-location grids over partition footprints.
        let mut floor_bounds: BTreeMap<FloorId, Rect> = self.floors.clone();
        for p in &self.partitions {
            floor_bounds
                .entry(p.floor)
                .and_modify(|b| *b = b.union(&p.footprint))
                .or_insert(p.footprint);
        }
        let mut grids: BTreeMap<FloorId, (UniformGrid, Vec<PartitionId>)> = BTreeMap::new();
        for (floor, bounds) in &floor_bounds {
            let grid = UniformGrid::new(*bounds, self.grid_cell)?;
            grids.insert(*floor, (grid, Vec::new()));
        }
        for p in &self.partitions {
            if let Some((grid, ids)) = grids.get_mut(&p.floor) {
                grid.insert(p.footprint);
                ids.push(p.id);
            }
        }

        let mut space = IndoorSpace {
            partitions: self.partitions,
            doors: self.doors,
            d2p_enter,
            d2p_leave,
            p2d_enter,
            p2d_leave,
            intra_overrides,
            loop_overrides,
            floor_bounds,
            grids,
            door_graph: DoorGraph::empty(),
            skeleton: SkeletonIndex::empty(),
        };
        space.door_graph = DoorGraph::build(&space);
        space.skeleton = SkeletonIndex::build(&space);
        Ok(space)
    }
}

/// Flat, pre-validated columns describing an [`IndoorSpace`], in exactly the
/// shape the model stores them. Columnar venue files (`IKRQVEN` v2) decode
/// into this struct and [`IndoorSpace::adopt_columns`] turns it into a model
/// without replaying the builder: no connection re-sorting, no door-graph
/// rebuild, no per-record allocation beyond the column vectors themselves.
#[derive(Debug, Clone)]
pub struct SpaceColumns {
    /// Cell size (metres) for the per-floor point-location grids.
    pub grid_cell: f64,
    /// Final floor bounding rectangles (declared bounds unioned with every
    /// footprint), ascending by floor.
    pub floor_bounds: Vec<(FloorId, Rect)>,
    /// All partitions, dense by `PartitionId::index()`.
    pub partitions: Vec<Partition>,
    /// All doors, dense by `DoorId::index()`.
    pub doors: Vec<Door>,
    /// `D2PA`: door → enterable partitions.
    pub d2p_enter: Csr<PartitionId>,
    /// `D2P@`: door → leavable partitions.
    pub d2p_leave: Csr<PartitionId>,
    /// `P2DA`: partition → doors it can be entered through.
    pub p2d_enter: Csr<DoorId>,
    /// `P2D@`: partition → doors it can be left through.
    pub p2d_leave: Csr<DoorId>,
    /// Intra-partition distance overrides, sorted by `(partition, from, to)`.
    pub intra_overrides: Vec<(PartitionId, DoorId, DoorId, f64)>,
    /// Same-door loop-cost overrides, sorted by `(partition, door)`.
    pub loop_overrides: Vec<(PartitionId, DoorId, f64)>,
    /// The derived door connectivity graph, persisted so adoption skips the
    /// most expensive rebuild step.
    pub door_graph: DoorGraph,
}

impl SpaceColumns {
    /// Captures the columns of a built space, in exactly the shape
    /// [`IndoorSpace::adopt_columns`] adopts. `grid_cell` is the cell size the
    /// space was built with (the model does not retain it; venue documents
    /// do).
    pub fn capture(space: &IndoorSpace, grid_cell: f64) -> SpaceColumns {
        let (d2p_enter, d2p_leave, p2d_enter, p2d_leave) = space.topology_csrs();
        SpaceColumns {
            grid_cell,
            floor_bounds: space.floor_bounds_table().collect(),
            partitions: space.partitions().to_vec(),
            doors: space.doors().to_vec(),
            d2p_enter: d2p_enter.clone(),
            d2p_leave: d2p_leave.clone(),
            p2d_enter: p2d_enter.clone(),
            p2d_leave: p2d_leave.clone(),
            intra_overrides: space.intra_distance_overrides().collect(),
            loop_overrides: space.loop_distance_overrides().collect(),
            door_graph: space.door_graph().clone(),
        }
    }
}

/// The immutable indoor space model. See the crate documentation for the
/// concepts; all accessors are cheap.
#[derive(Debug, Clone)]
pub struct IndoorSpace {
    partitions: Vec<Partition>,
    doors: Vec<Door>,
    d2p_enter: Csr<PartitionId>,
    d2p_leave: Csr<PartitionId>,
    p2d_enter: Csr<DoorId>,
    p2d_leave: Csr<DoorId>,
    /// Sorted by `(partition, from door, to door)`; binary-searched.
    intra_overrides: Vec<(PartitionId, DoorId, DoorId, f64)>,
    /// Sorted by `(partition, door)`; binary-searched.
    loop_overrides: Vec<(PartitionId, DoorId, f64)>,
    floor_bounds: BTreeMap<FloorId, Rect>,
    grids: BTreeMap<FloorId, (UniformGrid, Vec<PartitionId>)>,
    door_graph: DoorGraph,
    skeleton: SkeletonIndex,
}

impl IndoorSpace {
    /// Builds a space directly from flat columns, skipping the builder replay.
    ///
    /// This is the columnar cold-start path: the topology CSRs, override
    /// tables and door graph are adopted wholesale after `O(n)` validation
    /// scans; only the per-floor grids and the (small) skeleton index are
    /// recomputed. The columns must describe a model the builder could have
    /// produced — dense identifiers, sorted override tables, connected doors
    /// and partitions — and any violation is reported as a structured error,
    /// never a panic, so loaders can degrade to a record-by-record rebuild.
    pub fn adopt_columns(cols: SpaceColumns) -> Result<IndoorSpace> {
        let SpaceColumns {
            grid_cell,
            floor_bounds,
            partitions,
            doors,
            d2p_enter,
            d2p_leave,
            p2d_enter,
            p2d_leave,
            intra_overrides,
            loop_overrides,
            door_graph,
        } = cols;
        if partitions.is_empty() {
            return Err(SpaceError::EmptySpace);
        }
        let np = partitions.len();
        let nd = doors.len();
        for (i, p) in partitions.iter().enumerate() {
            if p.id.index() != i {
                return Err(SpaceError::InvalidConfig(format!(
                    "partition column {i} carries id {}",
                    p.id
                )));
            }
        }
        for (i, d) in doors.iter().enumerate() {
            if d.id.index() != i {
                return Err(SpaceError::InvalidConfig(format!(
                    "door column {i} carries id {}",
                    d.id
                )));
            }
        }

        // Topology CSR shape and value ranges.
        for (name, csr) in [("d2p_enter", &d2p_enter), ("d2p_leave", &d2p_leave)] {
            if csr.num_nodes() != nd {
                return Err(SpaceError::InvalidConfig(format!(
                    "{name} maps {} doors, venue has {nd}",
                    csr.num_nodes()
                )));
            }
            if let Some(&v) = csr.values().iter().find(|v| v.index() >= np) {
                return Err(SpaceError::UnknownPartition(v));
            }
        }
        for (name, csr) in [("p2d_enter", &p2d_enter), ("p2d_leave", &p2d_leave)] {
            if csr.num_nodes() != np {
                return Err(SpaceError::InvalidConfig(format!(
                    "{name} maps {} partitions, venue has {np}",
                    csr.num_nodes()
                )));
            }
            if let Some(&d) = csr.values().iter().find(|d| d.index() >= nd) {
                return Err(SpaceError::UnknownDoor(d));
            }
        }
        for i in 0..nd {
            if d2p_enter.row(i).is_empty() && d2p_leave.row(i).is_empty() {
                return Err(SpaceError::DisconnectedDoor(DoorId(i as u32)));
            }
        }
        for i in 0..np {
            if p2d_enter.row(i).is_empty() && p2d_leave.row(i).is_empty() {
                return Err(SpaceError::DisconnectedPartition(PartitionId(i as u32)));
            }
        }

        // Override tables: sorted (they are binary-searched) and in range.
        if intra_overrides
            .windows(2)
            .any(|w| (w[0].0, w[0].1, w[0].2) >= (w[1].0, w[1].1, w[1].2))
        {
            return Err(SpaceError::InvalidConfig(
                "intra-distance override table is not strictly sorted".to_string(),
            ));
        }
        for &(v, a, b, _) in &intra_overrides {
            if v.index() >= np {
                return Err(SpaceError::UnknownPartition(v));
            }
            if a.index() >= nd {
                return Err(SpaceError::UnknownDoor(a));
            }
            if b.index() >= nd {
                return Err(SpaceError::UnknownDoor(b));
            }
        }
        if loop_overrides
            .windows(2)
            .any(|w| (w[0].0, w[0].1) >= (w[1].0, w[1].1))
        {
            return Err(SpaceError::InvalidConfig(
                "loop-distance override table is not strictly sorted".to_string(),
            ));
        }
        for &(v, d, _) in &loop_overrides {
            if v.index() >= np {
                return Err(SpaceError::UnknownPartition(v));
            }
            if d.index() >= nd {
                return Err(SpaceError::UnknownDoor(d));
            }
        }

        if door_graph.num_nodes() != nd {
            return Err(SpaceError::InvalidConfig(format!(
                "door graph covers {} doors, venue has {nd}",
                door_graph.num_nodes()
            )));
        }

        // Floor bounds and grids are recomputed exactly as the builder does;
        // unioning footprints into the persisted (already-final) bounds is
        // idempotent, and covers columns that only carry declared bounds.
        let mut floor_bounds: BTreeMap<FloorId, Rect> = floor_bounds.into_iter().collect();
        for p in &partitions {
            floor_bounds
                .entry(p.floor)
                .and_modify(|b| *b = b.union(&p.footprint))
                .or_insert(p.footprint);
        }
        let mut grids: BTreeMap<FloorId, (UniformGrid, Vec<PartitionId>)> = BTreeMap::new();
        for (floor, bounds) in &floor_bounds {
            let grid = UniformGrid::new(*bounds, grid_cell)?;
            grids.insert(*floor, (grid, Vec::new()));
        }
        for p in &partitions {
            if let Some((grid, ids)) = grids.get_mut(&p.floor) {
                grid.insert(p.footprint);
                ids.push(p.id);
            }
        }

        let mut space = IndoorSpace {
            partitions,
            doors,
            d2p_enter,
            d2p_leave,
            p2d_enter,
            p2d_leave,
            intra_overrides,
            loop_overrides,
            floor_bounds,
            grids,
            door_graph,
            skeleton: SkeletonIndex::empty(),
        };
        space.skeleton = SkeletonIndex::build(&space);
        Ok(space)
    }

    // ------------------------------------------------------------------
    // Basic accessors
    // ------------------------------------------------------------------

    /// All partitions, indexed by `PartitionId::index()`.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// All doors, indexed by `DoorId::index()`.
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    /// Number of partitions in the venue.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of doors in the venue.
    pub fn num_doors(&self) -> usize {
        self.doors.len()
    }

    /// Floors present in the venue, in ascending order.
    pub fn floors(&self) -> Vec<FloorId> {
        self.floor_bounds.keys().copied().collect()
    }

    /// Bounding rectangle of a floor.
    pub fn floor_bounds(&self, floor: FloorId) -> Result<&Rect> {
        self.floor_bounds
            .get(&floor)
            .ok_or(SpaceError::UnknownFloor(floor))
    }

    /// All floors with their final bounding rectangles, ascending by floor.
    /// Exposed so persistence layers can write the table as flat columns.
    pub fn floor_bounds_table(&self) -> impl Iterator<Item = (FloorId, Rect)> + '_ {
        self.floor_bounds.iter().map(|(f, r)| (*f, *r))
    }

    /// Looks up a partition.
    pub fn partition(&self, id: PartitionId) -> Result<&Partition> {
        self.partitions
            .get(id.index())
            .ok_or(SpaceError::UnknownPartition(id))
    }

    /// Looks up a door.
    pub fn door(&self, id: DoorId) -> Result<&Door> {
        self.doors
            .get(id.index())
            .ok_or(SpaceError::UnknownDoor(id))
    }

    /// The derived door connectivity graph.
    pub fn door_graph(&self) -> &DoorGraph {
        &self.door_graph
    }

    /// All intra-partition distance overrides declared by the venue builder
    /// (`(partition, entered door, left door) → distance`, e.g. stairway walk
    /// costs). Exposed so that persistence layers can round-trip the model.
    pub fn intra_distance_overrides(
        &self,
    ) -> impl Iterator<Item = (PartitionId, DoorId, DoorId, f64)> + '_ {
        self.intra_overrides.iter().copied()
    }

    /// All same-door loop-cost overrides declared by the venue builder
    /// (`(partition, door) → distance`). Exposed for persistence layers.
    pub fn loop_distance_overrides(&self) -> impl Iterator<Item = (PartitionId, DoorId, f64)> + '_ {
        self.loop_overrides.iter().copied()
    }

    /// The skeleton-distance index (lower bound `|·,·|_L` of §IV-A).
    pub fn skeleton(&self) -> &SkeletonIndex {
        &self.skeleton
    }

    /// A shortest-path engine view over the door graph.
    pub fn shortest_paths(&self) -> ShortestPaths<'_> {
        ShortestPaths::new(self)
    }

    /// Summary statistics of the venue.
    pub fn stats(&self) -> SpaceStats {
        SpaceStats::from_space(self)
    }

    // ------------------------------------------------------------------
    // Topology mappings of §II-A
    // ------------------------------------------------------------------

    /// `D2PA(d)`: partitions one can enter through door `d`.
    #[inline]
    pub fn d2p_enter(&self, d: DoorId) -> &[PartitionId] {
        self.d2p_enter.row(d.index())
    }

    /// `D2P@(d)`: partitions one can leave through door `d`.
    #[inline]
    pub fn d2p_leave(&self, d: DoorId) -> &[PartitionId] {
        self.d2p_leave.row(d.index())
    }

    /// `P2DA(v)`: doors through which partition `v` can be entered.
    #[inline]
    pub fn p2d_enter(&self, v: PartitionId) -> &[DoorId] {
        self.p2d_enter.row(v.index())
    }

    /// `P2D@(v)`: doors through which partition `v` can be left.
    #[inline]
    pub fn p2d_leave(&self, v: PartitionId) -> &[DoorId] {
        self.p2d_leave.row(v.index())
    }

    /// The four topology mappings as whole CSR maps, in `(D2PA, D2P@, P2DA,
    /// P2D@)` order. Exposed so persistence layers can capture them as flat
    /// columns without walking every node.
    #[allow(clippy::type_complexity)]
    pub fn topology_csrs(
        &self,
    ) -> (
        &Csr<PartitionId>,
        &Csr<PartitionId>,
        &Csr<DoorId>,
        &Csr<DoorId>,
    ) {
        (
            &self.d2p_enter,
            &self.d2p_leave,
            &self.p2d_enter,
            &self.p2d_leave,
        )
    }

    /// Partitions through which one can move from door `di` (entering) to door
    /// `dj` (leaving): `D2PA(di) ∩ D2P@(dj)`. Non-empty iff `δd2d(di, dj)` is
    /// finite per §II-A.
    pub fn partitions_between(&self, di: DoorId, dj: DoorId) -> Vec<PartitionId> {
        let leave = self.d2p_leave(dj);
        self.d2p_enter(di)
            .iter()
            .copied()
            .filter(|v| leave.contains(v))
            .collect()
    }

    /// The partitions behind door `d` when arriving from partition `from`:
    /// `D2PA(d) \ {from}`. This is the `v_j ← D2PA(d_l) \ v_i` step of
    /// Algorithm 2 (ToE), generalised to doors connecting more than two
    /// partitions.
    pub fn partitions_behind(&self, d: DoorId, from: PartitionId) -> Vec<PartitionId> {
        self.d2p_enter(d)
            .iter()
            .copied()
            .filter(|&v| v != from)
            .collect()
    }

    // ------------------------------------------------------------------
    // Point location
    // ------------------------------------------------------------------

    /// `v(p)`: the host partition of an indoor point. Shared boundaries are
    /// resolved to the partition with the smallest identifier whose interior
    /// or boundary contains the point, interior matches taking precedence.
    pub fn host_partition(&self, p: &IndoorPoint) -> Result<PartitionId> {
        let (grid, ids) = self
            .grids
            .get(&p.floor)
            .ok_or(SpaceError::UnknownFloor(p.floor))?;
        grid.locate(&p.position)
            .map(|idx| ids[idx])
            .ok_or(SpaceError::PointOutsideVenue { floor: p.floor })
    }

    /// All partitions on a floor.
    pub fn partitions_on_floor(&self, floor: FloorId) -> Vec<PartitionId> {
        self.partitions
            .iter()
            .filter(|p| p.floor == floor)
            .map(|p| p.id)
            .collect()
    }

    /// All doors touching a floor (stair doors touch two floors).
    pub fn doors_on_floor(&self, floor: FloorId) -> Vec<DoorId> {
        self.doors
            .iter()
            .filter(|d| d.touches_floor(floor))
            .map(|d| d.id)
            .collect()
    }

    /// Staircase doors touching a floor (`SD(·)` in §IV-A).
    pub fn stair_doors_on_floor(&self, floor: FloorId) -> Vec<DoorId> {
        self.doors
            .iter()
            .filter(|d| d.kind.is_vertical() && d.touches_floor(floor))
            .map(|d| d.id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Intra-partition distances of §II-A
    // ------------------------------------------------------------------

    /// Intra-partition walking distance between two distinct doors of
    /// partition `v`: the planar Euclidean distance unless the venue declared
    /// an override (stairways). Returns [`UNREACHABLE`] when either door does
    /// not belong to the partition in the required direction (enter through
    /// `di`, leave through `dj`).
    pub fn intra_door_distance(&self, v: PartitionId, di: DoorId, dj: DoorId) -> f64 {
        if di == dj {
            return self.loop_distance(di, v);
        }
        if !self.d2p_enter(di).contains(&v) || !self.d2p_leave(dj).contains(&v) {
            return UNREACHABLE;
        }
        self.intra_door_distance_unchecked(v, di, dj)
    }

    /// [`IndoorSpace::intra_door_distance`] without the topology membership
    /// re-check, for callers that already iterate `P2DA(v)` × `P2D@(v)`
    /// (the door-graph builder runs this once per potential edge).
    #[inline]
    pub(crate) fn intra_door_distance_unchecked(
        &self,
        v: PartitionId,
        di: DoorId,
        dj: DoorId,
    ) -> f64 {
        if !self.intra_overrides.is_empty() {
            if let Ok(i) = self
                .intra_overrides
                .binary_search_by(|&(pv, pa, pb, _)| (pv, pa, pb).cmp(&(v, di, dj)))
            {
                return self.intra_overrides[i].3;
            }
        }
        let a = &self.doors[di.index()];
        let b = &self.doors[dj.index()];
        a.planar_distance(b)
    }

    /// `δd2d(di, dj)` for distinct doors: the minimum intra-partition distance
    /// over all partitions in `D2PA(di) ∩ D2P@(dj)`, or [`UNREACHABLE`] when
    /// the intersection is empty. For `di == dj` use [`IndoorSpace::loop_distance`],
    /// which needs the pertinent partition.
    pub fn d2d_distance(&self, di: DoorId, dj: DoorId) -> f64 {
        if di == dj {
            // Without a partition context the tightest interpretation is the
            // smallest loop cost over the partitions the door serves.
            return self
                .d2p_enter(di)
                .iter()
                .map(|&v| self.loop_distance(di, v))
                .fold(UNREACHABLE, f64::min);
        }
        self.partitions_between(di, dj)
            .into_iter()
            .map(|v| self.intra_door_distance(v, di, dj))
            .fold(UNREACHABLE, f64::min)
    }

    /// Same-door loop cost `δd2d(d, d)` inside partition `v`: twice the
    /// longest non-loop distance reachable inside the partition from the door
    /// (§II-A), unless overridden by the venue.
    pub fn loop_distance(&self, d: DoorId, v: PartitionId) -> f64 {
        if !self.d2p_enter(d).contains(&v) || !self.d2p_leave(d).contains(&v) {
            return UNREACHABLE;
        }
        if let Ok(i) = self
            .loop_overrides
            .binary_search_by(|&(pv, pd, _)| (pv, pd).cmp(&(v, d)))
        {
            return self.loop_overrides[i].2;
        }
        let door = &self.doors[d.index()];
        let partition = &self.partitions[v.index()];
        2.0 * partition.farthest_distance_from(&door.position)
    }

    /// `δpt2d(p, d)`: intra-partition distance from point `p` to door `d`,
    /// finite iff `d ∈ P2D@(v(p))` (the door can be used to leave `p`'s host
    /// partition).
    pub fn pt2d_distance(&self, p: &IndoorPoint, d: DoorId) -> f64 {
        let Ok(host) = self.host_partition(p) else {
            return UNREACHABLE;
        };
        if !self.p2d_leave(host).contains(&d) {
            return UNREACHABLE;
        }
        self.doors[d.index()].position.distance(&p.position)
    }

    /// `δd2pt(d, p)`: intra-partition distance from door `d` to point `p`,
    /// finite iff `d ∈ P2DA(v(p))` (the door can be used to enter `p`'s host
    /// partition).
    pub fn d2pt_distance(&self, d: DoorId, p: &IndoorPoint) -> f64 {
        let Ok(host) = self.host_partition(p) else {
            return UNREACHABLE;
        };
        if !self.p2d_enter(host).contains(&d) {
            return UNREACHABLE;
        }
        self.doors[d.index()].position.distance(&p.position)
    }

    // ------------------------------------------------------------------
    // Derived distances
    // ------------------------------------------------------------------

    /// Shortest indoor (graph) distance between two points, i.e. the `δs2t`
    /// used by the workload generator of §V-A1. Returns [`UNREACHABLE`] when
    /// no route exists.
    pub fn point_to_point_distance(&self, a: &IndoorPoint, b: &IndoorPoint) -> f64 {
        let Ok(va) = self.host_partition(a) else {
            return UNREACHABLE;
        };
        let Ok(vb) = self.host_partition(b) else {
            return UNREACHABLE;
        };
        let mut best = if va == vb {
            a.position.distance(&b.position)
        } else {
            UNREACHABLE
        };
        let sp = self.shortest_paths();
        for &dl in self.p2d_leave(va) {
            let start_cost = self.pt2d_distance(a, dl);
            if !start_cost.is_finite() {
                continue;
            }
            let dij = sp.from_door(dl, &Default::default());
            for &de in self.p2d_enter(vb) {
                let end_cost = self.d2pt_distance(de, b);
                if !end_cost.is_finite() {
                    continue;
                }
                let mid = if dl == de { 0.0 } else { dij.distance(de) };
                if mid.is_finite() {
                    best = best.min(start_cost + mid + end_cost);
                }
            }
        }
        best
    }

    /// Skeleton lower bound `|a, b|_L` between two indoor points (§IV-A).
    pub fn skeleton_distance(&self, a: &IndoorPoint, b: &IndoorPoint) -> f64 {
        self.skeleton.lower_bound_points(a, b)
    }

    /// Skeleton lower bound between a point and a door.
    pub fn skeleton_point_to_door(&self, p: &IndoorPoint, d: DoorId) -> f64 {
        let door = &self.doors[d.index()];
        self.skeleton
            .lower_bound(p.position, &[p.floor], door.position, &door.floors())
    }

    /// Skeleton lower bound between two doors.
    pub fn skeleton_door_to_door(&self, a: DoorId, b: DoorId) -> f64 {
        let da = &self.doors[a.index()];
        let db = &self.doors[b.index()];
        self.skeleton
            .lower_bound(da.position, &da.floors(), db.position, &db.floors())
    }

    /// Lower bound of the distance of any route from `ps` through partition
    /// `v` to `pt` (the quantity of Pruning Rule 3):
    /// `min over di ∈ P2DA(v), dj ∈ P2D@(v) of |ps,di|_L + δd2d(di,dj) + |dj,pt|_L`.
    pub fn partition_detour_lower_bound(
        &self,
        ps: &IndoorPoint,
        v: PartitionId,
        pt: &IndoorPoint,
    ) -> f64 {
        let mut best = UNREACHABLE;
        for &di in self.p2d_enter(v) {
            let first = self.skeleton_point_to_door(ps, di);
            if !first.is_finite() {
                continue;
            }
            for &dj in self.p2d_leave(v) {
                let mid = self.intra_door_distance(v, di, dj);
                let last = self.skeleton_point_to_door(pt, dj);
                if mid.is_finite() && last.is_finite() {
                    best = best.min(first + mid + last);
                }
            }
        }
        best
    }

    /// Lower bound of the distance from door `dk`, through partition `v`, to
    /// point `pt` — the `δLB(dk, vj, pt)` used in line 11 of Algorithm 6.
    pub fn door_via_partition_lower_bound(
        &self,
        dk: DoorId,
        v: PartitionId,
        pt: &IndoorPoint,
    ) -> f64 {
        let mut best = UNREACHABLE;
        for &di in self.p2d_enter(v) {
            let first = self.skeleton_door_to_door(dk, di);
            if !first.is_finite() {
                continue;
            }
            for &dj in self.p2d_leave(v) {
                let mid = self.intra_door_distance(v, di, dj);
                let last = self.skeleton_point_to_door(pt, dj);
                if mid.is_finite() && last.is_finite() {
                    best = best.min(first + mid + last);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::approx_eq;

    /// Builds a tiny two-room venue:
    ///
    /// ```text
    ///  +--------+--------+
    ///  |  v0    d0  v1   |
    ///  +--------+---d1---+   d1 leads outside v1 (exit only, one partition)
    /// ```
    fn two_rooms() -> IndoorSpace {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        b.add_floor(
            f,
            Rect::from_origin_size(Point::ORIGIN, 20.0, 10.0).unwrap(),
        );
        let v0 = b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::new(0.0, 0.0), 10.0, 10.0).unwrap(),
            Some("left".into()),
        );
        let v1 = b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::new(10.0, 0.0), 10.0, 10.0).unwrap(),
            Some("right".into()),
        );
        let d0 = b.add_door(Point::new(10.0, 5.0), f, DoorKind::Normal);
        b.connect_bidirectional(d0, v0, v1);
        let d1 = b.add_door(Point::new(15.0, 0.0), f, DoorKind::Normal);
        // d1 can only be used to leave v1 (a one-way exit).
        b.connect(d1, v1, false, true);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let s = two_rooms();
        assert_eq!(s.num_partitions(), 2);
        assert_eq!(s.num_doors(), 2);
        assert_eq!(s.partitions()[0].id, PartitionId(0));
        assert_eq!(s.doors()[1].id, DoorId(1));
        assert_eq!(s.floors(), vec![FloorId(0)]);
        assert!(s.floor_bounds(FloorId(0)).is_ok());
        assert!(s.floor_bounds(FloorId(7)).is_err());
    }

    #[test]
    fn topology_mappings_respect_directionality() {
        let s = two_rooms();
        let (v0, v1) = (PartitionId(0), PartitionId(1));
        let (d0, d1) = (DoorId(0), DoorId(1));
        assert_eq!(s.d2p_enter(d0), &[v0, v1]);
        assert_eq!(s.d2p_leave(d0), &[v0, v1]);
        // d1 is exit-only from v1: it cannot be used to enter any partition.
        assert!(s.d2p_enter(d1).is_empty());
        assert_eq!(s.d2p_leave(d1), &[v1]);
        assert_eq!(s.p2d_enter(v1), &[d0]);
        assert_eq!(s.p2d_leave(v1), &[d0, d1]);
        // Moving from d0 (entering v1) to d1 (leaving v1) is possible.
        assert_eq!(s.partitions_between(d0, d1), vec![v1]);
        // The reverse is not.
        assert!(s.partitions_between(d1, d0).is_empty());
        assert_eq!(s.partitions_behind(d0, v0), vec![v1]);
    }

    #[test]
    fn host_partition_lookup() {
        let s = two_rooms();
        let p = IndoorPoint::from_xy(2.0, 2.0, FloorId(0));
        assert_eq!(s.host_partition(&p).unwrap(), PartitionId(0));
        let p = IndoorPoint::from_xy(15.0, 2.0, FloorId(0));
        assert_eq!(s.host_partition(&p).unwrap(), PartitionId(1));
        let outside = IndoorPoint::from_xy(200.0, 2.0, FloorId(0));
        assert!(s.host_partition(&outside).is_err());
        let wrong_floor = IndoorPoint::from_xy(2.0, 2.0, FloorId(5));
        assert!(matches!(
            s.host_partition(&wrong_floor),
            Err(SpaceError::UnknownFloor(_))
        ));
    }

    #[test]
    fn intra_partition_distances() {
        let s = two_rooms();
        let (d0, d1) = (DoorId(0), DoorId(1));
        let v1 = PartitionId(1);
        // Euclidean between (10,5) and (15,0).
        assert!(approx_eq(
            s.intra_door_distance(v1, d0, d1),
            50.0_f64.sqrt()
        ));
        assert!(approx_eq(s.d2d_distance(d0, d1), 50.0_f64.sqrt()));
        // Not allowed in the reverse direction (d1 cannot be entered through).
        assert!(!s.intra_door_distance(v1, d1, d0).is_finite());
        assert!(!s.d2d_distance(d1, d0).is_finite());
    }

    #[test]
    fn point_door_distances_respect_direction() {
        let s = two_rooms();
        let p_right = IndoorPoint::from_xy(12.0, 5.0, FloorId(0));
        // d1 leaves v1, so pt2d is finite ...
        assert!(approx_eq(
            s.pt2d_distance(&p_right, DoorId(1)),
            34.0_f64.sqrt()
        ));
        // ... but cannot be used to enter v1.
        assert!(!s.d2pt_distance(DoorId(1), &p_right).is_finite());
        // d0 can do both.
        assert!(approx_eq(s.pt2d_distance(&p_right, DoorId(0)), 2.0));
        assert!(approx_eq(s.d2pt_distance(DoorId(0), &p_right), 2.0));
        // A door that is not connected to the host partition is unreachable.
        let p_left = IndoorPoint::from_xy(2.0, 5.0, FloorId(0));
        assert!(!s.pt2d_distance(&p_left, DoorId(1)).is_finite());
    }

    #[test]
    fn loop_distance_is_double_farthest() {
        let s = two_rooms();
        // Loop at d0 inside v0: farthest corner of v0 from (10,5) is (0,0) or
        // (0,10), both at sqrt(125).
        let expected = 2.0 * 125.0_f64.sqrt();
        assert!(approx_eq(
            s.loop_distance(DoorId(0), PartitionId(0)),
            expected
        ));
        // d1 cannot loop through v1 because it is not enterable.
        assert!(!s.loop_distance(DoorId(1), PartitionId(1)).is_finite());
    }

    #[test]
    fn point_to_point_distance_same_and_different_partitions() {
        let s = two_rooms();
        let a = IndoorPoint::from_xy(2.0, 5.0, FloorId(0));
        let b = IndoorPoint::from_xy(8.0, 5.0, FloorId(0));
        assert!(approx_eq(s.point_to_point_distance(&a, &b), 6.0));
        let c = IndoorPoint::from_xy(14.0, 5.0, FloorId(0));
        // Through d0 at (10,5): 8 + 4.
        assert!(approx_eq(s.point_to_point_distance(&a, &c), 12.0));
    }

    #[test]
    fn build_rejects_disconnected_elements() {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::ORIGIN, 5.0, 5.0).unwrap(),
            None,
        );
        assert!(matches!(
            b.build(),
            Err(SpaceError::DisconnectedPartition(_))
        ));

        let mut b = IndoorSpaceBuilder::new();
        let v = b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::ORIGIN, 5.0, 5.0).unwrap(),
            None,
        );
        let d = b.add_door(Point::new(5.0, 2.5), f, DoorKind::Normal);
        b.connect(d, v, true, true);
        b.add_door(Point::new(0.0, 2.5), f, DoorKind::Normal);
        assert!(matches!(b.build(), Err(SpaceError::DisconnectedDoor(_))));
    }

    #[test]
    fn build_rejects_floor_mismatch_and_bad_ids() {
        let f = FloorId(0);
        let mut b = IndoorSpaceBuilder::new();
        let v = b.add_partition(
            FloorId(3),
            PartitionKind::Room,
            Rect::from_origin_size(Point::ORIGIN, 5.0, 5.0).unwrap(),
            None,
        );
        let d = b.add_door(Point::new(5.0, 2.5), f, DoorKind::Normal);
        b.connect(d, v, true, true);
        assert!(matches!(b.build(), Err(SpaceError::FloorMismatch { .. })));

        let mut b = IndoorSpaceBuilder::new();
        let v = b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::ORIGIN, 5.0, 5.0).unwrap(),
            None,
        );
        b.connect(DoorId(42), v, true, true);
        assert!(matches!(b.build(), Err(SpaceError::UnknownDoor(_))));

        assert!(matches!(
            IndoorSpaceBuilder::new().build(),
            Err(SpaceError::EmptySpace)
        ));
    }

    #[test]
    fn build_rejects_dangling_override_endpoints() {
        let f = FloorId(0);
        let with_rooms = || {
            let mut b = IndoorSpaceBuilder::new();
            let v0 = b.add_partition(
                f,
                PartitionKind::Room,
                Rect::from_origin_size(Point::ORIGIN, 10.0, 10.0).unwrap(),
                None,
            );
            let v1 = b.add_partition(
                f,
                PartitionKind::Room,
                Rect::from_origin_size(Point::new(10.0, 0.0), 10.0, 10.0).unwrap(),
                None,
            );
            let d = b.add_door(Point::new(10.0, 5.0), f, DoorKind::Normal);
            b.connect_bidirectional(d, v0, v1);
            (b, v0, d)
        };

        let (mut b, _, d) = with_rooms();
        b.set_intra_distance(PartitionId(42), d, d, 3.0);
        assert!(matches!(b.build(), Err(SpaceError::UnknownPartition(_))));

        let (mut b, v0, d) = with_rooms();
        b.set_intra_distance(v0, d, DoorId(42), 3.0);
        assert!(matches!(b.build(), Err(SpaceError::UnknownDoor(_))));

        let (mut b, _, d) = with_rooms();
        b.set_loop_distance(PartitionId(42), d, 3.0);
        assert!(matches!(b.build(), Err(SpaceError::UnknownPartition(_))));

        let (mut b, v0, _) = with_rooms();
        b.set_loop_distance(v0, DoorId(42), 3.0);
        assert!(matches!(b.build(), Err(SpaceError::UnknownDoor(_))));
    }

    #[test]
    fn adopted_columns_reproduce_the_built_space() {
        let s = two_rooms();
        let adopted = IndoorSpace::adopt_columns(SpaceColumns::capture(&s, 25.0)).unwrap();
        assert_eq!(adopted.num_partitions(), s.num_partitions());
        assert_eq!(adopted.num_doors(), s.num_doors());
        assert_eq!(adopted.floors(), s.floors());
        assert_eq!(adopted.d2p_enter(DoorId(0)), s.d2p_enter(DoorId(0)));
        assert_eq!(
            adopted.p2d_leave(PartitionId(1)),
            s.p2d_leave(PartitionId(1))
        );
        assert_eq!(adopted.door_graph().num_edges(), s.door_graph().num_edges());
        let v1 = PartitionId(1);
        assert!(approx_eq(
            adopted.intra_door_distance(v1, DoorId(0), DoorId(1)),
            s.intra_door_distance(v1, DoorId(0), DoorId(1))
        ));
        let p = IndoorPoint::from_xy(15.0, 2.0, FloorId(0));
        assert_eq!(
            adopted.host_partition(&p).unwrap(),
            s.host_partition(&p).unwrap()
        );
        let a = IndoorPoint::from_xy(2.0, 5.0, FloorId(0));
        let c = IndoorPoint::from_xy(14.0, 5.0, FloorId(0));
        assert!(approx_eq(
            adopted.point_to_point_distance(&a, &c),
            s.point_to_point_distance(&a, &c)
        ));
    }

    #[test]
    fn adopt_columns_rejects_structural_defects() {
        let s = two_rooms();
        let capture = || SpaceColumns::capture(&s, 25.0);

        let mut cols = capture();
        cols.partitions.clear();
        assert!(matches!(
            IndoorSpace::adopt_columns(cols),
            Err(SpaceError::EmptySpace)
        ));

        let mut cols = capture();
        cols.partitions[1].id = PartitionId(7);
        assert!(matches!(
            IndoorSpace::adopt_columns(cols),
            Err(SpaceError::InvalidConfig(_))
        ));

        let mut cols = capture();
        cols.d2p_enter = Csr::from_pairs(s.num_doors(), vec![(0, PartitionId(99))]);
        assert!(matches!(
            IndoorSpace::adopt_columns(cols),
            Err(SpaceError::UnknownPartition(PartitionId(99)))
        ));

        let mut cols = capture();
        cols.p2d_enter = Csr::from_pairs(1, vec![(0, DoorId(0))]);
        assert!(matches!(
            IndoorSpace::adopt_columns(cols),
            Err(SpaceError::InvalidConfig(_))
        ));

        let mut cols = capture();
        cols.intra_overrides = vec![(PartitionId(0), DoorId(0), DoorId(42), 1.0)];
        assert!(matches!(
            IndoorSpace::adopt_columns(cols),
            Err(SpaceError::UnknownDoor(DoorId(42)))
        ));

        let mut cols = capture();
        cols.loop_overrides = vec![
            (PartitionId(1), DoorId(0), 1.0),
            (PartitionId(0), DoorId(0), 1.0),
        ];
        assert!(matches!(
            IndoorSpace::adopt_columns(cols),
            Err(SpaceError::InvalidConfig(_))
        ));

        let mut cols = capture();
        cols.door_graph = DoorGraph::empty();
        assert!(matches!(
            IndoorSpace::adopt_columns(cols),
            Err(SpaceError::InvalidConfig(_))
        ));
    }

    #[test]
    fn stats_and_floor_listings() {
        let s = two_rooms();
        assert_eq!(s.partitions_on_floor(FloorId(0)).len(), 2);
        assert_eq!(s.doors_on_floor(FloorId(0)).len(), 2);
        assert!(s.stair_doors_on_floor(FloorId(0)).is_empty());
        let stats = s.stats();
        assert_eq!(stats.partitions, 2);
        assert_eq!(stats.doors, 2);
        assert_eq!(stats.floors, 1);
    }
}
