//! Error types for indoor-space model construction and queries.

use crate::ids::{DoorId, FloorId, PartitionId};
use std::fmt;

/// Errors produced while building or querying an [`crate::IndoorSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// Geometry-level failure bubbled up from the geometry kernel.
    Geometry(indoor_geom::GeomError),
    /// A partition identifier does not exist in the space.
    UnknownPartition(PartitionId),
    /// A door identifier does not exist in the space.
    UnknownDoor(DoorId),
    /// A floor identifier does not exist in the space.
    UnknownFloor(FloorId),
    /// A door was connected to a partition on a different floor without being
    /// declared a stair/elevator door.
    FloorMismatch {
        /// Door involved.
        door: DoorId,
        /// Partition involved.
        partition: PartitionId,
    },
    /// A door has no connection at all and would be unreachable.
    DisconnectedDoor(DoorId),
    /// A partition has no door and would be unreachable.
    DisconnectedPartition(PartitionId),
    /// The point is not inside any partition of the venue.
    PointOutsideVenue {
        /// Floor on which the lookup was attempted.
        floor: FloorId,
    },
    /// A route was constructed with inconsistent items/partitions.
    MalformedRoute(String),
    /// The route violates the regularity principle of §II-B.
    IrregularRoute(String),
    /// The requested pair of items is not connected.
    Unreachable,
    /// The space has no floors / no partitions.
    EmptySpace,
    /// A generator or builder configuration is unusable (e.g. zero floors,
    /// a venue size that does not fit the requested layout). Carried as a
    /// human-readable usage message so callers can surface it directly.
    InvalidConfig(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::Geometry(e) => write!(f, "geometry error: {e}"),
            SpaceError::UnknownPartition(v) => write!(f, "unknown partition {v}"),
            SpaceError::UnknownDoor(d) => write!(f, "unknown door {d}"),
            SpaceError::UnknownFloor(fl) => write!(f, "unknown floor {fl}"),
            SpaceError::FloorMismatch { door, partition } => {
                write!(
                    f,
                    "door {door} and partition {partition} are on different floors"
                )
            }
            SpaceError::DisconnectedDoor(d) => write!(f, "door {d} has no partition connection"),
            SpaceError::DisconnectedPartition(v) => write!(f, "partition {v} has no door"),
            SpaceError::PointOutsideVenue { floor } => {
                write!(f, "point is outside every partition of floor {floor}")
            }
            SpaceError::MalformedRoute(msg) => write!(f, "malformed route: {msg}"),
            SpaceError::IrregularRoute(msg) => write!(f, "irregular route: {msg}"),
            SpaceError::Unreachable => write!(f, "items are not connected"),
            SpaceError::EmptySpace => write!(f, "indoor space has no partitions"),
            SpaceError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SpaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpaceError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<indoor_geom::GeomError> for SpaceError {
    fn from(e: indoor_geom::GeomError) -> Self {
        SpaceError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<SpaceError> = vec![
            SpaceError::UnknownPartition(PartitionId(3)),
            SpaceError::UnknownDoor(DoorId(4)),
            SpaceError::UnknownFloor(FloorId(1)),
            SpaceError::FloorMismatch {
                door: DoorId(1),
                partition: PartitionId(2),
            },
            SpaceError::DisconnectedDoor(DoorId(9)),
            SpaceError::DisconnectedPartition(PartitionId(9)),
            SpaceError::PointOutsideVenue { floor: FloorId(0) },
            SpaceError::MalformedRoute("x".into()),
            SpaceError::IrregularRoute("y".into()),
            SpaceError::Unreachable,
            SpaceError::EmptySpace,
            SpaceError::InvalidConfig("z".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn geometry_error_converts_and_sources() {
        let ge = indoor_geom::GeomError::NotRectilinear;
        let se: SpaceError = ge.clone().into();
        assert_eq!(se, SpaceError::Geometry(ge));
        assert!(std::error::Error::source(&se).is_some());
        assert!(std::error::Error::source(&SpaceError::Unreachable).is_none());
    }
}
