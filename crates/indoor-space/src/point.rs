//! Indoor points: a planar position plus the floor it lies on.

use crate::ids::FloorId;
use indoor_geom::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point inside the venue (`p` in the paper): planar coordinates plus floor.
///
/// Start and terminal points of an IKRQ are `IndoorPoint`s; doors also carry
/// an `IndoorPoint` position for distance computations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndoorPoint {
    /// Planar position on the floorplan, in metres.
    pub position: Point,
    /// Floor the point lies on.
    pub floor: FloorId,
}

impl IndoorPoint {
    /// Creates an indoor point.
    pub const fn new(position: Point, floor: FloorId) -> Self {
        IndoorPoint { position, floor }
    }

    /// Convenience constructor from raw coordinates.
    pub const fn from_xy(x: f64, y: f64, floor: FloorId) -> Self {
        IndoorPoint {
            position: Point::new(x, y),
            floor,
        }
    }

    /// Planar Euclidean distance to another indoor point **on the same
    /// floor**; `None` when the floors differ (planar distance is then
    /// meaningless and callers must go through the skeleton/graph distances).
    pub fn planar_distance(&self, other: &IndoorPoint) -> Option<f64> {
        (self.floor == other.floor).then(|| self.position.distance(&other.position))
    }

    /// Whether two indoor points share a floor.
    #[inline]
    pub fn same_floor(&self, other: &IndoorPoint) -> bool {
        self.floor == other.floor
    }
}

impl fmt::Display for IndoorPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.position, self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::approx_eq;

    #[test]
    fn planar_distance_same_floor() {
        let a = IndoorPoint::from_xy(0.0, 0.0, FloorId(0));
        let b = IndoorPoint::from_xy(3.0, 4.0, FloorId(0));
        assert!(approx_eq(a.planar_distance(&b).unwrap(), 5.0));
        assert!(a.same_floor(&b));
    }

    #[test]
    fn planar_distance_cross_floor_is_none() {
        let a = IndoorPoint::from_xy(0.0, 0.0, FloorId(0));
        let b = IndoorPoint::from_xy(3.0, 4.0, FloorId(1));
        assert!(a.planar_distance(&b).is_none());
        assert!(!a.same_floor(&b));
    }

    #[test]
    fn display_mentions_floor() {
        let a = IndoorPoint::from_xy(1.0, 2.0, FloorId(3));
        assert!(a.to_string().contains("F3"));
    }
}
