//! The skeleton-distance lower bound `|x, y|_L` of §IV-A.
//!
//! For two items on the same floor the lower bound is the planar Euclidean
//! distance. For items on different floors any actual route must pass through
//! staircase doors, so the bound is
//!
//! ```text
//! |xi, xj|_L = min over sdi ∈ SD(xi), sdj ∈ SD(xj)
//!              ( |xi, sdi|_E + δs2s(sdi, sdj) + |sdj, xj|_E )
//! ```
//!
//! where `SD(x)` is the set of staircase doors on `x`'s floor and
//! `δs2s` is the shortest distance between staircase doors through the
//! staircase network. The staircase network here uses planar Euclidean
//! distances between staircase doors of the same floor (a lower bound of any
//! indoor walk) and the declared stairway length for vertically connected
//! staircase doors, so the whole quantity lower-bounds the true indoor
//! distance.

use crate::ids::{DoorId, FloorId};
use crate::point::IndoorPoint;
use crate::space::IndoorSpace;
use crate::UNREACHABLE;
use indoor_geom::{OrderedF64, Point};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Precomputed skeleton-distance index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SkeletonIndex {
    /// Staircase doors per floor (`SD(·)`), sorted by door id.
    stair_doors_by_floor: BTreeMap<FloorId, Vec<DoorId>>,
    /// Positions of all staircase doors.
    positions: HashMap<DoorId, Point>,
    /// Dense index of each staircase door into the distance matrix.
    index_of: HashMap<DoorId, usize>,
    /// All-pairs shortest distances between staircase doors (`δs2s`),
    /// row-major over the dense index.
    s2s: Vec<f64>,
    /// Number of staircase doors.
    n: usize,
}

impl SkeletonIndex {
    /// An empty index (single-floor venues never consult the matrix).
    pub fn empty() -> Self {
        SkeletonIndex::default()
    }

    /// Builds the index from a space: collects staircase doors, assembles the
    /// staircase network and runs all-pairs Dijkstra over it.
    pub fn build(space: &IndoorSpace) -> Self {
        let mut stair_doors_by_floor: BTreeMap<FloorId, Vec<DoorId>> = BTreeMap::new();
        let mut positions = HashMap::new();
        let mut stair_doors: Vec<DoorId> = Vec::new();
        for door in space.doors() {
            if door.kind.is_vertical() {
                stair_doors.push(door.id);
                positions.insert(door.id, door.position);
                for floor in door.floors() {
                    stair_doors_by_floor.entry(floor).or_default().push(door.id);
                }
            }
        }
        for v in stair_doors_by_floor.values_mut() {
            v.sort();
            v.dedup();
        }
        let n = stair_doors.len();
        let index_of: HashMap<DoorId, usize> = stair_doors
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i))
            .collect();

        // Staircase network adjacency.
        //  * same-floor staircase doors: planar Euclidean distance,
        //  * vertically adjacent staircase doors (sharing a staircase
        //    partition): the intra-partition (stairway) distance declared by
        //    the venue.
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, &a) in stair_doors.iter().enumerate() {
            let da = space.door(a).expect("stair door exists");
            for (j, &b) in stair_doors.iter().enumerate() {
                if i == j {
                    continue;
                }
                let db = space.door(b).expect("stair door exists");
                let share_floor = da.floors().iter().any(|f| db.touches_floor(*f));
                if share_floor {
                    adj[i].push((j, da.position.distance(&db.position)));
                }
                // Connected through a common partition (e.g. the same
                // staircase partition links the door below and above): use the
                // real walking distance, which for stairs is the declared
                // stairway length.
                let via = space.partitions_between(a, b);
                if let Some(w) = via
                    .iter()
                    .map(|&v| space.intra_door_distance(v, a, b))
                    .filter(|w| w.is_finite())
                    .min_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                {
                    adj[i].push((j, w));
                }
            }
        }

        // All-pairs Dijkstra on the (small) staircase network.
        let mut s2s = vec![UNREACHABLE; n * n];
        for src in 0..n {
            let mut dist = vec![UNREACHABLE; n];
            dist[src] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((OrderedF64::new(0.0), src)));
            while let Some(Reverse((d, u))) = heap.pop() {
                let d = d.get();
                if d > dist[u] {
                    continue;
                }
                for &(v, w) in &adj[u] {
                    let nd = d + w;
                    if nd < dist[v] {
                        dist[v] = nd;
                        heap.push(Reverse((OrderedF64::new(nd), v)));
                    }
                }
            }
            s2s[src * n..(src + 1) * n].copy_from_slice(&dist);
        }

        SkeletonIndex {
            stair_doors_by_floor,
            positions,
            index_of,
            s2s,
            n,
        }
    }

    /// Staircase doors on a floor (`SD(floor)`).
    pub fn stair_doors(&self, floor: FloorId) -> &[DoorId] {
        self.stair_doors_by_floor
            .get(&floor)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of staircase doors in the venue.
    pub fn num_stair_doors(&self) -> usize {
        self.n
    }

    /// Shortest staircase-network distance between two staircase doors.
    pub fn s2s_distance(&self, a: DoorId, b: DoorId) -> f64 {
        if a == b {
            return 0.0;
        }
        match (self.index_of.get(&a), self.index_of.get(&b)) {
            (Some(&i), Some(&j)) => self.s2s[i * self.n + j],
            _ => UNREACHABLE,
        }
    }

    /// Lower bound `|a, b|_L` between two located items. Each item is a planar
    /// position plus the set of floors it touches (points and normal doors
    /// touch one floor, staircase doors touch two).
    pub fn lower_bound(
        &self,
        pos_a: Point,
        floors_a: &[FloorId],
        pos_b: Point,
        floors_b: &[FloorId],
    ) -> f64 {
        // Same floor: planar Euclidean distance.
        if floors_a.iter().any(|f| floors_b.contains(f)) {
            return pos_a.distance(&pos_b);
        }
        let mut best = UNREACHABLE;
        for fa in floors_a {
            for &sda in self.stair_doors(*fa) {
                let pa = self.positions[&sda];
                let head = pos_a.distance(&pa);
                for fb in floors_b {
                    for &sdb in self.stair_doors(*fb) {
                        let pb = self.positions[&sdb];
                        let mid = self.s2s_distance(sda, sdb);
                        if !mid.is_finite() {
                            continue;
                        }
                        best = best.min(head + mid + pos_b.distance(&pb));
                    }
                }
            }
        }
        best
    }

    /// Lower bound between two indoor points.
    pub fn lower_bound_points(&self, a: &IndoorPoint, b: &IndoorPoint) -> f64 {
        self.lower_bound(a.position, &[a.floor], b.position, &[b.floor])
    }

    /// Estimated heap size in bytes for memory accounting.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.s2s.capacity() * std::mem::size_of::<f64>()
            + self.positions.len() * (std::mem::size_of::<DoorId>() + std::mem::size_of::<Point>())
            + self.index_of.len() * (std::mem::size_of::<DoorId>() + std::mem::size_of::<usize>())
            + self
                .stair_doors_by_floor
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<DoorId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::door::DoorKind;
    use crate::partition::PartitionKind;
    use crate::space::IndoorSpaceBuilder;
    use indoor_geom::{approx_eq, Rect};

    /// Two floors, each one big room plus a staircase partition in the corner;
    /// the staircases are connected by a stair door with a 20 m stairway.
    fn two_floor_venue() -> IndoorSpace {
        let mut b = IndoorSpaceBuilder::new();
        let mut hall_doors = Vec::new();
        let mut stair_parts = Vec::new();
        for f in 0..2 {
            let floor = FloorId(f);
            b.add_floor(
                floor,
                Rect::from_origin_size(Point::ORIGIN, 100.0, 100.0).unwrap(),
            );
            let room = b.add_partition(
                floor,
                PartitionKind::Room,
                Rect::from_origin_size(Point::ORIGIN, 90.0, 100.0).unwrap(),
                None,
            );
            let stair = b.add_partition(
                floor,
                PartitionKind::Staircase,
                Rect::from_origin_size(Point::new(90.0, 0.0), 10.0, 10.0).unwrap(),
                None,
            );
            let hall_door = b.add_door(Point::new(90.0, 5.0), floor, DoorKind::Normal);
            b.connect_bidirectional(hall_door, room, stair);
            hall_doors.push(hall_door);
            stair_parts.push(stair);
        }
        // Stair door connecting the two staircase partitions, 10 m from each
        // hallway door so a full floor change costs 20 m.
        let sd = b.add_door(Point::new(95.0, 5.0), FloorId(0), DoorKind::Stair);
        b.connect_bidirectional(sd, stair_parts[0], stair_parts[1]);
        b.set_intra_distance(stair_parts[0], hall_doors[0], sd, 10.0);
        b.set_intra_distance(stair_parts[1], hall_doors[1], sd, 10.0);
        b.build().unwrap()
    }

    #[test]
    fn same_floor_lower_bound_is_euclidean() {
        let s = two_floor_venue();
        let a = IndoorPoint::from_xy(0.0, 0.0, FloorId(0));
        let b = IndoorPoint::from_xy(30.0, 40.0, FloorId(0));
        assert!(approx_eq(s.skeleton_distance(&a, &b), 50.0));
    }

    #[test]
    fn cross_floor_lower_bound_goes_through_stairs() {
        let s = two_floor_venue();
        let a = IndoorPoint::from_xy(95.0, 5.0, FloorId(0));
        let b = IndoorPoint::from_xy(95.0, 5.0, FloorId(1));
        // Both points sit exactly on the stair door: bound is 0 + 0 + 0.
        assert!(approx_eq(s.skeleton_distance(&a, &b), 0.0));
        let c = IndoorPoint::from_xy(45.0, 5.0, FloorId(1));
        // |a, sd| = 0, s2s = 0, |sd, c| = 50.
        assert!(approx_eq(s.skeleton_distance(&a, &c), 50.0));
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        let s = two_floor_venue();
        let a = IndoorPoint::from_xy(10.0, 5.0, FloorId(0));
        let b = IndoorPoint::from_xy(10.0, 5.0, FloorId(1));
        let lb = s.skeleton_distance(&a, &b);
        let real = s.point_to_point_distance(&a, &b);
        assert!(real.is_finite());
        assert!(lb <= real + 1e-9, "lb {lb} must be <= real {real}");
    }

    #[test]
    fn stair_door_listing() {
        let s = two_floor_venue();
        assert_eq!(s.skeleton().num_stair_doors(), 1);
        assert_eq!(s.skeleton().stair_doors(FloorId(0)).len(), 1);
        assert_eq!(s.skeleton().stair_doors(FloorId(1)).len(), 1);
        assert!(s.skeleton().stair_doors(FloorId(9)).is_empty());
        assert!(s.skeleton().estimated_bytes() > 0);
    }

    #[test]
    fn s2s_distance_identity_and_unknown() {
        let s = two_floor_venue();
        let sd = s.stair_doors_on_floor(FloorId(0))[0];
        assert!(approx_eq(s.skeleton().s2s_distance(sd, sd), 0.0));
        assert!(!s.skeleton().s2s_distance(sd, DoorId(999)).is_finite());
    }

    #[test]
    fn cross_floor_unreachable_without_stairs() {
        // Two floors with no stair door at all: the lower bound is infinite,
        // which is still a valid lower bound of an unreachable pair.
        let mut b = IndoorSpaceBuilder::new();
        for f in 0..2 {
            let floor = FloorId(f);
            let room = b.add_partition(
                floor,
                PartitionKind::Room,
                Rect::from_origin_size(Point::ORIGIN, 50.0, 50.0).unwrap(),
                None,
            );
            let d = b.add_door(Point::new(50.0, 25.0), floor, DoorKind::Normal);
            b.connect(d, room, true, true);
        }
        let s = b.build().unwrap();
        let a = IndoorPoint::from_xy(10.0, 10.0, FloorId(0));
        let c = IndoorPoint::from_xy(10.0, 10.0, FloorId(1));
        assert!(!s.skeleton_distance(&a, &c).is_finite());
    }
}
