//! The directed door connectivity graph derived from an [`IndoorSpace`].
//!
//! Nodes are doors. A directed edge `di → dj` labelled with partition `v`
//! exists when one can enter `v` through `di` and leave it through `dj`
//! (`v ∈ D2PA(di) ∩ D2P@(dj)` and `di ≠ dj`), weighted with the
//! intra-partition walking distance. Same-door loops are *not* edges of the
//! graph — they never shorten a path — and are handled at the route level by
//! the search algorithms (Lemma 2 of the paper).

use crate::ids::{DoorId, PartitionId};
use crate::space::IndoorSpace;
use serde::{Deserialize, Serialize};

/// One outgoing edge of the door graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoorGraphEdge {
    /// Destination door.
    pub to: DoorId,
    /// The partition traversed between the two doors.
    pub via: PartitionId,
    /// Intra-partition walking distance in metres.
    pub weight: f64,
}

/// Directed weighted graph over doors in CSR form: one flat edge array plus
/// `n + 1` offsets, instead of one heap-allocated `Vec` per door. Dijkstra's
/// relaxation loop walks `edges_from` for every popped node; the flat layout
/// keeps those reads cache-linear and the build free of per-node allocations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DoorGraph {
    /// `n + 1` positions into `edges`; door `i`'s outgoing edges are
    /// `edges[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// All edges, grouped by source door, each group sorted by `(to, via)`.
    edges: Vec<DoorGraphEdge>,
}

impl DoorGraph {
    /// An empty graph (used as a placeholder while the space is being built).
    pub fn empty() -> Self {
        DoorGraph::default()
    }

    /// Builds the graph from the topology and distances of `space`.
    pub fn build(space: &IndoorSpace) -> Self {
        let n = space.num_doors();
        // Collect `(from, edge)` pairs flat, then one sort groups them by
        // source and orders every neighbour list by destination then
        // partition — the same deterministic order as the old per-node sort.
        let mut flat: Vec<(DoorId, DoorGraphEdge)> = Vec::new();
        for partition in space.partitions() {
            let v = partition.id;
            for &di in space.p2d_enter(v) {
                for &dj in space.p2d_leave(v) {
                    if di == dj {
                        continue;
                    }
                    let weight = space.intra_door_distance_unchecked(v, di, dj);
                    if !weight.is_finite() {
                        continue;
                    }
                    flat.push((
                        di,
                        DoorGraphEdge {
                            to: dj,
                            via: v,
                            weight,
                        },
                    ));
                }
            }
        }
        flat.sort_unstable_by_key(|(from, e)| (*from, e.to, e.via));
        let mut offsets = vec![0u32; n + 1];
        for (from, _) in &flat {
            offsets[from.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let edges = flat.into_iter().map(|(_, e)| e).collect();
        DoorGraph { offsets, edges }
    }

    /// Adopts an already-flat graph (e.g. decoded from a columnar venue file)
    /// after validating its shape and value ranges, so venue loaders can skip
    /// the `O(P · d²)` rebuild entirely. Returns a human-readable reason on
    /// any inconsistency so callers can degrade to a rebuild.
    pub fn from_flat(
        num_doors: usize,
        num_partitions: usize,
        offsets: Vec<u32>,
        edges: Vec<DoorGraphEdge>,
    ) -> std::result::Result<Self, String> {
        if offsets.len() != num_doors + 1 {
            return Err(format!(
                "door graph offset table has {} entries for {} doors",
                offsets.len(),
                num_doors
            ));
        }
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("door graph offsets are not monotone from 0".to_string());
        }
        if offsets[num_doors] as usize != edges.len() {
            return Err(format!(
                "door graph offsets end at {} but {} edges are stored",
                offsets[num_doors],
                edges.len()
            ));
        }
        for e in &edges {
            if e.to.index() >= num_doors {
                return Err(format!("door graph edge targets unknown door {}", e.to));
            }
            if e.via.index() >= num_partitions {
                return Err(format!(
                    "door graph edge crosses unknown partition {}",
                    e.via
                ));
            }
            if !e.weight.is_finite() {
                return Err("door graph edge has a non-finite weight".to_string());
            }
        }
        Ok(DoorGraph { offsets, edges })
    }

    /// The `n + 1` offset table, exposed so persistence layers can write the
    /// graph as flat columns.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// All edges, grouped by source door.
    pub fn edges(&self) -> &[DoorGraphEdge] {
        &self.edges
    }

    /// Number of door nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing edges of a door.
    #[inline]
    pub fn edges_from(&self, d: DoorId) -> &[DoorGraphEdge] {
        let i = d.index();
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&a), Some(&b)) => &self.edges[a as usize..b as usize],
            _ => &[],
        }
    }

    /// The cheapest edge from `from` to `to`, if any.
    pub fn edge_between(&self, from: DoorId, to: DoorId) -> Option<&DoorGraphEdge> {
        self.edges_from(from)
            .iter()
            .filter(|e| e.to == to)
            .min_by(|a, b| {
                a.weight
                    .partial_cmp(&b.weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Estimated heap size in bytes, used by the engine's memory accounting.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.edges.capacity() * std::mem::size_of::<DoorGraphEdge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::door::DoorKind;
    use crate::ids::FloorId;
    use crate::partition::PartitionKind;
    use crate::space::IndoorSpaceBuilder;
    use indoor_geom::{approx_eq, Point, Rect};

    /// Three rooms in a row: v0 -d0- v1 -d1- v2, plus a one-way exit d2 from v2 to v0.
    fn corridor() -> IndoorSpace {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        let mut rooms = Vec::new();
        for i in 0..3 {
            rooms.push(b.add_partition(
                f,
                PartitionKind::Room,
                Rect::from_origin_size(Point::new(i as f64 * 10.0, 0.0), 10.0, 10.0).unwrap(),
                None,
            ));
        }
        let d0 = b.add_door(Point::new(10.0, 5.0), f, DoorKind::Normal);
        b.connect_bidirectional(d0, rooms[0], rooms[1]);
        let d1 = b.add_door(Point::new(20.0, 5.0), f, DoorKind::Normal);
        b.connect_bidirectional(d1, rooms[1], rooms[2]);
        // A one-way door from v2 into v0 (can enter v0, can leave v2).
        let d2 = b.add_door(Point::new(0.0, 0.0), f, DoorKind::Normal);
        b.connect(d2, rooms[2], false, true);
        b.connect(d2, rooms[0], true, false);
        b.build().unwrap()
    }

    #[test]
    fn graph_edges_follow_topology() {
        let s = corridor();
        let g = s.door_graph();
        assert_eq!(g.num_nodes(), 3);
        // d0 enters v0 or v1; from v1 it can leave via d1: edge d0->d1.
        let e = g.edge_between(DoorId(0), DoorId(1)).unwrap();
        assert_eq!(e.via, PartitionId(1));
        assert!(approx_eq(e.weight, 10.0));
        // d1 enters v2, leaves via d2 (the one-way exit): edge d1->d2.
        assert!(g.edge_between(DoorId(1), DoorId(2)).is_some());
        // d2 only *enters* v0, and v0's only leavable door is d0: edge d2->d0.
        let e = g.edge_between(DoorId(2), DoorId(0)).unwrap();
        assert_eq!(e.via, PartitionId(0));
        // No edge d0 -> d2 in the reverse direction through v0 (d2 is not leavable from v0).
        assert!(g.edge_between(DoorId(0), DoorId(2)).map(|e| e.via) != Some(PartitionId(0)));
        assert!(g.num_edges() >= 4);
        assert!(g.estimated_bytes() > 0);
    }

    #[test]
    fn edges_are_sorted_and_bounds_safe() {
        let s = corridor();
        let g = s.door_graph();
        let edges = g.edges_from(DoorId(0));
        let mut sorted = edges.to_vec();
        sorted.sort_by_key(|e| (e.to, e.via));
        assert_eq!(edges, sorted.as_slice());
        assert!(g.edges_from(DoorId(99)).is_empty());
        assert!(g.edge_between(DoorId(0), DoorId(99)).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = DoorGraph::empty();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn from_flat_round_trips_and_rejects_bad_shapes() {
        let s = corridor();
        let g = s.door_graph();
        let back = DoorGraph::from_flat(
            s.num_doors(),
            s.num_partitions(),
            g.offsets().to_vec(),
            g.edges().to_vec(),
        )
        .unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.edges_from(DoorId(0)), g.edges_from(DoorId(0)));

        // Wrong offset length, dangling door, dangling partition, bad weight.
        assert!(DoorGraph::from_flat(
            1,
            s.num_partitions(),
            g.offsets().to_vec(),
            g.edges().to_vec()
        )
        .is_err());
        let mut edges = g.edges().to_vec();
        edges[0].to = DoorId(99);
        assert!(DoorGraph::from_flat(
            s.num_doors(),
            s.num_partitions(),
            g.offsets().to_vec(),
            edges
        )
        .is_err());
        let mut edges = g.edges().to_vec();
        edges[0].via = PartitionId(99);
        assert!(DoorGraph::from_flat(
            s.num_doors(),
            s.num_partitions(),
            g.offsets().to_vec(),
            edges
        )
        .is_err());
        let mut edges = g.edges().to_vec();
        edges[0].weight = f64::INFINITY;
        assert!(DoorGraph::from_flat(
            s.num_doors(),
            s.num_partitions(),
            g.offsets().to_vec(),
            edges
        )
        .is_err());
    }
}
