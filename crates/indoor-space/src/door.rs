//! Doors: the connection points between partitions.

use crate::ids::{DoorId, FloorId};
use crate::point::IndoorPoint;
use indoor_geom::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The functional kind of a door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DoorKind {
    /// A regular door between two partitions on the same floor (or between a
    /// partition and the outside, in which case it connects one partition).
    Normal,
    /// A staircase door: the landing door of a stairway connecting the
    /// staircase partitions of two adjacent floors. Staircase doors are the
    /// nodes of the skeleton-distance network of §IV-A.
    Stair,
    /// An elevator door connecting elevator partitions of two floors
    /// (future-work entity from §VII).
    Elevator,
}

impl DoorKind {
    /// Whether the door connects partitions on different floors.
    pub fn is_vertical(self) -> bool {
        matches!(self, DoorKind::Stair | DoorKind::Elevator)
    }
}

/// A door in the indoor space.
///
/// A door's topological role (which partitions can be entered or left through
/// it, i.e. the `D2PA`/`D2P@` mappings) is stored in [`crate::IndoorSpace`];
/// the `Door` struct holds its identity and geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Door {
    /// Identifier assigned by the builder.
    pub id: DoorId,
    /// Planar position of the door.
    pub position: Point,
    /// Floor of the door. For vertical doors (stairs, elevators) this is the
    /// *lower* of the two floors the door touches; [`Door::floors`] returns
    /// both.
    pub floor: FloorId,
    /// Kind of door.
    pub kind: DoorKind,
}

impl Door {
    /// All floors the door touches: one for normal doors, the lower and upper
    /// floor for vertical connector doors.
    pub fn floors(&self) -> Vec<FloorId> {
        if self.kind.is_vertical() {
            vec![self.floor, FloorId(self.floor.0 + 1)]
        } else {
            vec![self.floor]
        }
    }

    /// Whether the door touches the given floor.
    pub fn touches_floor(&self, floor: FloorId) -> bool {
        self.floors().contains(&floor)
    }

    /// The door's position as an [`IndoorPoint`] on its base floor.
    pub fn indoor_point(&self) -> IndoorPoint {
        IndoorPoint::new(self.position, self.floor)
    }

    /// Planar Euclidean distance to another door, ignoring floors. Only
    /// meaningful for doors of the same partition; the space model guards the
    /// contexts in which it is used.
    pub fn planar_distance(&self, other: &Door) -> f64 {
        self.position.distance(&other.position)
    }
}

impl fmt::Display for Door {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}{}",
            self.id,
            self.floor,
            if self.kind.is_vertical() { "+" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::approx_eq;

    #[test]
    fn normal_door_touches_single_floor() {
        let d = Door {
            id: DoorId(0),
            position: Point::new(1.0, 2.0),
            floor: FloorId(0),
            kind: DoorKind::Normal,
        };
        assert_eq!(d.floors(), vec![FloorId(0)]);
        assert!(d.touches_floor(FloorId(0)));
        assert!(!d.touches_floor(FloorId(1)));
        assert!(!d.kind.is_vertical());
    }

    #[test]
    fn stair_door_touches_two_floors() {
        let d = Door {
            id: DoorId(1),
            position: Point::new(5.0, 5.0),
            floor: FloorId(2),
            kind: DoorKind::Stair,
        };
        assert_eq!(d.floors(), vec![FloorId(2), FloorId(3)]);
        assert!(d.touches_floor(FloorId(2)));
        assert!(d.touches_floor(FloorId(3)));
        assert!(!d.touches_floor(FloorId(4)));
        assert!(d.kind.is_vertical());
        assert!(d.to_string().ends_with('+'));
    }

    #[test]
    fn planar_distance_between_doors() {
        let a = Door {
            id: DoorId(0),
            position: Point::new(0.0, 0.0),
            floor: FloorId(0),
            kind: DoorKind::Normal,
        };
        let b = Door {
            id: DoorId(1),
            position: Point::new(6.0, 8.0),
            floor: FloorId(0),
            kind: DoorKind::Normal,
        };
        assert!(approx_eq(a.planar_distance(&b), 10.0));
        assert_eq!(a.indoor_point().floor, FloorId(0));
    }
}
