//! Indoor partitions: the basic indoor regions of the model.
//!
//! "A partition is a basic indoor region with clear boundaries. Examples are
//! rooms, staircases, and booths." (paper, footnote 2)

use crate::ids::{FloorId, PartitionId};
use indoor_geom::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The functional kind of a partition. The kind does not change routing
/// semantics except for staircases/elevators, whose intra-partition distances
/// are configured explicitly by the venue builder (walking costs on stairs are
/// not planar Euclidean distances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionKind {
    /// A room: shop, office, gate area, booth, ...
    Room,
    /// A regular hallway cell obtained from decomposing an irregular hallway.
    Hallway,
    /// A staircase partition on a specific floor.
    Staircase,
    /// An elevator cabin/shaft access on a specific floor (future-work entity
    /// from §VII, exercised by the examples).
    Elevator,
}

impl PartitionKind {
    /// Whether the partition moves people between floors.
    pub fn is_vertical_connector(self) -> bool {
        matches!(self, PartitionKind::Staircase | PartitionKind::Elevator)
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PartitionKind::Room => "room",
            PartitionKind::Hallway => "hallway",
            PartitionKind::Staircase => "staircase",
            PartitionKind::Elevator => "elevator",
        }
    }
}

impl fmt::Display for PartitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An indoor partition: identifier, floor, functional kind and footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Identifier assigned by the builder.
    pub id: PartitionId,
    /// Floor the partition belongs to.
    pub floor: FloorId,
    /// Functional kind.
    pub kind: PartitionKind,
    /// Axis-aligned footprint on the floorplan.
    pub footprint: Rect,
    /// Optional display name (e.g. the room label on the floorplan). The
    /// semantic identity word of a partition lives in `indoor-keywords`, not
    /// here; this is purely for debugging and rendering.
    pub name: Option<String>,
}

impl Partition {
    /// Geometric centre of the partition.
    pub fn center(&self) -> Point {
        self.footprint.center()
    }

    /// Area of the partition in square metres.
    pub fn area(&self) -> f64 {
        self.footprint.area()
    }

    /// Whether the planar point lies inside the partition footprint
    /// (boundary inclusive).
    pub fn contains_point(&self, p: &Point) -> bool {
        self.footprint.contains(p)
    }

    /// The farthest distance from `from` to any point of the partition; the
    /// paper's same-door loop cost `δd2d(d, d)` is twice this value for the
    /// pertinent door and partition.
    pub fn farthest_distance_from(&self, from: &Point) -> f64 {
        self.footprint.max_distance_to_point(from)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} on {})", self.id, self.kind, self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::approx_eq;

    fn sample() -> Partition {
        Partition {
            id: PartitionId(1),
            floor: FloorId(0),
            kind: PartitionKind::Room,
            footprint: Rect::from_origin_size(Point::new(10.0, 10.0), 6.0, 8.0).unwrap(),
            name: Some("zara".into()),
        }
    }

    #[test]
    fn kind_classification() {
        assert!(PartitionKind::Staircase.is_vertical_connector());
        assert!(PartitionKind::Elevator.is_vertical_connector());
        assert!(!PartitionKind::Room.is_vertical_connector());
        assert_eq!(PartitionKind::Hallway.to_string(), "hallway");
    }

    #[test]
    fn geometry_helpers() {
        let p = sample();
        assert!(p.center().approx_eq(&Point::new(13.0, 14.0)));
        assert!(approx_eq(p.area(), 48.0));
        assert!(p.contains_point(&Point::new(12.0, 12.0)));
        assert!(!p.contains_point(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn farthest_distance_is_to_opposite_corner() {
        let p = sample();
        // From the lower-left corner to the upper-right corner.
        let d = p.farthest_distance_from(&Point::new(10.0, 10.0));
        assert!(approx_eq(d, (36.0_f64 + 64.0).sqrt()));
    }

    #[test]
    fn display_contains_id_kind_floor() {
        let s = sample().to_string();
        assert!(s.contains("v1"));
        assert!(s.contains("room"));
        assert!(s.contains("F0"));
    }
}
