//! # indoor-space
//!
//! The indoor space model underlying the Indoor Top-k Keyword-aware Routing
//! Query (IKRQ, ICDE 2020) reproduction.
//!
//! The model follows the foundation of Lu et al. (ICDE 2012), which the paper
//! builds on (its reference \[13\]):
//!
//! * an indoor venue is a set of **partitions** (rooms, hallway cells,
//!   staircases) distributed over **floors**,
//! * partitions are connected by **doors**, each with explicit directionality:
//!   `D2PA(d)` is the set of partitions one can *enter* through `d` and
//!   `D2P@(d)` the set of partitions one can *leave* through `d`; the inverse
//!   mappings `P2DA(v)` / `P2D@(v)` give the enterable / leaveable doors of a
//!   partition,
//! * movement is door-to-door within a common partition, with the
//!   intra-partition distances `δd2d`, `δpt2d`, `δd2pt` of §II-A,
//! * a **route** is a sequence of doors between two items (points or doors),
//!   subject to the *regularity principle* of §II-B,
//! * the **skeleton distance** `|x, y|_L` of §IV-A provides a cheap lower
//!   bound on indoor distance, built from the staircase-door network.
//!
//! On top of the raw model the crate provides a directed **door graph**,
//! Dijkstra-based shortest paths with door exclusion (needed for the global
//! regularity checks of Algorithms 5 and 6), an all-pairs door distance
//! matrix (used by the query generator and the KoE* variant), and venue
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod door;
pub mod door_graph;
pub mod error;
pub mod ids;
pub mod matrix;
pub mod partition;
pub mod point;
pub mod route;
pub mod shortest_path;
pub mod skeleton;
pub mod space;
pub mod stats;

pub use csr::Csr;
pub use door::{Door, DoorKind};
pub use door_graph::{DoorGraph, DoorGraphEdge};
pub use error::SpaceError;
pub use ids::{DoorId, FloorId, PartitionId};
pub use matrix::DoorMatrix;
pub use partition::{Partition, PartitionKind};
pub use point::IndoorPoint;
pub use route::{Route, RouteEnd, RouteItem};
pub use shortest_path::{DijkstraResult, ShortestPaths};
pub use skeleton::SkeletonIndex;
pub use space::{IndoorSpace, IndoorSpaceBuilder, SpaceColumns};
pub use stats::SpaceStats;

/// Result alias for fallible indoor-space operations.
pub type Result<T> = std::result::Result<T, SpaceError>;

/// Distance value used to mark unreachable item pairs, mirroring the paper's
/// use of `∞` in the distance definitions of §II-A.
pub const UNREACHABLE: f64 = f64::INFINITY;

/// Commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::{
        Door, DoorGraph, DoorId, DoorKind, DoorMatrix, FloorId, IndoorPoint, IndoorSpace,
        IndoorSpaceBuilder, Partition, PartitionId, PartitionKind, Route, RouteEnd, RouteItem,
        SkeletonIndex, SpaceError, SpaceStats,
    };
}
