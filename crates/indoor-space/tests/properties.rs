//! Property-based tests of the indoor space model, exercised on randomly
//! generated corridor venues: the skeleton distance really is a lower bound
//! of the graph distance (the property every pruning rule relies on), the
//! Dijkstra distances satisfy the metric axioms of a shortest-path function,
//! the all-pairs door matrix agrees with on-the-fly Dijkstra, and routes
//! built through the regularity API stay regular with additive distances.

use indoor_geom::{Point, Rect};
use indoor_space::{
    DoorId, DoorKind, DoorMatrix, FloorId, IndoorPoint, IndoorSpace, IndoorSpaceBuilder,
    PartitionKind,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Parameters of a random corridor venue: a single-floor corridor with
/// `rooms` rooms on each side, every room connected to the corridor cell in
/// front of it, plus optional second doors, and a second floor connected by a
/// staircase when `two_floors` is set.
#[derive(Debug, Clone)]
struct VenueSpec {
    rooms: usize,
    room_width: f64,
    room_depth: f64,
    corridor_width: f64,
    second_doors: Vec<bool>,
    two_floors: bool,
    stairway_length: f64,
}

fn arb_spec() -> impl Strategy<Value = VenueSpec> {
    (
        2usize..7,
        6.0f64..20.0,
        5.0f64..15.0,
        3.0f64..8.0,
        proptest::collection::vec(proptest::bool::ANY, 7),
        proptest::bool::ANY,
        10.0f64..40.0,
    )
        .prop_map(
            |(
                rooms,
                room_width,
                room_depth,
                corridor_width,
                second_doors,
                two_floors,
                stairway_length,
            )| VenueSpec {
                rooms,
                room_width,
                room_depth,
                corridor_width,
                second_doors,
                two_floors,
                stairway_length,
            },
        )
}

/// Builds the venue described by a spec. Returns the space plus one interior
/// point per room (in id order) usable as query endpoints.
fn build_venue(spec: &VenueSpec) -> (IndoorSpace, Vec<IndoorPoint>) {
    let mut b = IndoorSpaceBuilder::new().with_grid_cell(10.0);
    let mut points = Vec::new();
    let floors = if spec.two_floors { 2 } else { 1 };
    let total_width = spec.room_width * spec.rooms as f64;
    let mut stair_partitions = Vec::new();

    for f in 0..floors {
        let floor = FloorId(f);
        b.add_floor(
            floor,
            Rect::from_origin_size(
                Point::ORIGIN,
                total_width,
                spec.room_depth * 2.0 + spec.corridor_width,
            )
            .unwrap(),
        );
        // Corridor: one cell per room column.
        let corridor_y0 = spec.room_depth;
        let corridor_y1 = spec.room_depth + spec.corridor_width;
        let mut corridor_cells = Vec::new();
        for i in 0..spec.rooms {
            let x0 = i as f64 * spec.room_width;
            let cell = b.add_partition(
                floor,
                PartitionKind::Hallway,
                Rect::new(
                    Point::new(x0, corridor_y0),
                    Point::new(x0 + spec.room_width, corridor_y1),
                )
                .unwrap(),
                Some(format!("hall-{f}-{i}")),
            );
            corridor_cells.push(cell);
            if i > 0 {
                let d = b.add_door(
                    Point::new(x0, (corridor_y0 + corridor_y1) / 2.0),
                    floor,
                    DoorKind::Normal,
                );
                b.connect_bidirectional(d, corridor_cells[i - 1], cell);
            }
        }
        // Rooms south and north of the corridor.
        #[allow(clippy::needless_range_loop)] // `i` also positions the rooms
        for i in 0..spec.rooms {
            let x0 = i as f64 * spec.room_width;
            for (side, y0, y1, door_y) in [
                ("s", 0.0, spec.room_depth, corridor_y0),
                ("n", corridor_y1, corridor_y1 + spec.room_depth, corridor_y1),
            ] {
                let room = b.add_partition(
                    floor,
                    PartitionKind::Room,
                    Rect::new(Point::new(x0, y0), Point::new(x0 + spec.room_width, y1)).unwrap(),
                    Some(format!("room-{f}-{i}-{side}")),
                );
                let d = b.add_door(
                    Point::new(x0 + spec.room_width / 2.0, door_y),
                    floor,
                    DoorKind::Normal,
                );
                b.connect_bidirectional(d, room, corridor_cells[i]);
                if spec.second_doors[i % spec.second_doors.len()] && spec.room_width > 8.0 {
                    let d2 = b.add_door(
                        Point::new(x0 + spec.room_width * 0.25, door_y),
                        floor,
                        DoorKind::Normal,
                    );
                    b.connect_bidirectional(d2, room, corridor_cells[i]);
                }
                if f == 0 {
                    points.push(IndoorPoint::from_xy(
                        x0 + spec.room_width / 2.0,
                        (y0 + y1) / 2.0,
                        floor,
                    ));
                }
            }
        }
        // Staircase partition at the west end of the corridor.
        if spec.two_floors {
            let stair = b.add_partition(
                floor,
                PartitionKind::Staircase,
                Rect::new(Point::new(0.0, corridor_y0), Point::new(2.0, corridor_y1)).unwrap(),
                Some(format!("stair-{f}")),
            );
            let d = b.add_door(
                Point::new(2.0, (corridor_y0 + corridor_y1) / 2.0),
                floor,
                DoorKind::Normal,
            );
            b.connect_bidirectional(d, stair, corridor_cells[0]);
            stair_partitions.push(stair);
        }
    }
    // Connect the staircases of adjacent floors with a stair door whose walk
    // cost is the stairway length.
    if spec.two_floors {
        let d = b.add_door(
            Point::new(1.0, spec.room_depth + 1.0),
            FloorId(0),
            DoorKind::Stair,
        );
        b.connect_bidirectional(d, stair_partitions[0], stair_partitions[1]);
        for &stair in &stair_partitions {
            for other in 0..2u32 {
                let _ = other;
                b.set_loop_distance(stair, d, 2.0 * spec.stairway_length);
            }
        }
        // Walking from the corridor door of the staircase to the stair door
        // costs the stairway length.
        // (Overrides are symmetric; identify the corridor doors by lookup
        //  after build is harder, so set a conservative override on the loop
        //  only — the planar distances inside the tiny staircase are already
        //  small and do not violate any lower bound.)
    }
    (b.build().unwrap(), points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The skeleton distance is a lower bound of the realised indoor
    /// distance between any two room points — the property Pruning Rules
    /// 1–4 rely on for correctness.
    #[test]
    fn skeleton_distance_lower_bounds_the_graph_distance(
        spec in arb_spec(),
        i in 0usize..100,
        j in 0usize..100,
    ) {
        let (space, points) = build_venue(&spec);
        let a = points[i % points.len()];
        let b = points[j % points.len()];
        let lower = space.skeleton_distance(&a, &b);
        let actual = space.point_to_point_distance(&a, &b);
        prop_assert!(actual.is_finite(), "corridor venues are connected");
        prop_assert!(
            lower <= actual + 1e-6,
            "skeleton {lower} must lower-bound the graph distance {actual}"
        );
        // Same-floor skeleton distance is the planar Euclidean distance.
        if a.floor == b.floor {
            prop_assert!((lower - a.position.distance(&b.position)).abs() < 1e-9);
        }
        // Symmetry of both quantities on fully bidirectional venues.
        prop_assert!((space.skeleton_distance(&b, &a) - lower).abs() < 1e-9);
        prop_assert!((space.point_to_point_distance(&b, &a) - actual).abs() < 1e-6);
    }

    /// Dijkstra over the door graph behaves like a shortest-path function:
    /// zero self-distance, triangle inequality, and agreement with the
    /// precomputed all-pairs matrix.
    #[test]
    fn dijkstra_and_matrix_agree_and_satisfy_the_triangle_inequality(
        spec in arb_spec(),
        da in 0usize..100,
        db in 0usize..100,
        dc in 0usize..100,
    ) {
        let (space, _) = build_venue(&spec);
        let n = space.num_doors();
        let a = DoorId((da % n) as u32);
        let b = DoorId((db % n) as u32);
        let c = DoorId((dc % n) as u32);
        let sp = space.shortest_paths();
        let none = HashSet::new();

        let from_a = sp.from_door(a, &none);
        prop_assert!(from_a.distance(a).abs() < 1e-9);

        let ab = from_a.distance(b);
        let ac = from_a.distance(c);
        let bc = sp.from_door(b, &none).distance(c);
        if ab.is_finite() && bc.is_finite() {
            prop_assert!(ac <= ab + bc + 1e-6, "d(a,c)={ac} d(a,b)={ab} d(b,c)={bc}");
        }

        let matrix = DoorMatrix::build(&space);
        prop_assert_eq!(matrix.num_doors(), n);
        let matrix_ab = matrix.distance(a, b);
        if ab.is_finite() {
            prop_assert!((matrix_ab - ab).abs() < 1e-6);
        } else {
            prop_assert!(!matrix_ab.is_finite());
        }

        // Every reconstructed shortest path realises the reported distance.
        if ab.is_finite() && a != b {
            let (doors, parts) = from_a.path_to(b).expect("finite distance implies a path");
            prop_assert_eq!(doors.first().copied(), Some(a));
            prop_assert_eq!(doors.last().copied(), Some(b));
            prop_assert_eq!(parts.len() + 1, doors.len());
            let mut total = 0.0;
            for (w, &via) in doors.windows(2).zip(parts.iter()) {
                total += space.intra_door_distance(via, w[0], w[1]);
            }
            prop_assert!((total - ab).abs() < 1e-6);
        }
    }

    /// Routes assembled through the regularity-checked API stay regular, and
    /// their distance is the sum of the leg distances (Definition 1).
    #[test]
    fn routes_built_with_regularity_checks_are_regular_and_additive(
        spec in arb_spec(),
        start_room in 0usize..100,
        hops in 1usize..12,
        choices in proptest::collection::vec(0usize..100, 12),
    ) {
        let (space, points) = build_venue(&spec);
        let start = points[start_room % points.len()];
        let start_partition = space.host_partition(&start).unwrap();

        let mut route = indoor_space::Route::from_point(start);
        let mut current_partition = start_partition;
        let mut expected_distance = 0.0;
        let mut previous_item_pos = start.position;

        for step in 0..hops {
            let leavable = space.p2d_leave(current_partition);
            if leavable.is_empty() {
                break;
            }
            let door = leavable[choices[step % choices.len()] % leavable.len()];
            if !route.can_append_door(door) {
                break;
            }
            // Leg cost: from the previous item to this door.
            let door_pos = space.door(door).unwrap().position;
            let leg = if route.doors().is_empty() {
                space.pt2d_distance(&start, door)
            } else {
                space.intra_door_distance(current_partition, route.tail_door().unwrap(), door)
            };
            if !leg.is_finite() {
                break;
            }
            route.append_door(door, current_partition).unwrap();
            expected_distance += leg;
            previous_item_pos = door_pos;
            // Land in some partition behind the door (or stay, for a loop).
            let behind = space.partitions_behind(door, current_partition);
            current_partition = behind
                .first()
                .copied()
                .unwrap_or(current_partition);
        }
        let _ = previous_item_pos;

        prop_assert!(route.is_regular());
        let computed = route.distance(&space);
        prop_assert!(
            (computed - expected_distance).abs() < 1e-6,
            "route distance {computed} vs incremental sum {expected_distance}"
        );
        // The door set is consistent with the door sequence.
        for d in route.doors() {
            prop_assert!(route.contains_door(*d));
            prop_assert!(route.door_set().contains(d));
        }
        prop_assert_eq!(route.num_items(), 1 + route.doors().len());
        prop_assert!(!route.is_complete());
    }

    /// Directionality: the intra-partition distance functions are finite
    /// exactly when the topology mappings allow the movement.
    #[test]
    fn intra_partition_distances_respect_directionality(
        spec in arb_spec(),
        pick_door in 0usize..100,
        pick_room in 0usize..100,
    ) {
        let (space, points) = build_venue(&spec);
        let door = DoorId((pick_door % space.num_doors()) as u32);
        let point = points[pick_room % points.len()];
        let host = space.host_partition(&point).unwrap();

        let to_door = space.pt2d_distance(&point, door);
        prop_assert_eq!(
            to_door.is_finite(),
            space.p2d_leave(host).contains(&door),
            "pt2d must be finite iff the door leaves the host partition"
        );
        let from_door = space.d2pt_distance(door, &point);
        prop_assert_eq!(
            from_door.is_finite(),
            space.p2d_enter(host).contains(&door)
        );
        // The same-door loop distance is finite for partitions the door both
        // enters and leaves, and is at least twice the direct distance to the
        // farthest point being non-negative.
        for &v in space.d2p_enter(door) {
            let loop_cost = space.loop_distance(door, v);
            if space.d2p_leave(door).contains(&v) {
                prop_assert!(loop_cost.is_finite());
                prop_assert!(loop_cost >= 0.0);
            } else {
                prop_assert!(!loop_cost.is_finite());
            }
        }
    }
}
