//! Lazily materialised per-door shortest-path rows.
//!
//! The eager `DoorMatrix::build_with_paths` runs one single-source Dijkstra
//! per door up front and stores `O(doors²)` distances plus predecessors.
//! [`LazyDoorRows`] keeps the identical per-source computation — the same
//! `ShortestPaths::from_door` with an empty exclusion set — but runs it on
//! first touch of each row and caches the whole [`DijkstraResult`] behind a
//! [`OnceLock`]. Distances and reconstructed paths are therefore
//! value-identical to the eager matrix (tested against it), while resident
//! memory is `O(touched_doors × doors)`.

use indoor_space::{DijkstraResult, DoorId, IndoorSpace, PartitionId, ShortestPaths, UNREACHABLE};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// All-pairs door distances and paths, materialised one source row at a
/// time. Shareable across query threads; concurrent first touches of the
/// same row may duplicate the Dijkstra but a single result wins (standard
/// `OnceLock` semantics), so readers always observe one consistent row.
#[derive(Debug)]
pub struct LazyDoorRows {
    space: Arc<IndoorSpace>,
    rows: Vec<OnceLock<DijkstraResult>>,
    materialized: AtomicUsize,
}

impl LazyDoorRows {
    /// Creates the (empty) row table for a venue. Cost: one allocation.
    pub fn new(space: Arc<IndoorSpace>) -> Self {
        let n = space.num_doors();
        let mut rows = Vec::with_capacity(n);
        rows.resize_with(n, OnceLock::new);
        LazyDoorRows {
            space,
            rows,
            materialized: AtomicUsize::new(0),
        }
    }

    /// Number of doors covered (row and column count).
    pub fn num_doors(&self) -> usize {
        self.rows.len()
    }

    /// The Dijkstra row for a source door, materialising it on first touch.
    /// `None` only for an out-of-range door id.
    pub fn row(&self, from: DoorId) -> Option<&DijkstraResult> {
        let slot = self.rows.get(from.index())?;
        Some(slot.get_or_init(|| {
            self.materialized.fetch_add(1, Ordering::Relaxed);
            ShortestPaths::new(&self.space).from_door(from, &HashSet::new())
        }))
    }

    /// Shortest distance between two doors; [`UNREACHABLE`] when either id
    /// is out of range (same contract as `DoorMatrix::distance`).
    pub fn distance(&self, from: DoorId, to: DoorId) -> f64 {
        if to.index() >= self.rows.len() {
            return UNREACHABLE;
        }
        match self.row(from) {
            Some(row) => row.distance(to),
            None => UNREACHABLE,
        }
    }

    /// Reconstructs the shortest path from `from` to `to` as
    /// `(doors, partitions)`; same contract as `DoorMatrix::path` on a
    /// matrix built with paths.
    pub fn path(&self, from: DoorId, to: DoorId) -> Option<(Vec<DoorId>, Vec<PartitionId>)> {
        if to.index() >= self.rows.len() {
            return None;
        }
        self.row(from)?.path_to(to)
    }

    /// Number of rows materialised so far.
    pub fn materialized_rows(&self) -> usize {
        self.materialized.load(Ordering::Relaxed)
    }

    /// Forces every row to materialise (the old all-or-nothing warm-up);
    /// returns the estimated byte footprint afterwards.
    pub fn materialize_all(&self) -> usize {
        for i in 0..self.rows.len() {
            let _ = self.row(DoorId(i as u32));
        }
        self.estimated_bytes()
    }

    /// Estimated heap size in bytes: only materialised rows count, so the
    /// figure grows with use instead of starting at the full `O(doors²)`.
    pub fn estimated_bytes(&self) -> usize {
        let n = self.rows.len();
        // One row holds `dist: Vec<f64>` and `prev: Vec<Option<(DoorId,
        // PartitionId)>>`, both of length `n`.
        let per_row =
            n * (std::mem::size_of::<f64>() + std::mem::size_of::<Option<(DoorId, PartitionId)>>());
        std::mem::size_of::<Self>()
            + n * std::mem::size_of::<OnceLock<DijkstraResult>>()
            + self.materialized_rows() * per_row
    }
}
