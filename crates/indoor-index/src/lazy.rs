//! Lazily materialised, capacity-bounded per-door shortest-path rows.
//!
//! The eager `DoorMatrix::build_with_paths` runs one single-source Dijkstra
//! per door up front and stores `O(doors²)` distances plus predecessors.
//! [`LazyDoorRows`] keeps the identical per-source computation — the same
//! `ShortestPaths::from_door` with an empty exclusion set — but runs it on
//! first touch of each row and caches the [`DijkstraResult`] in an LRU table
//! bounded by a row capacity. Distances and reconstructed paths are therefore
//! value-identical to the eager matrix (tested against it), while resident
//! memory is `O(min(touched, capacity) × doors)` instead of `O(doors²)`.
//!
//! The default capacity is sized from a fixed byte budget
//! ([`DEFAULT_ROW_BYTES_BUDGET`]) divided by the per-row footprint, clamped
//! to `[16, doors]` — small venues therefore never evict (the cache holds
//! every row), while a 10⁵-door mega venue is capped at a few hundred
//! resident rows. Hits, misses, and evictions are counted for `/v1/stats`.

use indoor_space::{DijkstraResult, DoorId, IndoorSpace, PartitionId, ShortestPaths, UNREACHABLE};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Byte budget the default row capacity is sized from (256 MiB).
pub const DEFAULT_ROW_BYTES_BUDGET: usize = 256 << 20;

/// Minimum row capacity regardless of venue size.
pub const MIN_ROWS_CAPACITY: usize = 16;

/// Point-in-time view of the row cache, surfaced on `/v1/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowCacheStats {
    /// Maximum number of rows the cache may hold at once.
    pub capacity: usize,
    /// Rows currently resident.
    pub resident: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run a Dijkstra.
    pub misses: u64,
    /// Rows dropped to stay within capacity.
    pub evictions: u64,
}

/// The LRU bookkeeping behind one mutex: the resident rows keyed by door id,
/// each stamped with its last-use tick, plus the inverse tick → door order
/// map the eviction loop pops from.
#[derive(Debug, Default)]
struct RowCache {
    map: HashMap<u32, (u64, Arc<DijkstraResult>)>,
    order: BTreeMap<u64, u32>,
    next_tick: u64,
}

impl RowCache {
    /// Returns the row and refreshes its recency, if resident.
    fn touch(&mut self, key: u32) -> Option<Arc<DijkstraResult>> {
        if !self.map.contains_key(&key) {
            return None;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = self.map.get_mut(&key).expect("checked resident above");
        let old = std::mem::replace(&mut entry.0, tick);
        let row = Arc::clone(&entry.1);
        self.order.remove(&old);
        self.order.insert(tick, key);
        Some(row)
    }

    /// Inserts a freshly computed row and evicts the least recently used
    /// rows until the cache fits `capacity`; returns the eviction count.
    fn insert(&mut self, key: u32, row: Arc<DijkstraResult>, capacity: usize) -> u64 {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.map.insert(key, (tick, row));
        self.order.insert(tick, key);
        let mut evicted = 0;
        while self.map.len() > capacity {
            let (&oldest, &victim) = self.order.iter().next().expect("map non-empty");
            self.order.remove(&oldest);
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// All-pairs door distances and paths, materialised one source row at a time
/// and bounded by an LRU capacity. Shareable across query threads; a
/// concurrent first touch of the same row may duplicate the Dijkstra, but
/// the first insert wins and later racers adopt it, so readers always
/// observe one consistent row.
#[derive(Debug)]
pub struct LazyDoorRows {
    space: Arc<IndoorSpace>,
    num_doors: usize,
    capacity: usize,
    cache: Mutex<RowCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl LazyDoorRows {
    /// Creates the (empty) row table for a venue with the default
    /// budget-derived capacity. Cost: one allocation.
    pub fn new(space: Arc<IndoorSpace>) -> Self {
        let n = space.num_doors();
        Self::with_capacity(space, Self::default_capacity(n))
    }

    /// Creates the row table with an explicit row capacity (clamped to ≥ 1).
    pub fn with_capacity(space: Arc<IndoorSpace>, capacity: usize) -> Self {
        let num_doors = space.num_doors();
        LazyDoorRows {
            space,
            num_doors,
            capacity: capacity.max(1),
            cache: Mutex::new(RowCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The default capacity for a venue with `num_doors` doors:
    /// `DEFAULT_ROW_BYTES_BUDGET / row_bytes`, clamped to
    /// `[MIN_ROWS_CAPACITY, num_doors]`. Venues whose full matrix fits the
    /// budget keep every row resident and never evict.
    pub fn default_capacity(num_doors: usize) -> usize {
        let per_row = Self::row_bytes(num_doors).max(1);
        (DEFAULT_ROW_BYTES_BUDGET / per_row)
            .clamp(MIN_ROWS_CAPACITY, num_doors.max(MIN_ROWS_CAPACITY))
    }

    /// Heap footprint of one materialised row.
    fn row_bytes(num_doors: usize) -> usize {
        num_doors
            * (std::mem::size_of::<f64>() + std::mem::size_of::<Option<(DoorId, PartitionId)>>())
    }

    /// Number of doors covered (row and column count).
    pub fn num_doors(&self) -> usize {
        self.num_doors
    }

    /// Maximum number of rows the cache may hold at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The Dijkstra row for a source door, materialising it on first touch
    /// (and possibly evicting the least recently used row). `None` only for
    /// an out-of-range door id.
    pub fn row(&self, from: DoorId) -> Option<Arc<DijkstraResult>> {
        if from.index() >= self.num_doors {
            return None;
        }
        let key = from.0;
        if let Some(row) = self.cache.lock().expect("row cache poisoned").touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(row);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Dijkstra runs outside the lock so concurrent misses on different
        // rows do not serialise; on relock, adopt a racing winner if any.
        let computed = Arc::new(ShortestPaths::new(&self.space).from_door(from, &HashSet::new()));
        let mut cache = self.cache.lock().expect("row cache poisoned");
        if let Some(existing) = cache.touch(key) {
            return Some(existing);
        }
        let evicted = cache.insert(key, Arc::clone(&computed), self.capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Some(computed)
    }

    /// Shortest distance between two doors; [`UNREACHABLE`] when either id
    /// is out of range (same contract as `DoorMatrix::distance`).
    pub fn distance(&self, from: DoorId, to: DoorId) -> f64 {
        if to.index() >= self.num_doors {
            return UNREACHABLE;
        }
        match self.row(from) {
            Some(row) => row.distance(to),
            None => UNREACHABLE,
        }
    }

    /// Reconstructs the shortest path from `from` to `to` as
    /// `(doors, partitions)`; same contract as `DoorMatrix::path` on a
    /// matrix built with paths.
    pub fn path(&self, from: DoorId, to: DoorId) -> Option<(Vec<DoorId>, Vec<PartitionId>)> {
        if to.index() >= self.num_doors {
            return None;
        }
        self.row(from)?.path_to(to)
    }

    /// Number of rows currently resident in the cache.
    pub fn materialized_rows(&self) -> usize {
        self.cache.lock().expect("row cache poisoned").map.len()
    }

    /// Counter snapshot for stats reporting.
    pub fn cache_stats(&self) -> RowCacheStats {
        RowCacheStats {
            capacity: self.capacity,
            resident: self.materialized_rows(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Touches every row once (the old all-or-nothing warm-up); with a
    /// capacity below the door count this leaves the last `capacity` rows
    /// resident. Returns the estimated byte footprint afterwards.
    pub fn materialize_all(&self) -> usize {
        for i in 0..self.num_doors {
            let _ = self.row(DoorId(i as u32));
        }
        self.estimated_bytes()
    }

    /// Estimated heap size in bytes: only resident rows count, so the
    /// figure grows with use and is bounded by the capacity instead of the
    /// full `O(doors²)`.
    pub fn estimated_bytes(&self) -> usize {
        let resident = self.materialized_rows();
        std::mem::size_of::<Self>()
            + resident
                * (Self::row_bytes(self.num_doors)
                    + std::mem::size_of::<(u64, u32)>()
                    + std::mem::size_of::<(u32, (u64, usize))>())
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use indoor_geom::{Point, Rect};
    use indoor_space::{DoorKind, FloorId, IndoorSpaceBuilder, PartitionKind};

    /// Any real Dijkstra row works; the cache never inspects contents.
    fn dummy_row() -> Arc<DijkstraResult> {
        let mut b = IndoorSpaceBuilder::new();
        let f = FloorId(0);
        let a = b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::new(0.0, 0.0), 10.0, 10.0).unwrap(),
            None,
        );
        let c = b.add_partition(
            f,
            PartitionKind::Room,
            Rect::from_origin_size(Point::new(10.0, 0.0), 10.0, 10.0).unwrap(),
            None,
        );
        let d = b.add_door(Point::new(10.0, 5.0), f, DoorKind::Normal);
        b.connect_bidirectional(d, a, c);
        let space = b.build().unwrap();
        Arc::new(ShortestPaths::new(&space).from_door(DoorId(0), &HashSet::new()))
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut c = RowCache::default();
        assert_eq!(c.insert(0, dummy_row(), 2), 0);
        assert_eq!(c.insert(1, dummy_row(), 2), 0);
        // Touch 0 so 1 becomes the LRU victim.
        assert!(c.touch(0).is_some());
        assert_eq!(c.insert(2, dummy_row(), 2), 1);
        assert!(c.touch(1).is_none(), "1 was evicted");
        assert!(c.touch(0).is_some());
        assert!(c.touch(2).is_some());
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let mut c = RowCache::default();
        for k in 0..5u32 {
            c.insert(k, dummy_row(), 1);
        }
        assert_eq!(c.map.len(), 1);
        assert!(c.touch(4).is_some());
    }
}
