//! # indoor-index — venue-scale query indexing
//!
//! The search engine's original candidate generation is linear in venue
//! size: `CandidateSet::build` scans the whole i-word vocabulary per query
//! keyword, and the KoE* distance cache (`PrecomputedPaths`) materialises
//! the full `O(doors²)` all-pairs matrix before the first query. Both are
//! fine at mall scale (≲150 partitions) and collapse at airport/stadium
//! scale (10⁴–10⁵ partitions). This crate provides the three structures
//! that remove the linear scans, behind APIs that keep query results
//! **byte-identical** to the scan path:
//!
//! ## Layout
//!
//! 1. **[`KeywordPostings`]** — an inverted keyword → partition index over
//!    interned [`WordId`]s. Three compact sorted tables (binary-searched,
//!    boxed-slice posting lists): i-word → partitions, t-word → i-words and
//!    i-word → t-words. Candidate generation for a query keyword walks only
//!    the i-words sharing at least one t-word with the Definition-4 union —
//!    exactly the set the vocabulary scan keeps after its intersection
//!    filter — so the produced [`CandidateSet`] is equal, entry for entry,
//!    to the scan-built one (cross-checked by tests and a mirrored
//!    proptest in `ikrq-core`).
//!
//! 2. **[`RegionIndex`]** — a coarse spatial containment layer in the
//!    QDR-Tree spirit: per-floor grid regions over the partition graph,
//!    each with (a) a bounding box *expanded to cover every member door
//!    position*, (b) the set of floors touched by any member door (stair
//!    doors touch two floors), (c) the member partition list, and (d) a
//!    keyword summary bitmap over the dense set of partition-naming
//!    i-words. KoE's Rule-3 detour test consults a cached per-region lower
//!    bound first: when the region bound already exceeds the distance
//!    constraint `delta`, every member partition is pruned in one test.
//!
//!    *Invariant (region bound soundness):* for every member partition `v`
//!    and points `ps`, `pt`,
//!    `region_detour_lower_bound(R, ps, pt) ≤ partition_detour_lower_bound(ps, v, pt)`.
//!    This holds because the region box contains every enter/leave door of
//!    every member, the region floor set contains every floor those doors
//!    touch, and intra-partition distances are non-negative — so the
//!    skeleton lower bound from a point to any member door dominates the
//!    point-to-region term, and the intra-partition leg dominates zero.
//!    Venues may declare *negative* intra-distance overrides (nothing
//!    validates them); [`RegionIndex::is_sound`] detects that at build time
//!    and the engine then skips region-level pruning, falling back to the
//!    per-partition bound. Region pruning therefore never changes results:
//!    a region prunes only when every one of its members would have been
//!    pruned individually by the same Rule-3 comparison.
//!
//! 3. **[`LazyDoorRows`]** — incremental replacement for the all-or-nothing
//!    all-pairs matrix: one [`DijkstraResult`] row per source door,
//!    materialised on first touch behind a [`OnceLock`]. Rows are computed
//!    by the same single-source Dijkstra (`ShortestPaths::from_door` with an
//!    empty exclusion set) that `DoorMatrix::build_with_paths` runs per
//!    source, so distances *and* reconstructed paths are value-identical to
//!    the eager matrix; KoE* on a large venue pays only for the rows its
//!    queries touch, keeping resident memory proportional to touched doors
//!    rather than `doors²`.
//!
//! ## When regions prune
//!
//! A region prunes (fails) for a query iff
//! `lb(ps, R) + lb(pt, R) > delta`, where `lb(p, R)` is the minimum over
//! (i) the planar distance from `p` to the region box when `p`'s floor is
//! in the region floor set, and (ii) stair-door routes
//! `|p, sd_a| + s2s(sd_a, sd_b) + |sd_b, box|` for every stair-door pair
//! bridging `p`'s floor to a region floor. Failed regions answer every
//! subsequent member test for the rest of the query from one cached flag;
//! passed regions fall through to the (per-query cached) member bound, so
//! prune decisions — and the recorded prune metrics — match the scan path
//! exactly.
//!
//! [`VenueIndex`] bundles the three with cumulative observability counters
//! ([`IndexCounters`], surfaced on the server's `/v1/stats`) and records
//! its own build time and estimated heap footprint so benchmarks and the
//! stats endpoint can report index cost honestly.
//!
//! [`WordId`]: indoor_keywords::WordId
//! [`CandidateSet`]: indoor_keywords::CandidateSet
//! [`DijkstraResult`]: indoor_space::DijkstraResult
//! [`OnceLock`]: std::sync::OnceLock

pub mod counters;
pub mod lazy;
pub mod postings;
pub mod regions;

pub use counters::{IndexCounterSnapshot, IndexCounters};
pub use lazy::{LazyDoorRows, RowCacheStats, DEFAULT_ROW_BYTES_BUDGET, MIN_ROWS_CAPACITY};
pub use postings::{KeywordPostings, PostingTable};
pub use regions::{Region, RegionIndex};

use indoor_keywords::{
    CandidateSet, KeywordDirectory, PreparedQuery, PreparedWord, QueryKeywords,
    Result as KeywordResult,
};
use indoor_space::IndoorSpace;
use std::time::Instant;

/// The per-venue query index: keyword posting lists plus the spatial region
/// layer, with build-time and usage observability. One instance is owned by
/// each index-accelerated `IkrqEngine` and shared read-only across query
/// threads (interior mutability is confined to the atomic counters).
#[derive(Debug)]
pub struct VenueIndex {
    postings: KeywordPostings,
    regions: RegionIndex,
    counters: IndexCounters,
    build_micros: u64,
    loaded_from_disk: bool,
}

impl VenueIndex {
    /// Builds the index for a venue. Build cost is `O(vocabulary +
    /// associations + partitions + doors)` — no all-pairs products — and is
    /// recorded in [`VenueIndex::build_micros`].
    pub fn build(space: &IndoorSpace, directory: &KeywordDirectory) -> Self {
        let started = Instant::now();
        let postings = KeywordPostings::build(directory);
        let regions = RegionIndex::build(space, directory);
        let build_micros = started.elapsed().as_micros() as u64;
        VenueIndex {
            postings,
            regions,
            counters: IndexCounters::new(),
            build_micros,
            loaded_from_disk: false,
        }
    }

    /// Reassembles an index from persisted parts (the pre-built index
    /// section of a venue file). `build_micros` records the decode time —
    /// what acquiring the index actually cost this process — and
    /// [`VenueIndex::loaded_from_disk`] reports `true` so `/v1/stats` can
    /// distinguish loaded venues from freshly indexed ones.
    pub fn from_parts(postings: KeywordPostings, regions: RegionIndex, build_micros: u64) -> Self {
        VenueIndex {
            postings,
            regions,
            counters: IndexCounters::new(),
            build_micros,
            loaded_from_disk: true,
        }
    }

    /// Whether this index was decoded from a persisted section rather than
    /// built from the venue.
    pub fn loaded_from_disk(&self) -> bool {
        self.loaded_from_disk
    }

    /// The inverted keyword → partition tables.
    pub fn postings(&self) -> &KeywordPostings {
        &self.postings
    }

    /// The spatial region layer.
    pub fn regions(&self) -> &RegionIndex {
        &self.regions
    }

    /// Cumulative usage counters (shared, atomic).
    pub fn counters(&self) -> &IndexCounters {
        &self.counters
    }

    /// Wall-clock build time in microseconds.
    pub fn build_micros(&self) -> u64 {
        self.build_micros
    }

    /// Estimated heap footprint of the index structures in bytes.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.postings.estimated_bytes()
            + self.regions.estimated_bytes()
    }

    /// Prepares a query against the venue through the posting lists instead
    /// of the vocabulary scan. The result is equal to
    /// [`PreparedQuery::prepare`] on the same inputs — same words, same
    /// candidate sets, same similarity scores, same error behaviour — which
    /// is what keeps index-mode search responses byte-identical to scan
    /// mode.
    pub fn prepare_query(
        &self,
        query: &QueryKeywords,
        directory: &KeywordDirectory,
        tau: f64,
    ) -> KeywordResult<PreparedQuery> {
        let mut words = Vec::with_capacity(query.len());
        for raw in query.words() {
            let (id, kind) = directory.classify(raw);
            let candidates = match id {
                Some(word_id) => self.postings.candidate_set(word_id, kind, tau)?,
                None => CandidateSet::default(),
            };
            words.push(PreparedWord {
                raw: raw.clone(),
                id,
                kind,
                candidates,
            });
        }
        PreparedQuery::from_words(words, tau)
    }
}
