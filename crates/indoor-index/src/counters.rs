//! Cumulative index-usage counters.
//!
//! Mirrors the reactor counter pattern from `ikrq-server`: cheap relaxed
//! atomics bumped on the query path, snapshotted for `/v1/stats`. The
//! counters live on the index (not in per-query `SearchMetrics`) so both
//! engine modes produce identical per-response metric bodies.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one venue's index.
#[derive(Debug, Default)]
pub struct IndexCounters {
    /// Queries whose keyword preparation went through the posting lists.
    pub queries_accelerated: AtomicU64,
    /// Region detour bounds computed (first touch of a region by a query).
    pub regions_tested: AtomicU64,
    /// Regions whose bound exceeded the distance constraint — every later
    /// member test of that query was answered from the cached flag.
    pub regions_pruned: AtomicU64,
    /// Rule-3 candidate tests answered from a failed region's cached flag
    /// (work the scan path would have spent on per-partition bounds).
    pub candidates_pruned: AtomicU64,
    /// Rule-3 member bounds answered from the per-query bound cache.
    pub bound_cache_hits: AtomicU64,
}

impl IndexCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IndexCounterSnapshot {
        IndexCounterSnapshot {
            queries_accelerated: self.queries_accelerated.load(Ordering::Relaxed),
            regions_tested: self.regions_tested.load(Ordering::Relaxed),
            regions_pruned: self.regions_pruned.load(Ordering::Relaxed),
            candidates_pruned: self.candidates_pruned.load(Ordering::Relaxed),
            bound_cache_hits: self.bound_cache_hits.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counter values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCounterSnapshot {
    /// See [`IndexCounters::queries_accelerated`].
    pub queries_accelerated: u64,
    /// See [`IndexCounters::regions_tested`].
    pub regions_tested: u64,
    /// See [`IndexCounters::regions_pruned`].
    pub regions_pruned: u64,
    /// See [`IndexCounters::candidates_pruned`].
    pub candidates_pruned: u64,
    /// See [`IndexCounters::bound_cache_hits`].
    pub bound_cache_hits: u64,
}

impl IndexCounterSnapshot {
    /// Elementwise sum, for aggregating across venues.
    pub fn add(&mut self, other: &IndexCounterSnapshot) {
        self.queries_accelerated += other.queries_accelerated;
        self.regions_tested += other.regions_tested;
        self.regions_pruned += other.regions_pruned;
        self.candidates_pruned += other.candidates_pruned;
        self.bound_cache_hits += other.bound_cache_hits;
    }
}
