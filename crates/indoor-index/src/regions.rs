//! Keyword-clustered spatial regions over the partition graph.
//!
//! Partitions are grouped per floor into grid cells sized so each region
//! holds roughly [`TARGET_MEMBERS`] members. Each region carries the
//! geometry needed for a sound detour lower bound (bounding box expanded to
//! member door positions, floor set expanded to member door floors) and a
//! keyword summary bitmap over the dense set of partition-naming i-words,
//! so a whole region's relevance to a query is one bitmap intersection and
//! its distance feasibility is one cached bound comparison.

use indoor_geom::{Point, Rect};
use indoor_keywords::{KeywordDirectory, WordId};
use indoor_space::{FloorId, IndoorPoint, IndoorSpace, PartitionId, UNREACHABLE};
use std::collections::BTreeSet;

/// Target number of member partitions per region. Regions are coarse on
/// purpose: the point is to answer many Rule-3 tests with one cached bound,
/// not to approximate per-partition geometry.
pub const TARGET_MEMBERS: usize = 32;

/// One spatial region: a set of same-floor partitions with summarising
/// geometry and keywords.
#[derive(Debug, Clone)]
pub struct Region {
    /// Bounding box of every member footprint *and* every member enter/leave
    /// door position (stair doors can sit outside the footprint union).
    bbox: Rect,
    /// Every floor touched by a member partition or one of its doors,
    /// sorted. Stair doors touch two floors, so this can extend beyond the
    /// region's home floor.
    floors: Vec<FloorId>,
    /// Member partitions, sorted.
    members: Vec<PartitionId>,
    /// Bitmap over the dense i-word table of [`RegionIndex`]: bit `i` is set
    /// when `iword_dense[i]` names a member partition.
    iword_bits: Vec<u64>,
}

impl Region {
    /// Reassembles a region from persisted parts; `floors` and `members`
    /// must be sorted (the order [`RegionIndex::build`] produces).
    pub fn from_parts(
        bbox: Rect,
        floors: Vec<FloorId>,
        members: Vec<PartitionId>,
        iword_bits: Vec<u64>,
    ) -> Self {
        debug_assert!(floors.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        Region {
            bbox,
            floors,
            members,
            iword_bits,
        }
    }

    /// The raw keyword summary bitmap (serialisation).
    pub fn iword_bits(&self) -> &[u64] {
        &self.iword_bits
    }

    /// The members of the region, sorted by partition id.
    pub fn members(&self) -> &[PartitionId] {
        &self.members
    }

    /// The region bounding box (footprints ∪ door positions).
    pub fn bbox(&self) -> &Rect {
        &self.bbox
    }

    /// Floors touched by any member partition or door, sorted.
    pub fn floors(&self) -> &[FloorId] {
        &self.floors
    }

    fn has_iword_bit(&self, bit: usize) -> bool {
        self.iword_bits
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }
}

/// The region layer of the venue index.
#[derive(Debug, Default)]
pub struct RegionIndex {
    regions: Vec<Region>,
    /// Partition index → region id. Total: every partition belongs to
    /// exactly one region.
    region_of: Vec<u32>,
    /// Dense table of partition-naming i-words, sorted; the bit index of a
    /// word in every region bitmap is its position here.
    iword_dense: Vec<WordId>,
    /// Whether the region detour bound is sound for this venue: false when
    /// the venue declares a negative intra-partition or loop distance
    /// override (nothing upstream validates them), in which case callers
    /// must skip region-level pruning. See the crate-level invariant.
    sound: bool,
}

impl RegionIndex {
    /// Builds the region layer by gridding each floor.
    pub fn build(space: &IndoorSpace, directory: &KeywordDirectory) -> Self {
        let iword_dense: Vec<WordId> = {
            let mut set: BTreeSet<WordId> = BTreeSet::new();
            for p in space.partitions() {
                if let Some(iw) = directory.partition_iword(p.id) {
                    set.insert(iw);
                }
            }
            set.into_iter().collect()
        };
        let bitmap_words = iword_dense.len().div_ceil(64);

        let mut regions: Vec<Region> = Vec::new();
        let mut region_of = vec![0u32; space.num_partitions()];
        for floor in space.floors() {
            let on_floor = space.partitions_on_floor(floor);
            if on_floor.is_empty() {
                continue;
            }
            let bounds = *space
                .floor_bounds(floor)
                .expect("floor listed by the space");
            let cells = on_floor.len().div_ceil(TARGET_MEMBERS);
            let side = (cells as f64).sqrt().ceil().max(1.0) as usize;
            // Bucket partitions into grid cells by footprint centre.
            let mut buckets: Vec<Vec<PartitionId>> = vec![Vec::new(); side * side];
            let cell_w = bounds.width() / side as f64;
            let cell_h = bounds.height() / side as f64;
            let origin = bounds.min;
            for &v in &on_floor {
                let c = space
                    .partition(v)
                    .expect("partition listed by the floor")
                    .center();
                let gx = (((c.x - origin.x) / cell_w) as usize).min(side - 1);
                let gy = (((c.y - origin.y) / cell_h) as usize).min(side - 1);
                buckets[gy * side + gx].push(v);
            }
            for mut members in buckets {
                if members.is_empty() {
                    continue;
                }
                members.sort_unstable();
                let region_id = regions.len() as u32;
                let mut min = Point::new(f64::INFINITY, f64::INFINITY);
                let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
                let mut floors: BTreeSet<FloorId> = BTreeSet::new();
                let mut iword_bits = vec![0u64; bitmap_words];
                let mut cover = |p: &Point| {
                    min = Point::new(min.x.min(p.x), min.y.min(p.y));
                    max = Point::new(max.x.max(p.x), max.y.max(p.y));
                };
                for &v in &members {
                    region_of[v.index()] = region_id;
                    let part = space.partition(v).expect("member exists");
                    floors.insert(part.floor);
                    for corner in part.footprint.corners() {
                        cover(&corner);
                    }
                    for d in space.p2d_enter(v).iter().chain(space.p2d_leave(v).iter()) {
                        let door = space.door(*d).expect("door exists");
                        cover(&door.position);
                        floors.extend(door.floors());
                    }
                    if let Some(iw) = directory.partition_iword(v) {
                        let bit = iword_dense
                            .binary_search(&iw)
                            .expect("naming i-word is in the dense table");
                        iword_bits[bit / 64] |= 1u64 << (bit % 64);
                    }
                }
                // Footprints have positive area, so min < max holds.
                let bbox = Rect::new(min, max).expect("non-degenerate region box");
                regions.push(Region {
                    bbox,
                    floors: floors.into_iter().collect(),
                    members,
                    iword_bits,
                });
            }
        }

        let sound = space
            .intra_distance_overrides()
            .all(|(_, _, _, d)| d >= 0.0)
            && space.loop_distance_overrides().all(|(_, _, d)| d >= 0.0);

        RegionIndex {
            regions,
            region_of,
            iword_dense,
            sound,
        }
    }

    /// Reassembles the layer from persisted parts, as decoded from a
    /// persisted index section.
    pub fn from_parts(
        regions: Vec<Region>,
        region_of: Vec<u32>,
        iword_dense: Vec<WordId>,
        sound: bool,
    ) -> Self {
        debug_assert!(iword_dense.windows(2).all(|w| w[0] < w[1]));
        RegionIndex {
            regions,
            region_of,
            iword_dense,
            sound,
        }
    }

    /// The raw partition → region table (serialisation).
    pub fn region_of_table(&self) -> &[u32] {
        &self.region_of
    }

    /// The dense sorted table of partition-naming i-words (serialisation).
    pub fn iword_dense(&self) -> &[WordId] {
        &self.iword_dense
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the layer is empty (venue with no partitions).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region a partition belongs to.
    pub fn region_of(&self, v: PartitionId) -> Option<u32> {
        self.region_of.get(v.index()).copied()
    }

    /// Whether the region detour bound is usable for pruning (see the
    /// crate-level soundness invariant).
    pub fn is_sound(&self) -> bool {
        self.sound
    }

    /// Lower bound on the detour `|ps, v| + |v, pt|` of *any* member
    /// partition `v` of the region — the one test that can prune the whole
    /// region under Rule 3. Dominated by every member's
    /// `partition_detour_lower_bound` (crate-level invariant).
    pub fn detour_lower_bound(
        &self,
        space: &IndoorSpace,
        region: u32,
        start: &IndoorPoint,
        terminal: &IndoorPoint,
    ) -> f64 {
        let Some(r) = self.regions.get(region as usize) else {
            return UNREACHABLE;
        };
        self.point_bound(space, r, start) + self.point_bound(space, r, terminal)
    }

    /// Skeleton-style lower bound from a point to anywhere in the region:
    /// the planar distance to the region box when the point's floor is in
    /// the region floor set, else (and also, as a minimum, when stair
    /// routes are shorter is impossible — same-floor Euclid dominates) the
    /// cheapest stair-door bridge `|p, sd_a| + s2s(sd_a, sd_b) + |sd_b, box|`.
    fn point_bound(&self, space: &IndoorSpace, r: &Region, p: &IndoorPoint) -> f64 {
        let mut best = UNREACHABLE;
        if r.floors.contains(&p.floor) {
            best = r.bbox.distance_to_point(&p.position);
        }
        if best == 0.0 {
            return best;
        }
        let skeleton = space.skeleton();
        for &sda in skeleton.stair_doors(p.floor) {
            let head = match space.door(sda) {
                Ok(d) => p.position.distance(&d.position),
                Err(_) => continue,
            };
            if head >= best {
                continue;
            }
            for &floor in &r.floors {
                for &sdb in skeleton.stair_doors(floor) {
                    let mid = skeleton.s2s_distance(sda, sdb);
                    if !mid.is_finite() || head + mid >= best {
                        continue;
                    }
                    let tail = match space.door(sdb) {
                        Ok(d) => r.bbox.distance_to_point(&d.position),
                        Err(_) => continue,
                    };
                    if head + mid + tail < best {
                        best = head + mid + tail;
                    }
                }
            }
        }
        best
    }

    /// How many regions contain at least one partition named by a candidate
    /// i-word of the query — the region-level candidate footprint reported
    /// by the venue-size bench.
    pub fn candidate_regions(&self, candidate_iwords: &BTreeSet<WordId>) -> usize {
        let bits: Vec<usize> = candidate_iwords
            .iter()
            .filter_map(|w| self.iword_dense.binary_search(w).ok())
            .collect();
        self.regions
            .iter()
            .filter(|r| bits.iter().any(|&b| r.has_iword_bit(b)))
            .count()
    }

    /// Whether a region contains a partition named by the given i-word
    /// (one bitmap probe).
    pub fn region_has_iword(&self, region: u32, iword: WordId) -> bool {
        let Some(r) = self.regions.get(region as usize) else {
            return false;
        };
        match self.iword_dense.binary_search(&iword) {
            Ok(bit) => r.has_iword_bit(bit),
            Err(_) => false,
        }
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.regions
            .iter()
            .map(|r| {
                std::mem::size_of::<Region>()
                    + r.floors.len() * std::mem::size_of::<FloorId>()
                    + r.members.len() * std::mem::size_of::<PartitionId>()
                    + r.iword_bits.len() * 8
            })
            .sum::<usize>()
            + self.region_of.len() * 4
            + self.iword_dense.len() * std::mem::size_of::<WordId>()
    }
}
