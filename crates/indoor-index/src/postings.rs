//! Inverted keyword → partition posting lists over interned [`WordId`]s.
//!
//! Three sorted tables replace the vocabulary scan of
//! `CandidateSet::build`: `i-word → partitions` (the inverted index proper,
//! used for key-partition generation), `t-word → i-words` and `i-word →
//! t-words` (the association adjacency, used to enumerate Definition-4
//! indirect matches without touching unrelated i-words). All three are
//! plain sorted `Vec<(WordId, …)>` looked up by binary search — compact,
//! cache-friendly, and build in `O(vocabulary + associations)`.

use indoor_keywords::{
    jaccard_sorted, CandidateSet, KeywordDirectory, Result as KeywordResult, WordId,
};
use indoor_keywords::{KeywordError, WordKind};
use indoor_space::PartitionId;
use std::collections::{BTreeMap, BTreeSet};

/// One flat posting table: word ids sorted for binary search, every word's
/// value list in a shared arena addressed CSR-style. Replaces the previous
/// one-boxed-slice-per-word layout — three allocations however many words,
/// which is what lets persisted-section decode adopt a mega venue's tables
/// in well under the index-build time.
#[derive(Debug, PartialEq, Eq)]
pub struct PostingTable<T> {
    words: Vec<WordId>,
    /// `words.len() + 1` offsets into `values`; word `i`'s list is
    /// `values[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    values: Vec<T>,
}

impl<T> Default for PostingTable<T> {
    fn default() -> Self {
        PostingTable {
            words: Vec::new(),
            offsets: vec![0],
            values: Vec::new(),
        }
    }
}

impl<T> PostingTable<T> {
    /// Flattens `(word, list)` pairs; sorts by word id.
    pub fn from_lists(mut lists: Vec<(WordId, Vec<T>)>) -> Self {
        lists.sort_unstable_by_key(|(w, _)| *w);
        let mut table = PostingTable {
            words: Vec::with_capacity(lists.len()),
            offsets: Vec::with_capacity(lists.len() + 1),
            values: Vec::with_capacity(lists.iter().map(|(_, l)| l.len()).sum()),
        };
        table.offsets.push(0);
        for (w, list) in lists {
            table.words.push(w);
            table.values.extend(list);
            table.offsets.push(table.values.len() as u32);
        }
        table
    }

    /// Adopts already-flat parts (persisted-section decode). `words` must be
    /// strictly sorted and `offsets` a monotone cover of `values` with
    /// `words.len() + 1` entries.
    pub fn from_flat(words: Vec<WordId>, offsets: Vec<u32>, values: Vec<T>) -> Self {
        assert_eq!(offsets.len(), words.len() + 1, "offset row per word");
        assert_eq!(offsets.first(), Some(&0), "offsets start at 0");
        assert_eq!(
            *offsets.last().expect("offsets are non-empty") as usize,
            values.len(),
            "offsets cover the value arena"
        );
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        assert!(
            words.windows(2).all(|w| w[0] < w[1]),
            "words strictly sorted"
        );
        PostingTable {
            words,
            offsets,
            values,
        }
    }

    /// The value list of one word, when present.
    pub fn get(&self, word: WordId) -> Option<&[T]> {
        let i = self.words.binary_search(&word).ok()?;
        Some(&self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Iterates `(word, values)` entries in word order.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = (WordId, &[T])> {
        self.words.iter().enumerate().map(|(i, &w)| {
            (
                w,
                &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            )
        })
    }

    /// Number of words with a list.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no word has a list.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Estimated heap bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<WordId>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<T>()
    }
}

/// Sorted posting-list tables for one venue's keyword directory.
#[derive(Debug, Default)]
pub struct KeywordPostings {
    /// i-word → partitions it names, sorted by word then by partition.
    iword_partitions: PostingTable<PartitionId>,
    /// t-word → i-words it thematically describes, sorted by word.
    tword_iwords: PostingTable<WordId>,
    /// i-word → its sorted t-word list, sorted by word. Flat sorted rows
    /// rather than `BTreeSet`s: [`jaccard_sorted`] computes the identical
    /// score the scan path gets from set intersection.
    iword_twords: PostingTable<WordId>,
}

impl KeywordPostings {
    /// Builds the tables from a keyword directory.
    pub fn build(directory: &KeywordDirectory) -> Self {
        let vocab = directory.vocab();
        let mappings = directory.mappings();

        let mut iword_partitions = Vec::new();
        let mut iword_twords = Vec::new();
        for iw in vocab.iwords() {
            let partitions = mappings.i2p(iw);
            if !partitions.is_empty() {
                let mut sorted: Vec<PartitionId> = partitions.to_vec();
                sorted.sort_unstable();
                iword_partitions.push((iw, sorted));
            }
            if let Some(tw) = mappings.i2t(iw) {
                iword_twords.push((iw, tw.iter().copied().collect()));
            }
        }

        let mut tword_iwords = Vec::new();
        for tw in vocab.twords() {
            if let Some(iws) = mappings.t2i(tw) {
                tword_iwords.push((tw, iws.iter().copied().collect()));
            }
        }

        KeywordPostings {
            iword_partitions: PostingTable::from_lists(iword_partitions),
            tword_iwords: PostingTable::from_lists(tword_iwords),
            iword_twords: PostingTable::from_lists(iword_twords),
        }
    }

    /// Reassembles the tables from already-flat parts, as decoded from a
    /// persisted index section.
    pub fn from_tables(
        iword_partitions: PostingTable<PartitionId>,
        tword_iwords: PostingTable<WordId>,
        iword_twords: PostingTable<WordId>,
    ) -> Self {
        KeywordPostings {
            iword_partitions,
            tword_iwords,
            iword_twords,
        }
    }

    /// The i-word → partitions table, sorted by word (serialisation).
    pub fn iword_partition_tables(&self) -> &PostingTable<PartitionId> {
        &self.iword_partitions
    }

    /// The t-word → i-words table, sorted by word (serialisation).
    pub fn tword_iword_tables(&self) -> &PostingTable<WordId> {
        &self.tword_iwords
    }

    /// The i-word → t-word-list table, sorted by word (serialisation).
    pub fn iword_tword_tables(&self) -> &PostingTable<WordId> {
        &self.iword_twords
    }

    /// The partitions named by an i-word (empty for non-naming words).
    pub fn partitions_of(&self, iword: WordId) -> &[PartitionId] {
        self.iword_partitions.get(iword).unwrap_or(&[])
    }

    /// The i-words a t-word directly describes (`T2I`).
    pub fn iwords_of_tword(&self, tword: WordId) -> &[WordId] {
        self.tword_iwords.get(tword).unwrap_or(&[])
    }

    /// The sorted t-word list of an i-word (`I2T`), when it has one.
    pub fn twords_of_iword(&self, iword: WordId) -> Option<&[WordId]> {
        self.iword_twords.get(iword)
    }

    /// Number of i-word posting lists.
    pub fn num_posting_lists(&self) -> usize {
        self.iword_partitions.len()
    }

    /// Builds the candidate i-word set `κ(wQ)` for one query keyword from
    /// the posting lists — same output as [`CandidateSet::build`], without
    /// the vocabulary scan.
    ///
    /// Equivalence argument: the scan keeps an indirect i-word `wi` iff
    /// `I2T(wi)` intersects the union `U` of the direct matches' t-words.
    /// Associations are symmetric (`wi ∈ T2I(t) ⟺ t ∈ I2T(wi)`), so that
    /// set is exactly `⋃_{t ∈ U} T2I(t)` minus the direct matches — which
    /// is what this walks. Scores use [`jaccard_sorted`], which computes
    /// the scan's Jaccard bit for bit over the flat posting rows, so
    /// entries and similarities match exactly.
    pub fn candidate_set(
        &self,
        query_word: WordId,
        kind: WordKind,
        tau: f64,
    ) -> KeywordResult<CandidateSet> {
        if !(0.0..=1.0).contains(&tau) {
            return Err(KeywordError::InvalidThreshold(tau));
        }
        let mut entries = BTreeMap::new();
        match kind {
            WordKind::IWord => {
                entries.insert(query_word, 1.0);
            }
            WordKind::TWord => {
                let direct = self.iwords_of_tword(query_word);
                let mut union: BTreeSet<WordId> = BTreeSet::new();
                for &iw in direct {
                    if let Some(tw) = self.twords_of_iword(iw) {
                        union.extend(tw.iter().copied());
                    }
                }
                for &iw in direct {
                    entries.insert(iw, 1.0);
                }
                let mut visited: BTreeSet<WordId> = BTreeSet::new();
                for &tw in &union {
                    for &iw in self.iwords_of_tword(tw) {
                        if entries.contains_key(&iw) || !visited.insert(iw) {
                            continue;
                        }
                        let Some(tws) = self.twords_of_iword(iw) else {
                            continue;
                        };
                        let s = jaccard_sorted(tws, &union);
                        if s > tau {
                            entries.insert(iw, s);
                        }
                    }
                }
            }
            WordKind::Unknown => {}
        }
        Ok(CandidateSet::from_entries(query_word, entries))
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.iword_partitions.estimated_bytes()
            + self.tword_iwords.estimated_bytes()
            + self.iword_twords.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §III running example plus an unassociated t-word and an i-word
    /// with no t-words at all.
    fn example_directory() -> KeywordDirectory {
        let mut dir = KeywordDirectory::new();
        let costa = dir.add_iword("costa").unwrap();
        let apple = dir.add_iword("apple").unwrap();
        let starbucks = dir.add_iword("starbucks").unwrap();
        let samsung = dir.add_iword("samsung").unwrap();
        let bare = dir.add_iword("bare-brand").unwrap();
        for t in ["coffee", "drinks", "macha"] {
            dir.add_tword_for(costa, t);
        }
        for t in ["phone", "mac", "laptop", "watch"] {
            dir.add_tword_for(apple, t);
        }
        for t in ["coffee", "macha", "latte", "drinks"] {
            dir.add_tword_for(starbucks, t);
        }
        for t in ["phone", "laptop", "earphone"] {
            dir.add_tword_for(samsung, t);
        }
        dir.name_partition(PartitionId(3), costa).unwrap();
        dir.name_partition(PartitionId(10), apple).unwrap();
        dir.name_partition(PartitionId(7), starbucks).unwrap();
        dir.name_partition(PartitionId(12), samsung).unwrap();
        dir.name_partition(PartitionId(2), bare).unwrap();
        dir
    }

    fn assert_sets_equal(a: &CandidateSet, b: &CandidateSet) {
        assert_eq!(a.query_word, b.query_word);
        assert_eq!(a.len(), b.len());
        for e in a.entries() {
            let other = b.similarity(e.iword).expect("entry present in both");
            assert!(
                (e.similarity - other).abs() == 0.0,
                "similarity mismatch for {:?}: {} vs {}",
                e.iword,
                e.similarity,
                other
            );
        }
    }

    #[test]
    fn candidate_sets_match_vocabulary_scan() {
        let dir = example_directory();
        let postings = KeywordPostings::build(&dir);
        // Every word in the vocabulary, at several thresholds, must produce
        // the same candidate set through postings as through the scan.
        let words: Vec<WordId> = dir.vocab().iwords().chain(dir.vocab().twords()).collect();
        for &w in &words {
            for tau in [0.0, 0.05, 0.3, 0.5, 0.9, 1.0] {
                let scan = CandidateSet::build(w, dir.vocab(), dir.mappings(), tau).unwrap();
                let fast = postings
                    .candidate_set(w, dir.vocab().classify(w), tau)
                    .unwrap();
                assert_sets_equal(&scan, &fast);
            }
        }
    }

    #[test]
    fn posting_lists_match_directory() {
        let dir = example_directory();
        let postings = KeywordPostings::build(&dir);
        for iw in dir.vocab().iwords() {
            let mut expect = dir.partitions_of(iw).to_vec();
            expect.sort_unstable();
            assert_eq!(postings.partitions_of(iw), expect.as_slice());
        }
        let latte = dir.lookup("latte").unwrap();
        let starbucks = dir.lookup("starbucks").unwrap();
        assert_eq!(postings.iwords_of_tword(latte), &[starbucks]);
        // A word that is not a t-word has an empty reverse posting.
        assert!(postings.iwords_of_tword(starbucks).is_empty());
        assert!(postings.num_posting_lists() >= 5);
        assert!(postings.estimated_bytes() > 0);
    }

    #[test]
    fn invalid_threshold_is_rejected_like_the_scan() {
        let dir = example_directory();
        let postings = KeywordPostings::build(&dir);
        let latte = dir.lookup("latte").unwrap();
        assert!(matches!(
            postings.candidate_set(latte, WordKind::TWord, 1.5),
            Err(KeywordError::InvalidThreshold(_))
        ));
    }
}
