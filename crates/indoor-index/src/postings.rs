//! Inverted keyword → partition posting lists over interned [`WordId`]s.
//!
//! Three sorted tables replace the vocabulary scan of
//! `CandidateSet::build`: `i-word → partitions` (the inverted index proper,
//! used for key-partition generation), `t-word → i-words` and `i-word →
//! t-words` (the association adjacency, used to enumerate Definition-4
//! indirect matches without touching unrelated i-words). All three are
//! plain sorted `Vec<(WordId, …)>` looked up by binary search — compact,
//! cache-friendly, and build in `O(vocabulary + associations)`.

use indoor_keywords::{jaccard, CandidateSet, KeywordDirectory, Result as KeywordResult, WordId};
use indoor_keywords::{KeywordError, WordKind};
use indoor_space::PartitionId;
use std::collections::{BTreeMap, BTreeSet};

/// Sorted posting-list tables for one venue's keyword directory.
#[derive(Debug, Default)]
pub struct KeywordPostings {
    /// i-word → partitions it names, sorted by word then by partition.
    iword_partitions: Vec<(WordId, Box<[PartitionId]>)>,
    /// t-word → i-words it thematically describes, sorted by word.
    tword_iwords: Vec<(WordId, Box<[WordId]>)>,
    /// i-word → its t-word set, sorted by word. Kept as `BTreeSet` so the
    /// accelerated path scores with the exact [`jaccard`] the scan uses.
    iword_twords: Vec<(WordId, BTreeSet<WordId>)>,
}

impl KeywordPostings {
    /// Builds the tables from a keyword directory.
    pub fn build(directory: &KeywordDirectory) -> Self {
        let vocab = directory.vocab();
        let mappings = directory.mappings();

        let mut iword_partitions = Vec::new();
        let mut iword_twords = Vec::new();
        for iw in vocab.iwords() {
            let partitions = mappings.i2p(iw);
            if !partitions.is_empty() {
                let mut sorted: Vec<PartitionId> = partitions.to_vec();
                sorted.sort_unstable();
                iword_partitions.push((iw, sorted.into_boxed_slice()));
            }
            if let Some(tw) = mappings.i2t(iw) {
                iword_twords.push((iw, tw.clone()));
            }
        }

        let mut tword_iwords = Vec::new();
        for tw in vocab.twords() {
            if let Some(iws) = mappings.t2i(tw) {
                let list: Vec<WordId> = iws.iter().copied().collect();
                tword_iwords.push((tw, list.into_boxed_slice()));
            }
        }

        // `Vocabulary` hands words out in insertion order; sort so lookups
        // can binary-search regardless.
        iword_partitions.sort_unstable_by_key(|(w, _)| *w);
        iword_twords.sort_unstable_by_key(|(w, _)| *w);
        tword_iwords.sort_unstable_by_key(|(w, _)| *w);
        KeywordPostings {
            iword_partitions,
            tword_iwords,
            iword_twords,
        }
    }

    /// The partitions named by an i-word (empty for non-naming words).
    pub fn partitions_of(&self, iword: WordId) -> &[PartitionId] {
        match self
            .iword_partitions
            .binary_search_by_key(&iword, |(w, _)| *w)
        {
            Ok(i) => &self.iword_partitions[i].1,
            Err(_) => &[],
        }
    }

    /// The i-words a t-word directly describes (`T2I`).
    pub fn iwords_of_tword(&self, tword: WordId) -> &[WordId] {
        match self.tword_iwords.binary_search_by_key(&tword, |(w, _)| *w) {
            Ok(i) => &self.tword_iwords[i].1,
            Err(_) => &[],
        }
    }

    /// The t-word set of an i-word (`I2T`), when it has one.
    pub fn twords_of_iword(&self, iword: WordId) -> Option<&BTreeSet<WordId>> {
        match self.iword_twords.binary_search_by_key(&iword, |(w, _)| *w) {
            Ok(i) => Some(&self.iword_twords[i].1),
            Err(_) => None,
        }
    }

    /// Number of i-word posting lists.
    pub fn num_posting_lists(&self) -> usize {
        self.iword_partitions.len()
    }

    /// Builds the candidate i-word set `κ(wQ)` for one query keyword from
    /// the posting lists — same output as [`CandidateSet::build`], without
    /// the vocabulary scan.
    ///
    /// Equivalence argument: the scan keeps an indirect i-word `wi` iff
    /// `I2T(wi)` intersects the union `U` of the direct matches' t-words.
    /// Associations are symmetric (`wi ∈ T2I(t) ⟺ t ∈ I2T(wi)`), so that
    /// set is exactly `⋃_{t ∈ U} T2I(t)` minus the direct matches — which
    /// is what this walks. Scores use the same [`jaccard`] on the same
    /// `BTreeSet`s, so entries and similarities match bit for bit.
    pub fn candidate_set(
        &self,
        query_word: WordId,
        kind: WordKind,
        tau: f64,
    ) -> KeywordResult<CandidateSet> {
        if !(0.0..=1.0).contains(&tau) {
            return Err(KeywordError::InvalidThreshold(tau));
        }
        let mut entries = BTreeMap::new();
        match kind {
            WordKind::IWord => {
                entries.insert(query_word, 1.0);
            }
            WordKind::TWord => {
                let direct = self.iwords_of_tword(query_word);
                let mut union: BTreeSet<WordId> = BTreeSet::new();
                for &iw in direct {
                    if let Some(tw) = self.twords_of_iword(iw) {
                        union.extend(tw.iter().copied());
                    }
                }
                for &iw in direct {
                    entries.insert(iw, 1.0);
                }
                let mut visited: BTreeSet<WordId> = BTreeSet::new();
                for &tw in &union {
                    for &iw in self.iwords_of_tword(tw) {
                        if entries.contains_key(&iw) || !visited.insert(iw) {
                            continue;
                        }
                        let Some(tws) = self.twords_of_iword(iw) else {
                            continue;
                        };
                        let s = jaccard(tws, &union);
                        if s > tau {
                            entries.insert(iw, s);
                        }
                    }
                }
            }
            WordKind::Unknown => {}
        }
        Ok(CandidateSet::from_entries(query_word, entries))
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        let iword_partitions = self
            .iword_partitions
            .iter()
            .map(|(_, p)| std::mem::size_of_val::<[PartitionId]>(p) + 16)
            .sum::<usize>();
        let tword_iwords = self
            .tword_iwords
            .iter()
            .map(|(_, i)| std::mem::size_of_val::<[WordId]>(i) + 16)
            .sum::<usize>();
        let iword_twords = self
            .iword_twords
            .iter()
            .map(|(_, t)| t.len() * std::mem::size_of::<WordId>() * 3 + 16)
            .sum::<usize>();
        iword_partitions + tword_iwords + iword_twords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §III running example plus an unassociated t-word and an i-word
    /// with no t-words at all.
    fn example_directory() -> KeywordDirectory {
        let mut dir = KeywordDirectory::new();
        let costa = dir.add_iword("costa").unwrap();
        let apple = dir.add_iword("apple").unwrap();
        let starbucks = dir.add_iword("starbucks").unwrap();
        let samsung = dir.add_iword("samsung").unwrap();
        let bare = dir.add_iword("bare-brand").unwrap();
        for t in ["coffee", "drinks", "macha"] {
            dir.add_tword_for(costa, t);
        }
        for t in ["phone", "mac", "laptop", "watch"] {
            dir.add_tword_for(apple, t);
        }
        for t in ["coffee", "macha", "latte", "drinks"] {
            dir.add_tword_for(starbucks, t);
        }
        for t in ["phone", "laptop", "earphone"] {
            dir.add_tword_for(samsung, t);
        }
        dir.name_partition(PartitionId(3), costa).unwrap();
        dir.name_partition(PartitionId(10), apple).unwrap();
        dir.name_partition(PartitionId(7), starbucks).unwrap();
        dir.name_partition(PartitionId(12), samsung).unwrap();
        dir.name_partition(PartitionId(2), bare).unwrap();
        dir
    }

    fn assert_sets_equal(a: &CandidateSet, b: &CandidateSet) {
        assert_eq!(a.query_word, b.query_word);
        assert_eq!(a.len(), b.len());
        for e in a.entries() {
            let other = b.similarity(e.iword).expect("entry present in both");
            assert!(
                (e.similarity - other).abs() == 0.0,
                "similarity mismatch for {:?}: {} vs {}",
                e.iword,
                e.similarity,
                other
            );
        }
    }

    #[test]
    fn candidate_sets_match_vocabulary_scan() {
        let dir = example_directory();
        let postings = KeywordPostings::build(&dir);
        // Every word in the vocabulary, at several thresholds, must produce
        // the same candidate set through postings as through the scan.
        let words: Vec<WordId> = dir.vocab().iwords().chain(dir.vocab().twords()).collect();
        for &w in &words {
            for tau in [0.0, 0.05, 0.3, 0.5, 0.9, 1.0] {
                let scan = CandidateSet::build(w, dir.vocab(), dir.mappings(), tau).unwrap();
                let fast = postings
                    .candidate_set(w, dir.vocab().classify(w), tau)
                    .unwrap();
                assert_sets_equal(&scan, &fast);
            }
        }
    }

    #[test]
    fn posting_lists_match_directory() {
        let dir = example_directory();
        let postings = KeywordPostings::build(&dir);
        for iw in dir.vocab().iwords() {
            let mut expect = dir.partitions_of(iw).to_vec();
            expect.sort_unstable();
            assert_eq!(postings.partitions_of(iw), expect.as_slice());
        }
        let latte = dir.lookup("latte").unwrap();
        let starbucks = dir.lookup("starbucks").unwrap();
        assert_eq!(postings.iwords_of_tword(latte), &[starbucks]);
        // A word that is not a t-word has an empty reverse posting.
        assert!(postings.iwords_of_tword(starbucks).is_empty());
        assert!(postings.num_posting_lists() >= 5);
        assert!(postings.estimated_bytes() > 0);
    }

    #[test]
    fn invalid_threshold_is_rejected_like_the_scan() {
        let dir = example_directory();
        let postings = KeywordPostings::build(&dir);
        let latte = dir.lookup("latte").unwrap();
        assert!(matches!(
            postings.candidate_set(latte, WordKind::TWord, 1.5),
            Err(KeywordError::InvalidThreshold(_))
        ));
    }
}
