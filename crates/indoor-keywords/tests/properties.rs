//! Property-based tests of the keyword substrate: Jaccard similarity axioms,
//! the candidate i-word set of Definition 4 (direct matches at similarity 1,
//! indirect matches above the threshold τ), and the keyword relevance of
//! Definition 6 (range and monotonicity), on randomly generated keyword
//! directories.

use indoor_keywords::{
    jaccard, CoverageTracker, KeywordDirectory, PreparedQuery, QueryKeywords, RelevanceModel,
    WordId, WordKind,
};
use indoor_space::PartitionId;
use proptest::prelude::*;
use std::collections::BTreeSet;

// -------------------------------------------------------------------
// Jaccard similarity
// -------------------------------------------------------------------

fn arb_word_set() -> impl Strategy<Value = BTreeSet<WordId>> {
    proptest::collection::btree_set((0u32..40).prop_map(WordId), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jaccard_axioms(a in arb_word_set(), b in arb_word_set()) {
        let s = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((jaccard(&b, &a) - s).abs() < 1e-12, "symmetry");
        if !a.is_empty() {
            prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12, "identity");
        } else {
            prop_assert_eq!(jaccard(&a, &a), 0.0);
        }
        // s = 1 iff the non-empty sets are equal.
        if s == 1.0 {
            prop_assert_eq!(&a, &b);
        }
        // Disjoint sets score 0.
        if a.intersection(&b).next().is_none() {
            prop_assert_eq!(s, 0.0);
        }
    }
}

// -------------------------------------------------------------------
// Random keyword directories
// -------------------------------------------------------------------

/// Description of a random directory: a pool of t-word strings, one entry
/// per i-word with the indices of its t-words, and a partition count.
#[derive(Debug, Clone)]
struct DirectorySpec {
    /// For each i-word: the indices into the t-word pool it is tagged with.
    iwords: Vec<Vec<usize>>,
    /// Number of partitions receiving an i-word (cyclically).
    partitions: usize,
}

const TWORD_POOL: &[&str] = &[
    "coffee", "latte", "mocha", "phone", "laptop", "watch", "earphone", "pants", "coat", "shoes",
    "boots", "cash", "euro", "lotion", "shampoo", "noodle", "cookie", "printer",
];

fn arb_directory() -> impl Strategy<Value = DirectorySpec> {
    (
        proptest::collection::vec(
            proptest::collection::vec(0usize..TWORD_POOL.len(), 0..6),
            2..10,
        ),
        2usize..12,
    )
        .prop_map(|(iwords, partitions)| DirectorySpec { iwords, partitions })
}

fn build_directory(spec: &DirectorySpec) -> KeywordDirectory {
    let mut dir = KeywordDirectory::new();
    for (i, twords) in spec.iwords.iter().enumerate() {
        let iword = dir.add_iword(&format!("brand{i}")).unwrap();
        for &t in twords {
            dir.add_tword_for(iword, TWORD_POOL[t]);
        }
        // Assign the i-word to one or more partitions, cyclically.
        let v = PartitionId((i % spec.partitions) as u32);
        // A partition may already be named when several i-words map to the
        // same slot; skip silently in that case (P2I is many-to-one from the
        // partition side, one i-word per partition).
        let _ = dir.name_partition(v, iword);
    }
    dir
}

/// Query words mixing i-words, t-words and unknown words.
fn arb_query_words(num_iwords: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        prop_oneof![
            (0..num_iwords.max(1)).prop_map(|i| format!("brand{i}")),
            (0usize..TWORD_POOL.len()).prop_map(|t| TWORD_POOL[t].to_string()),
            Just("unknownword".to_string()),
        ],
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 4: every candidate entry has similarity in (τ, 1]; a query
    /// word that is an i-word has exactly itself as candidate with score 1;
    /// a t-word's direct matching i-words score exactly 1.
    #[test]
    fn candidate_sets_respect_the_threshold_and_direct_matches(
        spec in arb_directory(),
        words in arb_query_words(8),
        tau in 0.05f64..0.6,
    ) {
        let dir = build_directory(&spec);
        let query = QueryKeywords::new(words.iter().map(String::as_str)).unwrap();
        let prepared = PreparedQuery::prepare(&query, &dir, tau).unwrap();
        prop_assert_eq!(prepared.len(), words.len());
        prop_assert!((prepared.tau() - tau).abs() < 1e-12);

        for (idx, raw) in words.iter().enumerate() {
            let (id, kind) = dir.classify(raw);
            match kind {
                WordKind::IWord => {
                    let iw = id.unwrap();
                    prop_assert_eq!(prepared.similarity(idx, iw), Some(1.0));
                    // No other candidate for an i-word query word.
                    for other in dir.vocab().iwords() {
                        if other != iw {
                            prop_assert_eq!(prepared.similarity(idx, other), None);
                        }
                    }
                }
                WordKind::TWord => {
                    let tw = id.unwrap();
                    for iw in dir.vocab().iwords() {
                        if let Some(s) = prepared.similarity(idx, iw) {
                            prop_assert!(s > tau - 1e-12, "candidate below threshold: {s} <= {tau}");
                            prop_assert!(s <= 1.0 + 1e-12);
                            prop_assert!(prepared.is_candidate_iword(iw));
                        }
                        // Direct matching i-words (t-word attached to them)
                        // must be candidates with similarity exactly 1.
                        if dir.twords_of(iw).contains(&tw) {
                            prop_assert_eq!(prepared.similarity(idx, iw), Some(1.0));
                        }
                    }
                }
                WordKind::Unknown => {
                    for iw in dir.vocab().iwords() {
                        prop_assert_eq!(prepared.similarity(idx, iw), None);
                    }
                }
            }
        }

        // The candidate union is exactly the i-words with some per-word entry.
        for iw in dir.vocab().iwords() {
            let in_union = prepared.candidate_iwords().contains(&iw);
            let in_some_word = (0..words.len()).any(|i| prepared.similarity(i, iw).is_some());
            prop_assert_eq!(in_union, in_some_word);
        }

        // Key partitions are exactly the partitions of candidate i-words.
        let key = prepared.key_partitions(&dir);
        for v in (0..spec.partitions as u32).map(PartitionId) {
            let expected = dir
                .partition_iword(v)
                .map(|iw| prepared.is_candidate_iword(iw))
                .unwrap_or(false);
            prop_assert_eq!(key.contains(&v), expected);
        }
    }

    /// Definition 6: the relevance is 0 or in (1, |QW| + 1], grows weakly
    /// monotonically as more i-words are added to the route words, and the
    /// incremental CoverageTracker agrees with the batch computation.
    #[test]
    fn relevance_range_monotonicity_and_incremental_agreement(
        spec in arb_directory(),
        words in arb_query_words(8),
        tau in 0.05f64..0.6,
        route_iwords in proptest::collection::vec(0usize..10, 0..8),
    ) {
        let dir = build_directory(&spec);
        let query = QueryKeywords::new(words.iter().map(String::as_str)).unwrap();
        let prepared = PreparedQuery::prepare(&query, &dir, tau).unwrap();

        let all_iwords: Vec<WordId> = dir.vocab().iwords().collect();
        let route_words: Vec<WordId> = route_iwords
            .iter()
            .map(|&i| all_iwords[i % all_iwords.len()])
            .collect();

        let mut tracker = CoverageTracker::new(prepared.len());
        let mut previous = 0.0f64;
        let mut seen: BTreeSet<WordId> = BTreeSet::new();
        for &iw in &route_words {
            tracker.add_iword(&prepared, iw);
            seen.insert(iw);
            let incremental = tracker.relevance();
            let batch = RelevanceModel::relevance_of_words(&seen, &prepared);
            prop_assert!((incremental - batch).abs() < 1e-9,
                "incremental {incremental} vs batch {batch}");
            // Range of Definition 6: 0 when nothing is covered, otherwise in
            // (1, |QW| + 1].
            if incremental > 0.0 {
                prop_assert!(incremental > 1.0 - 1e-12);
                prop_assert!(incremental <= prepared.len() as f64 + 1.0 + 1e-9);
            }
            // Monotonicity: adding a word never decreases the relevance.
            prop_assert!(incremental + 1e-12 >= previous);
            previous = incremental;
        }
        prop_assert_eq!(tracker.covered_count() == prepared.len(), tracker.is_fully_covered());

        // Full coverage bound: covering every query word with direct matches
        // yields exactly |QW| + 1.
        if tracker.is_fully_covered()
            && tracker.best_similarities().iter().all(|&s| (s - 1.0).abs() < 1e-12)
        {
            prop_assert!((tracker.relevance() - (prepared.len() as f64 + 1.0)).abs() < 1e-9);
        }
    }

    /// The vocabulary keeps i-words and t-words disjoint no matter the
    /// construction order, and classification is consistent with membership.
    #[test]
    fn vocabularies_stay_disjoint(spec in arb_directory()) {
        let dir = build_directory(&spec);
        let iwords: BTreeSet<WordId> = dir.vocab().iwords().collect();
        let twords: BTreeSet<WordId> = dir.vocab().twords().collect();
        prop_assert!(iwords.intersection(&twords).next().is_none());
        for &iw in &iwords {
            prop_assert_eq!(dir.vocab().classify(iw), WordKind::IWord);
            let raw = dir.resolve(iw).unwrap().to_string();
            prop_assert_eq!(dir.lookup(&raw), Some(iw));
        }
        for &tw in &twords {
            prop_assert_eq!(dir.vocab().classify(tw), WordKind::TWord);
        }
        // Every named partition resolves to an existing i-word.
        for v in dir.mappings().named_partitions() {
            let iw = dir.partition_iword(v).unwrap();
            prop_assert!(iwords.contains(&iw));
            prop_assert!(dir.partitions_of(iw).contains(&v));
        }
    }
}
