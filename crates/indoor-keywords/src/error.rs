//! Error type for the keyword substrate.

use crate::intern::WordId;
use indoor_space::PartitionId;
use std::fmt;

/// Errors produced while building or querying keyword structures.
#[derive(Debug, Clone, PartialEq)]
pub enum KeywordError {
    /// A word id was used that is not known to the interner.
    UnknownWord(WordId),
    /// A word string was looked up that is not in any vocabulary.
    UnknownWordString(String),
    /// A word was registered both as an i-word and a t-word; the paper keeps
    /// the two sets disjoint (§III-A).
    VocabularyOverlap(String),
    /// A partition already has an i-word; `P2I` is many-to-one so a second
    /// assignment is a modelling error.
    PartitionAlreadyNamed(PartitionId),
    /// A partition has no i-word assigned.
    PartitionUnnamed(PartitionId),
    /// The similarity threshold must lie in `[0, 1]`.
    InvalidThreshold(f64),
    /// The query keyword list is empty.
    EmptyQuery,
}

impl fmt::Display for KeywordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeywordError::UnknownWord(w) => write!(f, "unknown word id {w:?}"),
            KeywordError::UnknownWordString(s) => write!(f, "unknown word '{s}'"),
            KeywordError::VocabularyOverlap(s) => {
                write!(f, "word '{s}' cannot be both an i-word and a t-word")
            }
            KeywordError::PartitionAlreadyNamed(v) => {
                write!(f, "partition {v} already has an i-word")
            }
            KeywordError::PartitionUnnamed(v) => write!(f, "partition {v} has no i-word"),
            KeywordError::InvalidThreshold(t) => {
                write!(f, "similarity threshold must be in [0,1], got {t}")
            }
            KeywordError::EmptyQuery => write!(f, "query keyword list is empty"),
        }
    }
}

impl std::error::Error for KeywordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display() {
        let cases = vec![
            KeywordError::UnknownWord(WordId(1)),
            KeywordError::UnknownWordString("x".into()),
            KeywordError::VocabularyOverlap("apple".into()),
            KeywordError::PartitionAlreadyNamed(PartitionId(2)),
            KeywordError::PartitionUnnamed(PartitionId(3)),
            KeywordError::InvalidThreshold(1.5),
            KeywordError::EmptyQuery,
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
