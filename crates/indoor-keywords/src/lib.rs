//! # indoor-keywords
//!
//! The two-level indoor keyword substrate of the IKRQ paper (§III).
//!
//! The paper distinguishes **identity words** (i-words) — the semantic name
//! of a partition, e.g. `starbucks` — from **thematic words** (t-words) that
//! further describe an i-word, e.g. `coffee`, `latte`. Four mappings connect
//! partitions, i-words and t-words:
//!
//! * `P2I` — partition → its single i-word (many-to-one),
//! * `I2P` — i-word → the partitions it identifies (one-to-many),
//! * `I2T` — i-word → its t-words (many-to-many),
//! * `T2I` — t-word → the i-words it describes (many-to-many).
//!
//! On top of the mappings the crate implements:
//!
//! * the **candidate i-word set** `κ(wQ)` of Definition 4 with direct and
//!   indirect (Jaccard-similar) matches and the threshold `τ`,
//! * **route words** `RW(R)` of Definition 5 and the **keyword relevance**
//!   `ρ_QW(R)` of Definition 6, plus an incremental [`CoverageTracker`] the
//!   search engine uses to maintain relevance while expanding routes,
//! * a RAKE-style keyword **extraction** pipeline with TF-IDF ranking that
//!   substitutes the paper's web-crawled corpus preparation (§V-A1),
//! * a [`KeywordDirectory`] facade bundling vocabulary and mappings for a
//!   venue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod directory;
pub mod error;
pub mod extraction;
pub mod intern;
pub mod mappings;
pub mod query;
pub mod relevance;
pub mod similarity;
pub mod vocab;

pub use corpus::{Corpus, Document};
pub use directory::KeywordDirectory;
pub use error::KeywordError;
pub use extraction::{ExtractionConfig, ExtractionPipeline};
pub use intern::{Interner, WordId};
pub use mappings::KeywordMappings;
pub use query::{PreparedQuery, PreparedWord, QueryKeywords};
pub use relevance::{route_words, CoverageTracker, RelevanceModel};
pub use similarity::{jaccard, jaccard_sorted, CandidateEntry, CandidateSet};
pub use vocab::{Vocabulary, WordKind};

/// Result alias for fallible keyword operations.
pub type Result<T> = std::result::Result<T, KeywordError>;

/// Commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::{
        CandidateSet, Corpus, CoverageTracker, Document, ExtractionConfig, ExtractionPipeline,
        Interner, KeywordDirectory, KeywordError, KeywordMappings, PreparedQuery, QueryKeywords,
        RelevanceModel, Vocabulary, WordId, WordKind,
    };
}
