//! The four keyword mappings of §III-A: `P2I`, `I2P`, `I2T`, `T2I`, plus the
//! partition-words accessor `PW(v)`.

use crate::error::KeywordError;
use crate::intern::WordId;
use crate::Result;
use indoor_space::PartitionId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The keyword mappings of a venue.
///
/// * `P2I` is many-to-one: every partition has exactly one i-word, several
///   partitions may share one (five `cashier` booths).
/// * `I2P` is the inverse, one-to-many.
/// * `I2T` / `T2I` are many-to-many.
///
/// For simplicity of presentation — and matching the paper's assumption —
/// "two partitions with the same i-word have the same set of t-words", because
/// t-words attach to the i-word, not the partition.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeywordMappings {
    p2i: BTreeMap<PartitionId, WordId>,
    i2p: BTreeMap<WordId, Vec<PartitionId>>,
    i2t: BTreeMap<WordId, BTreeSet<WordId>>,
    t2i: BTreeMap<WordId, BTreeSet<WordId>>,
}

impl KeywordMappings {
    /// Creates empty mappings.
    pub fn new() -> Self {
        KeywordMappings::default()
    }

    /// Rebuilds the mappings from persisted sorted tables (the columnar venue
    /// load path): every map is bulk-built from its strictly ascending key
    /// order instead of being replayed entry by entry. `i2p` lists keep their
    /// persisted order — it is part of the model's fingerprint identity — and
    /// only structural invariants are checked here (key order, non-empty
    /// ascending sets, `i2p` covering exactly the named partitions); semantic
    /// consistency between the tables is the writer's responsibility and is
    /// protected on disk by the section checksum. Violations are reported as
    /// a human-readable reason so loaders can degrade to a rebuild.
    pub fn from_sorted_parts(
        p2i: Vec<(PartitionId, WordId)>,
        i2p: Vec<(WordId, Vec<PartitionId>)>,
        i2t: Vec<(WordId, Vec<WordId>)>,
        t2i: Vec<(WordId, Vec<WordId>)>,
    ) -> std::result::Result<Self, String> {
        if p2i.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("p2i partitions are not strictly ascending".to_string());
        }
        if i2p.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("i2p i-words are not strictly ascending".to_string());
        }
        let mut covered = 0usize;
        for (w, list) in &i2p {
            if list.is_empty() {
                return Err(format!("i2p({w}) lists no partitions"));
            }
            covered += list.len();
        }
        if covered != p2i.len() {
            return Err(format!(
                "i2p lists {covered} partitions, p2i names {}",
                p2i.len()
            ));
        }
        let build_sets =
            |name: &str,
             table: Vec<(WordId, Vec<WordId>)>|
             -> std::result::Result<BTreeMap<WordId, BTreeSet<WordId>>, String> {
                if table.windows(2).any(|w| w[0].0 >= w[1].0) {
                    return Err(format!("{name} keys are not strictly ascending"));
                }
                table
                    .into_iter()
                    .map(|(w, list)| {
                        if list.is_empty() {
                            return Err(format!("{name}({w}) is empty"));
                        }
                        if list.windows(2).any(|x| x[0] >= x[1]) {
                            return Err(format!("{name}({w}) is not strictly ascending"));
                        }
                        Ok((w, list.into_iter().collect()))
                    })
                    .collect()
            };
        Ok(KeywordMappings {
            p2i: p2i.into_iter().collect(),
            i2p: i2p.into_iter().collect(),
            i2t: build_sets("i2t", i2t)?,
            t2i: build_sets("t2i", t2i)?,
        })
    }

    /// Iterates `P2I` in partition order — whole-map traversal for
    /// persistence capture.
    pub fn p2i_entries(&self) -> impl Iterator<Item = (PartitionId, WordId)> + '_ {
        self.p2i.iter().map(|(v, w)| (*v, *w))
    }

    /// Iterates `T2I` in t-word order.
    pub fn t2i_entries(&self) -> impl Iterator<Item = (WordId, &BTreeSet<WordId>)> {
        self.t2i.iter().map(|(w, s)| (*w, s))
    }

    /// Assigns i-word `w` to partition `v` (`P2I(v) = w`). Fails when the
    /// partition already has an i-word.
    pub fn assign_partition(&mut self, v: PartitionId, w: WordId) -> Result<()> {
        if self.p2i.contains_key(&v) {
            return Err(KeywordError::PartitionAlreadyNamed(v));
        }
        self.p2i.insert(v, w);
        self.i2p.entry(w).or_default().push(v);
        Ok(())
    }

    /// Associates t-word `t` with i-word `w` (updates both `I2T` and `T2I`).
    pub fn associate(&mut self, iword: WordId, tword: WordId) {
        self.i2t.entry(iword).or_default().insert(tword);
        self.t2i.entry(tword).or_default().insert(iword);
    }

    /// `P2I(v)`: the i-word of a partition, if assigned.
    pub fn p2i(&self, v: PartitionId) -> Option<WordId> {
        self.p2i.get(&v).copied()
    }

    /// `I2P(w)`: the partitions identified by an i-word.
    pub fn i2p(&self, w: WordId) -> &[PartitionId] {
        self.i2p.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `I2T(w)`: the t-words of an i-word.
    pub fn i2t(&self, w: WordId) -> Option<&BTreeSet<WordId>> {
        self.i2t.get(&w)
    }

    /// `T2I(t)`: the i-words described by a t-word.
    pub fn t2i(&self, t: WordId) -> Option<&BTreeSet<WordId>> {
        self.t2i.get(&t)
    }

    /// Iterates `I2P` in i-word order — map-order traversal for callers
    /// (like fingerprinting) that would otherwise pay a lookup per i-word.
    pub fn i2p_entries(&self) -> impl Iterator<Item = (WordId, &[PartitionId])> {
        self.i2p.iter().map(|(w, v)| (*w, v.as_slice()))
    }

    /// Iterates `I2T` in i-word order.
    pub fn i2t_entries(&self) -> impl Iterator<Item = (WordId, &BTreeSet<WordId>)> {
        self.i2t.iter().map(|(w, s)| (*w, s))
    }

    /// `PW(v)`: the partition words of `v` — its i-word plus the i-word's
    /// t-words. Returns an error when the partition has no i-word.
    pub fn partition_words(&self, v: PartitionId) -> Result<(WordId, BTreeSet<WordId>)> {
        let iword = self.p2i(v).ok_or(KeywordError::PartitionUnnamed(v))?;
        let twords = self.i2t(iword).cloned().unwrap_or_default();
        Ok((iword, twords))
    }

    /// Partitions assigned to any i-word (i.e. partitions carrying keywords).
    pub fn named_partitions(&self) -> impl Iterator<Item = PartitionId> + '_ {
        self.p2i.keys().copied()
    }

    /// All i-words that identify at least one partition.
    pub fn used_iwords(&self) -> impl Iterator<Item = WordId> + '_ {
        self.i2p.keys().copied()
    }

    /// Number of (i-word, t-word) association pairs.
    pub fn num_associations(&self) -> usize {
        self.i2t.values().map(BTreeSet::len).sum()
    }

    /// Average number of t-words per i-word that has at least one t-word.
    pub fn avg_twords_per_iword(&self) -> f64 {
        if self.i2t.is_empty() {
            return 0.0;
        }
        self.num_associations() as f64 / self.i2t.len() as f64
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.p2i.len() * (std::mem::size_of::<PartitionId>() + std::mem::size_of::<WordId>())
            + self
                .i2p
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<PartitionId>() + 16)
                .sum::<usize>()
            + (self.num_associations() * 2) * std::mem::size_of::<WordId>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn sample() -> (Vocabulary, KeywordMappings) {
        let mut v = Vocabulary::new();
        let mut m = KeywordMappings::new();
        let apple = v.add_iword("apple").unwrap();
        let costa = v.add_iword("costa").unwrap();
        let cashier = v.add_iword("cashier").unwrap();
        let (coffee, _) = v.add_tword("coffee");
        let (laptop, _) = v.add_tword("laptop");
        let (phone, _) = v.add_tword("phone");
        m.assign_partition(PartitionId(3), costa).unwrap();
        m.assign_partition(PartitionId(10), apple).unwrap();
        m.assign_partition(PartitionId(20), cashier).unwrap();
        m.assign_partition(PartitionId(21), cashier).unwrap();
        m.associate(apple, laptop);
        m.associate(apple, phone);
        m.associate(costa, coffee);
        (v, m)
    }

    #[test]
    fn p2i_is_many_to_one() {
        let (v, m) = sample();
        let cashier = v.lookup("cashier").unwrap();
        assert_eq!(m.p2i(PartitionId(20)), Some(cashier));
        assert_eq!(m.p2i(PartitionId(21)), Some(cashier));
        assert_eq!(m.i2p(cashier), &[PartitionId(20), PartitionId(21)]);
        // A partition can only be named once.
        let mut m2 = m.clone();
        assert!(m2
            .assign_partition(PartitionId(20), v.lookup("apple").unwrap())
            .is_err());
    }

    #[test]
    fn i2t_and_t2i_are_inverse_views() {
        let (v, m) = sample();
        let apple = v.lookup("apple").unwrap();
        let laptop = v.lookup("laptop").unwrap();
        assert!(m.i2t(apple).unwrap().contains(&laptop));
        assert!(m.t2i(laptop).unwrap().contains(&apple));
        assert!(m
            .t2i(v.lookup("coffee").unwrap())
            .unwrap()
            .contains(&v.lookup("costa").unwrap()));
        assert!(m.i2t(v.lookup("cashier").unwrap()).is_none());
    }

    #[test]
    fn partition_words_bundle_iword_and_twords() {
        let (v, m) = sample();
        let (iw, tw) = m.partition_words(PartitionId(10)).unwrap();
        assert_eq!(iw, v.lookup("apple").unwrap());
        assert_eq!(tw.len(), 2);
        // Unnamed partition errors.
        assert!(matches!(
            m.partition_words(PartitionId(99)),
            Err(KeywordError::PartitionUnnamed(_))
        ));
        // Named partition whose i-word has no t-words yields an empty set.
        let (_, tw) = m.partition_words(PartitionId(20)).unwrap();
        assert!(tw.is_empty());
    }

    #[test]
    fn from_sorted_parts_rebuilds_and_validates() {
        let (v, m) = sample();
        let p2i: Vec<_> = m.p2i_entries().collect();
        let i2p: Vec<_> = m.i2p_entries().map(|(w, l)| (w, l.to_vec())).collect();
        let i2t: Vec<_> = m
            .i2t_entries()
            .map(|(w, s)| (w, s.iter().copied().collect::<Vec<_>>()))
            .collect();
        let t2i: Vec<_> = m
            .t2i_entries()
            .map(|(w, s)| (w, s.iter().copied().collect::<Vec<_>>()))
            .collect();
        let back =
            KeywordMappings::from_sorted_parts(p2i.clone(), i2p.clone(), i2t.clone(), t2i.clone())
                .unwrap();
        let cashier = v.lookup("cashier").unwrap();
        assert_eq!(back.i2p(cashier), m.i2p(cashier));
        assert_eq!(back.p2i(PartitionId(10)), m.p2i(PartitionId(10)));
        assert_eq!(back.num_associations(), m.num_associations());
        assert_eq!(
            back.i2t(v.lookup("apple").unwrap()),
            m.i2t(v.lookup("apple").unwrap())
        );

        // Unsorted keys, empty lists and coverage mismatches are rejected.
        let mut bad = p2i.clone();
        bad.reverse();
        assert!(
            KeywordMappings::from_sorted_parts(bad, i2p.clone(), i2t.clone(), t2i.clone()).is_err()
        );
        let mut bad = i2p.clone();
        bad[0].1.clear();
        assert!(
            KeywordMappings::from_sorted_parts(p2i.clone(), bad, i2t.clone(), t2i.clone()).is_err()
        );
        let mut bad = i2p.clone();
        bad[0].1.push(PartitionId(77));
        assert!(
            KeywordMappings::from_sorted_parts(p2i.clone(), bad, i2t.clone(), t2i.clone()).is_err()
        );
        let mut bad = i2t.clone();
        bad[0].1.reverse();
        assert!(KeywordMappings::from_sorted_parts(p2i, i2p, bad, t2i).is_err());
    }

    #[test]
    fn statistics() {
        let (_, m) = sample();
        assert_eq!(m.num_associations(), 3);
        assert_eq!(m.named_partitions().count(), 4);
        assert_eq!(m.used_iwords().count(), 3);
        assert!((m.avg_twords_per_iword() - 1.5).abs() < 1e-9);
        assert!(m.estimated_bytes() > 0);
        assert!(KeywordMappings::new().avg_twords_per_iword() == 0.0);
    }
}
