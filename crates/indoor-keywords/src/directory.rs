//! [`KeywordDirectory`]: the per-venue bundle of vocabulary and mappings.

use crate::intern::WordId;
use crate::mappings::KeywordMappings;
use crate::vocab::{Vocabulary, WordKind};
use crate::Result;
use indoor_space::PartitionId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The complete keyword knowledge of a venue: the disjoint i-word/t-word
/// vocabularies plus the four mappings. The structure is immutable once
/// built; the builders in `indoor-data` assemble it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeywordDirectory {
    vocab: Vocabulary,
    mappings: KeywordMappings,
}

impl KeywordDirectory {
    /// Creates an empty directory (useful for incremental assembly).
    pub fn new() -> Self {
        KeywordDirectory::default()
    }

    /// Creates a directory from already-assembled parts.
    pub fn from_parts(vocab: Vocabulary, mappings: KeywordMappings) -> Self {
        KeywordDirectory { vocab, mappings }
    }

    /// Read access to the vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Read access to the mappings.
    pub fn mappings(&self) -> &KeywordMappings {
        &self.mappings
    }

    // ---------------------------------------------------------------
    // Assembly helpers (used by the data generators)
    // ---------------------------------------------------------------

    /// Registers an i-word.
    pub fn add_iword(&mut self, raw: &str) -> Result<WordId> {
        self.vocab.add_iword(raw)
    }

    /// Registers a t-word and associates it with an i-word. When the "t-word"
    /// string is actually an i-word it is skipped (the sets stay disjoint) and
    /// `None` is returned.
    pub fn add_tword_for(&mut self, iword: WordId, raw: &str) -> Option<WordId> {
        let (id, added) = self.vocab.add_tword(raw);
        if !added {
            return None;
        }
        self.mappings.associate(iword, id);
        Some(id)
    }

    /// Assigns an i-word to a partition.
    pub fn name_partition(&mut self, v: PartitionId, iword: WordId) -> Result<()> {
        self.mappings.assign_partition(v, iword)
    }

    // ---------------------------------------------------------------
    // Query-side accessors
    // ---------------------------------------------------------------

    /// Classifies a raw query string against the venue vocabulary. This is
    /// how "users do not have to specify i-words and t-words separately —
    /// they are recognised automatically" (§V-A1).
    pub fn classify(&self, raw: &str) -> (Option<WordId>, WordKind) {
        self.vocab.classify_str(raw)
    }

    /// The i-word of a partition.
    pub fn partition_iword(&self, v: PartitionId) -> Option<WordId> {
        self.mappings.p2i(v)
    }

    /// The partitions identified by an i-word.
    pub fn partitions_of(&self, iword: WordId) -> &[PartitionId] {
        self.mappings.i2p(iword)
    }

    /// The t-words of an i-word.
    pub fn twords_of(&self, iword: WordId) -> BTreeSet<WordId> {
        self.mappings.i2t(iword).cloned().unwrap_or_default()
    }

    /// Resolves a word id to its string.
    pub fn resolve(&self, id: WordId) -> Option<&str> {
        self.vocab.resolve(id)
    }

    /// Looks up a word id by string.
    pub fn lookup(&self, raw: &str) -> Option<WordId> {
        self.vocab.lookup(raw)
    }

    /// Estimated heap size in bytes (the paper reports the synthetic keyword
    /// mappings occupy ≈4 MB and are kept in main memory).
    pub fn estimated_bytes(&self) -> usize {
        self.vocab.estimated_bytes() + self.mappings.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_and_lookup_round_trip() {
        let mut dir = KeywordDirectory::new();
        let apple = dir.add_iword("Apple").unwrap();
        assert!(dir.add_tword_for(apple, "laptop").is_some());
        assert!(dir.add_tword_for(apple, "phone").is_some());
        // An i-word used as a t-word is skipped.
        let zara = dir.add_iword("zara").unwrap();
        assert!(dir.add_tword_for(apple, "zara").is_none());
        dir.name_partition(PartitionId(10), apple).unwrap();
        dir.name_partition(PartitionId(11), zara).unwrap();

        assert_eq!(dir.partition_iword(PartitionId(10)), Some(apple));
        assert_eq!(dir.partitions_of(apple), &[PartitionId(10)]);
        assert_eq!(dir.twords_of(apple).len(), 2);
        assert!(dir.twords_of(zara).is_empty());
        assert_eq!(dir.classify("LAPTOP").1, WordKind::TWord);
        assert_eq!(dir.classify("apple").1, WordKind::IWord);
        assert_eq!(dir.classify("unknown").1, WordKind::Unknown);
        assert_eq!(dir.resolve(apple), Some("apple"));
        assert_eq!(dir.lookup("Apple"), Some(apple));
        assert!(dir.estimated_bytes() > 0);
        assert_eq!(dir.vocab().num_iwords(), 2);
        assert_eq!(dir.mappings().num_associations(), 2);
    }

    #[test]
    fn from_parts_preserves_content() {
        let mut v = Vocabulary::new();
        let mut m = KeywordMappings::new();
        let iw = v.add_iword("costa").unwrap();
        let (tw, _) = v.add_tword("coffee");
        m.associate(iw, tw);
        m.assign_partition(PartitionId(3), iw).unwrap();
        let dir = KeywordDirectory::from_parts(v, m);
        assert_eq!(dir.partition_iword(PartitionId(3)), Some(iw));
        assert!(dir.twords_of(iw).contains(&tw));
    }
}
