//! [`KeywordDirectory`]: the per-venue bundle of vocabulary and mappings.

use crate::intern::WordId;
use crate::mappings::KeywordMappings;
use crate::vocab::{Vocabulary, WordKind};
use crate::Result;
use indoor_space::PartitionId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// The complete keyword knowledge of a venue: the disjoint i-word/t-word
/// vocabularies plus the four mappings. The structure is immutable once
/// built; the builders in `indoor-data` assemble it.
#[derive(Debug, Clone, Default)]
pub struct KeywordDirectory {
    vocab: Vocabulary,
    mappings: KeywordMappings,
    /// Memoized [`KeywordDirectory::fingerprint`]; reset by the assembly
    /// helpers so it can never go stale.
    fingerprint_cache: OnceLock<u64>,
}

// Hand-written (de)serialization: the wire shape is exactly the two content
// fields, so the fingerprint cache never leaks into persisted bytes and a
// deserialized directory starts with a cold cache.
impl Serialize for KeywordDirectory {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("vocab".to_string(), self.vocab.serialize()),
            ("mappings".to_string(), self.mappings.serialize()),
        ])
    }
}

impl Deserialize for KeywordDirectory {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let vocab = match value.get("vocab") {
            Some(v) => Vocabulary::deserialize(v)?,
            None => Vocabulary::missing("vocab")?,
        };
        let mappings = match value.get("mappings") {
            Some(v) => KeywordMappings::deserialize(v)?,
            None => KeywordMappings::missing("mappings")?,
        };
        Ok(KeywordDirectory::from_parts(vocab, mappings))
    }
}

impl KeywordDirectory {
    /// Creates an empty directory (useful for incremental assembly).
    pub fn new() -> Self {
        KeywordDirectory::default()
    }

    /// Creates a directory from already-assembled parts.
    pub fn from_parts(vocab: Vocabulary, mappings: KeywordMappings) -> Self {
        KeywordDirectory {
            vocab,
            mappings,
            fingerprint_cache: OnceLock::new(),
        }
    }

    /// Read access to the vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Read access to the mappings.
    pub fn mappings(&self) -> &KeywordMappings {
        &self.mappings
    }

    // ---------------------------------------------------------------
    // Assembly helpers (used by the data generators)
    // ---------------------------------------------------------------

    /// Registers an i-word.
    pub fn add_iword(&mut self, raw: &str) -> Result<WordId> {
        self.fingerprint_cache = OnceLock::new();
        self.vocab.add_iword(raw)
    }

    /// Registers a t-word and associates it with an i-word. When the "t-word"
    /// string is actually an i-word it is skipped (the sets stay disjoint) and
    /// `None` is returned.
    pub fn add_tword_for(&mut self, iword: WordId, raw: &str) -> Option<WordId> {
        self.fingerprint_cache = OnceLock::new();
        let (id, added) = self.vocab.add_tword(raw);
        if !added {
            return None;
        }
        self.mappings.associate(iword, id);
        Some(id)
    }

    /// Assigns an i-word to a partition.
    pub fn name_partition(&mut self, v: PartitionId, iword: WordId) -> Result<()> {
        self.fingerprint_cache = OnceLock::new();
        self.mappings.assign_partition(v, iword)
    }

    // ---------------------------------------------------------------
    // Query-side accessors
    // ---------------------------------------------------------------

    /// Classifies a raw query string against the venue vocabulary. This is
    /// how "users do not have to specify i-words and t-words separately —
    /// they are recognised automatically" (§V-A1).
    pub fn classify(&self, raw: &str) -> (Option<WordId>, WordKind) {
        self.vocab.classify_str(raw)
    }

    /// The i-word of a partition.
    pub fn partition_iword(&self, v: PartitionId) -> Option<WordId> {
        self.mappings.p2i(v)
    }

    /// The partitions identified by an i-word.
    pub fn partitions_of(&self, iword: WordId) -> &[PartitionId] {
        self.mappings.i2p(iword)
    }

    /// The t-words of an i-word.
    pub fn twords_of(&self, iword: WordId) -> BTreeSet<WordId> {
        self.mappings.i2t(iword).cloned().unwrap_or_default()
    }

    /// Resolves a word id to its string.
    pub fn resolve(&self, id: WordId) -> Option<&str> {
        self.vocab.resolve(id)
    }

    /// Looks up a word id by string.
    pub fn lookup(&self, raw: &str) -> Option<WordId> {
        self.vocab.lookup(raw)
    }

    /// Estimated heap size in bytes (the paper reports the synthetic keyword
    /// mappings occupy ≈4 MB and are kept in main memory).
    pub fn estimated_bytes(&self) -> usize {
        self.vocab.estimated_bytes() + self.mappings.estimated_bytes()
    }

    /// Deterministic fingerprint of the directory: the interned word table
    /// in id order plus every i-word's partitions and t-word set. A
    /// persisted pre-built index records this value; on load it must match
    /// the directory rebuilt from the venue document, because posting lists
    /// store raw [`WordId`]s/partition ids that are only meaningful against
    /// the exact same interning order.
    ///
    /// The value is memoized: a built directory never changes, and save
    /// (section encode) and load (section binding) both read it.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint_cache
            .get_or_init(|| self.compute_fingerprint())
    }

    fn compute_fingerprint(&self) -> u64 {
        use crate::intern::mix;
        let mut hash = self.vocab.interner().fingerprint();
        // Traverse `I2P`/`I2T` in map order rather than looking each i-word
        // up: at mega-venue scale the per-word `BTreeMap` searches cost more
        // than all the mixing below. Each entry leads with the word id and
        // list length packed into one value, so list elements can never be
        // misread across entry boundaries.
        for (w, partitions) in self.mappings.i2p_entries() {
            hash = mix(
                hash,
                0x1000_0000_0000_0000 | ((w.0 as u64) << 24) | partitions.len() as u64,
            );
            let mut pairs = partitions.chunks_exact(2);
            for pair in &mut pairs {
                hash = mix(hash, ((pair[0].0 as u64) << 32) | pair[1].0 as u64);
            }
            if let Some(last) = pairs.remainder().first() {
                hash = mix(hash, last.0 as u64);
            }
        }
        for (w, twords) in self.mappings.i2t_entries() {
            hash = mix(
                hash,
                0x2000_0000_0000_0000 | ((w.0 as u64) << 24) | twords.len() as u64,
            );
            for &tw in twords {
                hash = mix(hash, tw.0 as u64);
            }
        }
        for iw in self.vocab.iwords() {
            hash = mix(hash, 0x4000_0000_0000_0000 | iw.0 as u64);
        }
        for tw in self.vocab.twords() {
            hash = mix(hash, 0x8000_0000_0000_0000 | tw.0 as u64);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_and_lookup_round_trip() {
        let mut dir = KeywordDirectory::new();
        let apple = dir.add_iword("Apple").unwrap();
        assert!(dir.add_tword_for(apple, "laptop").is_some());
        assert!(dir.add_tword_for(apple, "phone").is_some());
        // An i-word used as a t-word is skipped.
        let zara = dir.add_iword("zara").unwrap();
        assert!(dir.add_tword_for(apple, "zara").is_none());
        dir.name_partition(PartitionId(10), apple).unwrap();
        dir.name_partition(PartitionId(11), zara).unwrap();

        assert_eq!(dir.partition_iword(PartitionId(10)), Some(apple));
        assert_eq!(dir.partitions_of(apple), &[PartitionId(10)]);
        assert_eq!(dir.twords_of(apple).len(), 2);
        assert!(dir.twords_of(zara).is_empty());
        assert_eq!(dir.classify("LAPTOP").1, WordKind::TWord);
        assert_eq!(dir.classify("apple").1, WordKind::IWord);
        assert_eq!(dir.classify("unknown").1, WordKind::Unknown);
        assert_eq!(dir.resolve(apple), Some("apple"));
        assert_eq!(dir.lookup("Apple"), Some(apple));
        assert!(dir.estimated_bytes() > 0);
        assert_eq!(dir.vocab().num_iwords(), 2);
        assert_eq!(dir.mappings().num_associations(), 2);
    }

    #[test]
    fn fingerprint_is_memoized_but_never_stale() {
        let mut dir = KeywordDirectory::new();
        let iw = dir.add_iword("costa").unwrap();
        dir.name_partition(PartitionId(1), iw).unwrap();
        let before = dir.fingerprint();
        assert_eq!(dir.fingerprint(), before, "memoized value is stable");
        // Every assembly mutation must drop the cache.
        dir.add_tword_for(iw, "coffee").unwrap();
        let with_tword = dir.fingerprint();
        assert_ne!(before, with_tword);
        dir.name_partition(PartitionId(2), iw).unwrap();
        let with_partition = dir.fingerprint();
        assert_ne!(with_tword, with_partition);
        dir.add_iword("zara").unwrap();
        assert_ne!(with_partition, dir.fingerprint());
        // A clone carries the same value.
        assert_eq!(dir.clone().fingerprint(), dir.fingerprint());
    }

    #[test]
    fn from_parts_preserves_content() {
        let mut v = Vocabulary::new();
        let mut m = KeywordMappings::new();
        let iw = v.add_iword("costa").unwrap();
        let (tw, _) = v.add_tword("coffee");
        m.associate(iw, tw);
        m.assign_partition(PartitionId(3), iw).unwrap();
        let dir = KeywordDirectory::from_parts(v, m);
        assert_eq!(dir.partition_iword(PartitionId(3)), Some(iw));
        assert!(dir.twords_of(iw).contains(&tw));
    }
}
