//! Route words `RW(R)` (Definition 5), keyword relevance `ρ_QW(R)`
//! (Definition 6), and the incremental [`CoverageTracker`] used by the search
//! engine.

use crate::directory::KeywordDirectory;
use crate::intern::WordId;
use crate::query::PreparedQuery;
use indoor_space::{IndoorSpace, Route, RouteItem};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Computes the route words `RW(R)` of Definition 5: the union of the i-words
/// of all partitions relevant to the route's items, where a door's relevant
/// partitions are `D2P@(door)` and a point's relevant partition is its host
/// partition.
pub fn route_words(
    route: &Route,
    space: &IndoorSpace,
    directory: &KeywordDirectory,
) -> BTreeSet<WordId> {
    let mut words = BTreeSet::new();
    let add_point = |p: &indoor_space::IndoorPoint, words: &mut BTreeSet<WordId>| {
        if let Ok(v) = space.host_partition(p) {
            if let Some(iw) = directory.partition_iword(v) {
                words.insert(iw);
            }
        }
    };
    match route.start() {
        RouteItem::Point(p) => add_point(p, &mut words),
        RouteItem::Door(d) => {
            for &v in space.d2p_leave(*d) {
                if let Some(iw) = directory.partition_iword(v) {
                    words.insert(iw);
                }
            }
        }
    }
    for &d in route.doors() {
        for &v in space.d2p_leave(d) {
            if let Some(iw) = directory.partition_iword(v) {
                words.insert(iw);
            }
        }
    }
    if let Some(t) = route.terminal() {
        match t {
            RouteItem::Point(p) => add_point(p, &mut words),
            RouteItem::Door(d) => {
                for &v in space.d2p_leave(*d) {
                    if let Some(iw) = directory.partition_iword(v) {
                        words.insert(iw);
                    }
                }
            }
        }
    }
    words
}

/// The keyword relevance model of Definition 6.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelevanceModel;

impl RelevanceModel {
    /// Computes `ρ_QW(R)` from the per-query-word best similarity scores
    /// (`best[i]` is `max_{w ∈ M(wQ_i, R)} s(w)` or 0 when the i-th keyword is
    /// not covered).
    ///
    /// `ρ = 0` when nothing is covered; otherwise
    /// `ρ = N + (Σ best over covered) / N`, with `N` the number of covered
    /// keywords. Range: `{0} ∪ (1, |QW| + 1]`.
    pub fn relevance_from_best(best: &[f64]) -> f64 {
        let covered: Vec<f64> = best.iter().copied().filter(|&s| s > 0.0).collect();
        let n = covered.len();
        if n == 0 {
            return 0.0;
        }
        n as f64 + covered.iter().sum::<f64>() / n as f64
    }

    /// Computes `ρ_QW(R)` directly from a set of route words.
    pub fn relevance_of_words(words: &BTreeSet<WordId>, query: &PreparedQuery) -> f64 {
        let best: Vec<f64> = query
            .words()
            .iter()
            .map(|w| {
                w.candidates
                    .entries()
                    .filter(|e| words.contains(&e.iword))
                    .map(|e| e.similarity)
                    .fold(0.0, f64::max)
            })
            .collect();
        Self::relevance_from_best(&best)
    }

    /// Computes `ρ_QW(R)` for a full route (convenience wrapper combining
    /// [`route_words`] and [`RelevanceModel::relevance_of_words`]).
    pub fn relevance_of_route(
        route: &Route,
        space: &IndoorSpace,
        directory: &KeywordDirectory,
        query: &PreparedQuery,
    ) -> f64 {
        let words = route_words(route, space, directory);
        Self::relevance_of_words(&words, query)
    }
}

/// Incremental coverage state carried by every search stamp.
///
/// The tracker records, for each query keyword, the best similarity of any
/// matching i-word seen so far on the route. Adding the i-words encountered
/// when the route is extended keeps the keyword relevance up to date in
/// `O(|QW|)` per i-word instead of recomputing Definition 6 from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageTracker {
    best: Vec<f64>,
}

impl CoverageTracker {
    /// A tracker for a query with `num_words` keywords, with nothing covered.
    pub fn new(num_words: usize) -> Self {
        CoverageTracker {
            best: vec![0.0; num_words],
        }
    }

    /// Registers an i-word seen on the route; updates every query keyword
    /// whose candidate set contains it.
    pub fn add_iword(&mut self, query: &PreparedQuery, iword: WordId) {
        for (slot, word) in self.best.iter_mut().zip(query.words()) {
            if let Some(s) = word.candidates.similarity(iword) {
                if s > *slot {
                    *slot = s;
                }
            }
        }
    }

    /// Registers every i-word of a set (e.g. the route words of a freshly
    /// connected suffix).
    pub fn add_iwords<'a>(
        &mut self,
        query: &PreparedQuery,
        iwords: impl IntoIterator<Item = &'a WordId>,
    ) {
        for iw in iwords {
            self.add_iword(query, *iw);
        }
    }

    /// Number of query keywords covered so far (`N_QW(R)`).
    pub fn covered_count(&self) -> usize {
        self.best.iter().filter(|&&s| s > 0.0).count()
    }

    /// Whether every query keyword is covered with the maximum similarity 1,
    /// i.e. `ρ(R) = |QW| + 1` — the condition of Algorithm 5 line 11.
    pub fn is_fully_covered(&self) -> bool {
        self.best.iter().all(|&s| (s - 1.0).abs() < 1e-12)
    }

    /// Whether the `idx`-th query keyword is covered.
    pub fn is_word_covered(&self, idx: usize) -> bool {
        self.best.get(idx).map(|&s| s > 0.0).unwrap_or(false)
    }

    /// Current keyword relevance `ρ` of the tracked route.
    pub fn relevance(&self) -> f64 {
        RelevanceModel::relevance_from_best(&self.best)
    }

    /// The per-keyword best similarities.
    pub fn best_similarities(&self) -> &[f64] {
        &self.best
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.best.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryKeywords;
    use indoor_space::PartitionId;

    fn example_directory() -> KeywordDirectory {
        let mut dir = KeywordDirectory::new();
        let costa = dir.add_iword("costa").unwrap();
        let apple = dir.add_iword("apple").unwrap();
        let starbucks = dir.add_iword("starbucks").unwrap();
        let samsung = dir.add_iword("samsung").unwrap();
        let zara = dir.add_iword("zara").unwrap();
        let oppo = dir.add_iword("oppo").unwrap();
        for t in ["coffee", "drinks", "macha"] {
            dir.add_tword_for(costa, t);
        }
        for t in ["phone", "mac", "laptop", "watch"] {
            dir.add_tword_for(apple, t);
        }
        for t in ["coffee", "macha", "latte", "drinks"] {
            dir.add_tword_for(starbucks, t);
        }
        for t in ["phone", "laptop", "earphone"] {
            dir.add_tword_for(samsung, t);
        }
        for t in ["pants", "sweater"] {
            dir.add_tword_for(zara, t);
        }
        for t in ["phone", "earphone"] {
            dir.add_tword_for(oppo, t);
        }
        for (v, w) in [
            (1u32, "zara"),
            (2, "oppo"),
            (3, "costa"),
            (7, "starbucks"),
            (10, "apple"),
            (12, "samsung"),
        ] {
            let id = dir.lookup(w).unwrap();
            dir.name_partition(PartitionId(v), id).unwrap();
        }
        dir
    }

    fn prepared(dir: &KeywordDirectory, words: &[&str]) -> PreparedQuery {
        let q = QueryKeywords::new(words.iter().copied()).unwrap();
        PreparedQuery::prepare(&q, dir, 0.5).unwrap()
    }

    #[test]
    fn relevance_from_best_matches_definition_6() {
        // Nothing covered.
        assert_eq!(RelevanceModel::relevance_from_best(&[0.0, 0.0]), 0.0);
        // One of two covered with similarity 0.75: 1 + 0.75/1 = 1.75 (Example 6, R1).
        assert!((RelevanceModel::relevance_from_best(&[0.75, 0.0]) - 1.75).abs() < 1e-9);
        // Both covered with similarity 1: 2 + 2/2 = 3 (Example 6, R2).
        assert!((RelevanceModel::relevance_from_best(&[1.0, 1.0]) - 3.0).abs() < 1e-9);
        // Range check: always in {0} ∪ (1, |QW|+1].
        let r = RelevanceModel::relevance_from_best(&[0.2, 0.0, 0.0]);
        assert!(r > 1.0 && r <= 4.0);
    }

    #[test]
    fn relevance_of_words_uses_max_similarity_per_keyword() {
        let dir = example_directory();
        let q = prepared(&dir, &["latte", "apple"]);
        // Route words {zara, oppo, costa}: latte covered by costa (0.75),
        // apple not covered => 1.75 (Example 6, route R1).
        let words: BTreeSet<WordId> = ["zara", "oppo", "costa"]
            .iter()
            .map(|w| dir.lookup(w).unwrap())
            .collect();
        assert!((RelevanceModel::relevance_of_words(&words, &q) - 1.75).abs() < 1e-9);
        // Route words {apple, starbucks, costa}: latte covered by starbucks
        // (1.0 beats costa's 0.75), apple covered => 3.0 (Example 6, route R2).
        let words: BTreeSet<WordId> = ["apple", "starbucks", "costa"]
            .iter()
            .map(|w| dir.lookup(w).unwrap())
            .collect();
        assert!((RelevanceModel::relevance_of_words(&words, &q) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tracker_is_incremental_and_monotone() {
        let dir = example_directory();
        let q = prepared(&dir, &["latte", "apple"]);
        let mut t = CoverageTracker::new(q.len());
        assert_eq!(t.relevance(), 0.0);
        assert_eq!(t.covered_count(), 0);
        assert!(!t.is_fully_covered());
        t.add_iword(&q, dir.lookup("costa").unwrap());
        assert!((t.relevance() - 1.75).abs() < 1e-9);
        assert!(t.is_word_covered(0));
        assert!(!t.is_word_covered(1));
        // Adding a better match for the same keyword improves it.
        t.add_iword(&q, dir.lookup("starbucks").unwrap());
        assert!((t.relevance() - 2.0).abs() < 1e-9);
        // Adding an unrelated i-word changes nothing.
        t.add_iword(&q, dir.lookup("zara").unwrap());
        assert!((t.relevance() - 2.0).abs() < 1e-9);
        t.add_iword(&q, dir.lookup("apple").unwrap());
        assert!((t.relevance() - 3.0).abs() < 1e-9);
        assert!(t.is_fully_covered());
        assert_eq!(t.covered_count(), 2);
        assert_eq!(t.best_similarities().len(), 2);
        assert!(t.estimated_bytes() > 0);
    }

    #[test]
    fn add_iwords_bulk_matches_single_adds() {
        let dir = example_directory();
        let q = prepared(&dir, &["latte", "apple"]);
        let words: BTreeSet<WordId> = ["apple", "starbucks"]
            .iter()
            .map(|w| dir.lookup(w).unwrap())
            .collect();
        let mut bulk = CoverageTracker::new(q.len());
        bulk.add_iwords(&q, words.iter());
        let mut single = CoverageTracker::new(q.len());
        for w in &words {
            single.add_iword(&q, *w);
        }
        assert_eq!(bulk, single);
        assert!((bulk.relevance() - RelevanceModel::relevance_of_words(&words, &q)).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_word_index_is_not_covered() {
        let t = CoverageTracker::new(2);
        assert!(!t.is_word_covered(7));
    }
}
