//! String interning for keywords.
//!
//! Keyword relevance computation compares and unions word sets heavily; the
//! interner maps every distinct keyword string to a dense [`WordId`] so that
//! all downstream set operations work on `u32`s.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned word.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct WordId(pub u32);

impl WordId {
    /// Index usable for dense `Vec` storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A simple string interner. Words are normalised to lowercase with trimmed
/// whitespace so that `"Latte "` and `"latte"` are the same keyword.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    by_name: HashMap<String, WordId>,
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Normalises a raw keyword string.
    pub fn normalise(raw: &str) -> String {
        raw.trim().to_lowercase()
    }

    /// Interns a word, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, raw: &str) -> WordId {
        let key = Self::normalise(raw);
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = WordId(self.names.len() as u32);
        self.by_name.insert(key.clone(), id);
        self.names.push(key);
        id
    }

    /// Looks up a word without interning it.
    pub fn get(&self, raw: &str) -> Option<WordId> {
        self.by_name.get(&Self::normalise(raw)).copied()
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: WordId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned words.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (WordId(i as u32), s.as_str()))
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .names
                .iter()
                .map(|s| s.capacity() + std::mem::size_of::<String>())
                .sum::<usize>()
            + self
                .by_name
                .keys()
                .map(|s| s.capacity() + std::mem::size_of::<(String, WordId)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_normalising() {
        let mut i = Interner::new();
        let a = i.intern("Latte");
        let b = i.intern("  latte ");
        let c = i.intern("mocha");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
        assert_eq!(i.resolve(a), Some("latte"));
        assert_eq!(i.get("LATTE"), Some(a));
        assert_eq!(i.get("espresso"), None);
        assert_eq!(i.resolve(WordId(99)), None);
    }

    #[test]
    fn iteration_in_id_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let words: Vec<_> = i.iter().map(|(_, w)| w.to_string()).collect();
        assert_eq!(words, vec!["a", "b", "c"]);
        assert!(i.estimated_bytes() > 0);
    }

    #[test]
    fn word_id_display_and_index() {
        assert_eq!(WordId(4).to_string(), "w4");
        assert_eq!(WordId(4).index(), 4);
    }
}
