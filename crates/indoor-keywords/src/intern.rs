//! String interning for keywords.
//!
//! Keyword relevance computation compares and unions word sets heavily; the
//! interner maps every distinct keyword string to a dense [`WordId`] so that
//! all downstream set operations work on `u32`s.
//!
//! Storage is arena-based: every interned word lives in one shared `String`
//! buffer addressed by `(start, end)` spans, and lookup goes through an
//! FNV-1a hash table keyed by `u64` word hashes (with an explicit overflow
//! list for the rare collisions). The previous layout kept two owned
//! `String`s per word (one in the id table, one as the map key) — at mega
//! venue scale (~9×10⁴ brand words) that was ~1.8×10⁵ heap allocations per
//! load; the arena does a handful.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned word.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct WordId(pub u32);

impl WordId {
    /// Index usable for dense `Vec` storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// FNV-1a over the word bytes — deterministic across runs (no `RandomState`),
/// so interning order artefacts never leak into persisted artefacts.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Folds one value into a running fingerprint (wrapping multiply + shift
/// mix, the same family as the persisted-section checksum).
#[inline]
pub(crate) fn mix(hash: u64, value: u64) -> u64 {
    let h = (hash ^ value).wrapping_mul(0x2545_f491_4f6c_dd1d);
    h ^ (h >> 29)
}

/// Folds a byte slice into a running fingerprint, 8 bytes at a time, with
/// the length mixed in so concatenation boundaries stay significant.
pub(crate) fn mix_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        hash = mix(hash, word);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        hash = mix(hash, u64::from_le_bytes(last));
    }
    mix(hash, bytes.len() as u64)
}

/// A simple string interner. Words are normalised to lowercase with trimmed
/// whitespace so that `"Latte "` and `"latte"` are the same keyword.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    /// Every interned word, concatenated in id order.
    arena: String,
    /// Byte span of each word in the arena, indexed by `WordId`.
    spans: Vec<(u32, u32)>,
    /// Word hash → the first id carrying that hash.
    primary: HashMap<u64, WordId>,
    /// Ids whose hash collided with an earlier word; scanned on a primary
    /// string mismatch (in practice empty).
    overflow: Vec<(u64, WordId)>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Normalises a raw keyword string.
    pub fn normalise(raw: &str) -> String {
        raw.trim().to_lowercase()
    }

    /// Rebuilds an interner from its persisted arena and span table (the
    /// columnar venue load path), replaying only the hash-table inserts —
    /// no per-word allocation, no re-normalisation. Every span must address
    /// a valid, already-normalised, distinct word; violations are reported
    /// as a human-readable reason so loaders can degrade to a rebuild.
    pub fn from_parts(arena: String, spans: Vec<(u32, u32)>) -> std::result::Result<Self, String> {
        let mut interner = Interner {
            arena,
            spans: Vec::new(),
            primary: HashMap::with_capacity(spans.len()),
            overflow: Vec::new(),
        };
        for (i, &(start, end)) in spans.iter().enumerate() {
            let (a, b) = (start as usize, end as usize);
            if a > b
                || b > interner.arena.len()
                || !interner.arena.is_char_boundary(a)
                || !interner.arena.is_char_boundary(b)
            {
                return Err(format!(
                    "interner span {i} ({start}..{end}) is out of bounds"
                ));
            }
            let word = &interner.arena[a..b];
            if word.is_empty() {
                return Err(format!("interner span {i} is empty"));
            }
            // ASCII words (the overwhelming majority) get a zero-allocation
            // normalisation check; anything else pays the full comparison.
            let normalised = if word.is_ascii() {
                word.trim().len() == word.len() && !word.bytes().any(|c| c.is_ascii_uppercase())
            } else {
                Interner::normalise(word) == word
            };
            if !normalised {
                return Err(format!("interner word {word:?} is not normalised"));
            }
            let hash = fnv1a(word.as_bytes());
            if interner.find(hash, word).is_some() {
                return Err(format!("interner word {word:?} appears twice"));
            }
            let id = WordId(i as u32);
            match interner.primary.entry(hash) {
                Entry::Vacant(slot) => {
                    slot.insert(id);
                }
                Entry::Occupied(_) => interner.overflow.push((hash, id)),
            }
            interner.spans.push((start, end));
        }
        Ok(interner)
    }

    /// The shared arena holding every interned word back to back, exposed so
    /// persistence layers can write it as one blob.
    pub fn arena(&self) -> &str {
        &self.arena
    }

    /// The byte span of each word in the arena, indexed by [`WordId`].
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Trims and lowercases without allocating when the input is already
    /// normalised (the common case for generated venues and binary loads).
    fn normalise_cow(raw: &str) -> Cow<'_, str> {
        let trimmed = raw.trim();
        if trimmed
            .bytes()
            .all(|b| b.is_ascii() && !b.is_ascii_uppercase())
        {
            Cow::Borrowed(trimmed)
        } else {
            Cow::Owned(trimmed.to_lowercase())
        }
    }

    fn find(&self, hash: u64, key: &str) -> Option<WordId> {
        let &id = self.primary.get(&hash)?;
        if self.resolve(id) == Some(key) {
            return Some(id);
        }
        self.overflow
            .iter()
            .find(|&&(h, oid)| h == hash && self.resolve(oid) == Some(key))
            .map(|&(_, oid)| oid)
    }

    /// Interns a word, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, raw: &str) -> WordId {
        let key = Self::normalise_cow(raw);
        let hash = fnv1a(key.as_bytes());
        if let Some(id) = self.find(hash, &key) {
            return id;
        }
        let start = self.arena.len() as u32;
        self.arena.push_str(&key);
        let id = WordId(self.spans.len() as u32);
        self.spans.push((start, self.arena.len() as u32));
        match self.primary.entry(hash) {
            Entry::Vacant(slot) => {
                slot.insert(id);
            }
            Entry::Occupied(_) => self.overflow.push((hash, id)),
        }
        id
    }

    /// Looks up a word without interning it.
    pub fn get(&self, raw: &str) -> Option<WordId> {
        let key = Self::normalise_cow(raw);
        self.find(fnv1a(key.as_bytes()), &key)
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: WordId) -> Option<&str> {
        self.spans
            .get(id.index())
            .map(|&(a, b)| &self.arena[a as usize..b as usize])
    }

    /// Number of distinct interned words.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (WordId(i as u32), &self.arena[a as usize..b as usize]))
    }

    /// Deterministic fingerprint of the whole table — the arena contents
    /// plus the span list, so it pins both the set of words and their
    /// id assignment order. Hashes the arena in 8-byte chunks rather than
    /// per word: at mega-venue scale this runs in the microseconds that a
    /// persisted-index load budget allows.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = mix_bytes(0xcbf2_9ce4_8422_2325, self.arena.as_bytes());
        for &(start, end) in &self.spans {
            hash = mix(hash, ((start as u64) << 32) | end as u64);
        }
        mix(hash, self.spans.len() as u64)
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.arena.capacity()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.primary.len() * std::mem::size_of::<(u64, WordId)>() * 2
            + self.overflow.capacity() * std::mem::size_of::<(u64, WordId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_normalising() {
        let mut i = Interner::new();
        let a = i.intern("Latte");
        let b = i.intern("  latte ");
        let c = i.intern("mocha");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
        assert_eq!(i.resolve(a), Some("latte"));
        assert_eq!(i.get("LATTE"), Some(a));
        assert_eq!(i.get("espresso"), None);
        assert_eq!(i.resolve(WordId(99)), None);
    }

    #[test]
    fn iteration_in_id_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let words: Vec<_> = i.iter().map(|(_, w)| w.to_string()).collect();
        assert_eq!(words, vec!["a", "b", "c"]);
        assert!(i.estimated_bytes() > 0);
    }

    #[test]
    fn word_id_display_and_index() {
        assert_eq!(WordId(4).to_string(), "w4");
        assert_eq!(WordId(4).index(), 4);
    }

    #[test]
    fn non_ascii_words_are_normalised() {
        let mut i = Interner::new();
        let a = i.intern("CAFÉ");
        let b = i.intern("café");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), Some("café"));
    }

    #[test]
    fn from_parts_rebuilds_lookup_and_fingerprint() {
        let mut i = Interner::new();
        for w in ["latte", "mocha", "café", "brand-1", "brand-10"] {
            i.intern(w);
        }
        let back = Interner::from_parts(i.arena().to_string(), i.spans().to_vec()).unwrap();
        assert_eq!(back.len(), i.len());
        assert_eq!(back.fingerprint(), i.fingerprint());
        for (id, word) in i.iter() {
            assert_eq!(back.get(word), Some(id));
            assert_eq!(back.resolve(id), Some(word));
        }
    }

    #[test]
    fn from_parts_rejects_defective_tables() {
        // Out-of-bounds span.
        assert!(Interner::from_parts("ab".into(), vec![(0, 3)]).is_err());
        // Inverted span.
        assert!(Interner::from_parts("ab".into(), vec![(2, 1)]).is_err());
        // Split inside a multi-byte character.
        assert!(Interner::from_parts("é".into(), vec![(0, 1)]).is_err());
        // Empty word.
        assert!(Interner::from_parts("ab".into(), vec![(1, 1)]).is_err());
        // Un-normalised word.
        assert!(Interner::from_parts("Ab".into(), vec![(0, 2)]).is_err());
        // Duplicate word.
        assert!(Interner::from_parts("abab".into(), vec![(0, 2), (2, 4)]).is_err());
    }

    #[test]
    fn prefix_words_do_not_collide_in_the_arena() {
        // "brand-1" is a prefix of "brand-10"; spans must keep them distinct.
        let mut i = Interner::new();
        let ids: Vec<WordId> = (0..12).map(|n| i.intern(&format!("brand-{n}"))).collect();
        assert_eq!(i.len(), 12);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(i.resolve(*id), Some(format!("brand-{n}").as_str()));
            assert_eq!(i.get(&format!("brand-{n}")), Some(*id));
        }
    }
}
