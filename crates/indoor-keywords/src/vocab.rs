//! Disjoint i-word / t-word vocabularies (§III-A).

use crate::error::KeywordError;
use crate::intern::{Interner, WordId};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Classification of a word with respect to the venue's vocabularies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WordKind {
    /// An identity word: the semantic name of a partition.
    IWord,
    /// A thematic word: a tag describing an i-word.
    TWord,
    /// Not part of either vocabulary.
    Unknown,
}

/// The two disjoint keyword vocabularies of a venue, plus the interner that
/// owns the strings.
///
/// "If a word is in the i-word set `Wi`, it is excluded from the t-word set
/// `Wt` to keep the two keyword sets distinct." (§III-A)
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    interner: Interner,
    iwords: BTreeSet<WordId>,
    twords: BTreeSet<WordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Access to the interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Rebuilds a vocabulary from an adopted interner and the persisted,
    /// strictly ascending i-word / t-word id lists (the columnar venue load
    /// path): each set is bulk-built from its sorted list instead of being
    /// re-classified word by word. Violations — unsorted lists, unknown ids,
    /// overlap between the two sets — are reported as a human-readable
    /// reason so loaders can degrade to a rebuild.
    pub fn from_sorted_parts(
        interner: Interner,
        iwords: Vec<WordId>,
        twords: Vec<WordId>,
    ) -> std::result::Result<Self, String> {
        let n = interner.len();
        for (name, list) in [("i-word", &iwords), ("t-word", &twords)] {
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("{name} list is not strictly ascending"));
            }
            if let Some(&id) = list.iter().find(|id| id.index() >= n) {
                return Err(format!("{name} list references unknown word {id}"));
            }
        }
        let iwords: BTreeSet<WordId> = iwords.into_iter().collect();
        let twords: BTreeSet<WordId> = twords.into_iter().collect();
        if let Some(id) = iwords.intersection(&twords).next() {
            return Err(format!("word {id} is both an i-word and a t-word"));
        }
        Ok(Vocabulary {
            interner,
            iwords,
            twords,
        })
    }

    /// Registers an i-word. Fails when the word is already a t-word.
    pub fn add_iword(&mut self, raw: &str) -> Result<WordId> {
        let id = self.interner.intern(raw);
        if self.twords.contains(&id) {
            return Err(KeywordError::VocabularyOverlap(Interner::normalise(raw)));
        }
        self.iwords.insert(id);
        Ok(id)
    }

    /// Registers a t-word. When the word is already an i-word it is *not*
    /// added (the i-word set takes precedence, as in the paper's construction
    /// where brand names are removed from extracted keywords); the existing
    /// i-word id is returned together with `false`.
    pub fn add_tword(&mut self, raw: &str) -> (WordId, bool) {
        let id = self.interner.intern(raw);
        if self.iwords.contains(&id) {
            return (id, false);
        }
        self.twords.insert(id);
        (id, true)
    }

    /// Looks a word up and classifies it. Unknown words intern to `Unknown`
    /// only if absent; this method never mutates.
    pub fn classify_str(&self, raw: &str) -> (Option<WordId>, WordKind) {
        match self.interner.get(raw) {
            Some(id) => (Some(id), self.classify(id)),
            None => (None, WordKind::Unknown),
        }
    }

    /// Classifies an interned word.
    pub fn classify(&self, id: WordId) -> WordKind {
        if self.iwords.contains(&id) {
            WordKind::IWord
        } else if self.twords.contains(&id) {
            WordKind::TWord
        } else {
            WordKind::Unknown
        }
    }

    /// Whether the word is an i-word.
    pub fn is_iword(&self, id: WordId) -> bool {
        self.iwords.contains(&id)
    }

    /// Whether the word is a t-word.
    pub fn is_tword(&self, id: WordId) -> bool {
        self.twords.contains(&id)
    }

    /// All i-words in id order.
    pub fn iwords(&self) -> impl Iterator<Item = WordId> + '_ {
        self.iwords.iter().copied()
    }

    /// All t-words in id order.
    pub fn twords(&self) -> impl Iterator<Item = WordId> + '_ {
        self.twords.iter().copied()
    }

    /// Number of i-words.
    pub fn num_iwords(&self) -> usize {
        self.iwords.len()
    }

    /// Number of t-words.
    pub fn num_twords(&self) -> usize {
        self.twords.len()
    }

    /// Resolves a word id back to its string.
    pub fn resolve(&self, id: WordId) -> Option<&str> {
        self.interner.resolve(id)
    }

    /// Looks up a word id by string without interning.
    pub fn lookup(&self, raw: &str) -> Option<WordId> {
        self.interner.get(raw)
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.interner.estimated_bytes()
            + (self.iwords.len() + self.twords.len()) * std::mem::size_of::<WordId>() * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_stay_disjoint() {
        let mut v = Vocabulary::new();
        let apple = v.add_iword("Apple").unwrap();
        let (coffee, added) = v.add_tword("coffee");
        assert!(added);
        assert_eq!(v.classify(apple), WordKind::IWord);
        assert_eq!(v.classify(coffee), WordKind::TWord);
        // Adding apple as a t-word is ignored: i-words take precedence.
        let (same, added) = v.add_tword("apple");
        assert_eq!(same, apple);
        assert!(!added);
        assert!(v.is_iword(apple));
        assert!(!v.is_tword(apple));
        // Adding coffee as an i-word is an error.
        assert!(matches!(
            v.add_iword("coffee"),
            Err(KeywordError::VocabularyOverlap(_))
        ));
    }

    #[test]
    fn classification_of_unknown_words() {
        let v = Vocabulary::new();
        let (id, kind) = v.classify_str("nonexistent");
        assert!(id.is_none());
        assert_eq!(kind, WordKind::Unknown);
    }

    #[test]
    fn counts_and_lookup() {
        let mut v = Vocabulary::new();
        v.add_iword("zara").unwrap();
        v.add_iword("apple").unwrap();
        v.add_tword("laptop");
        v.add_tword("phone");
        v.add_tword("pants");
        assert_eq!(v.num_iwords(), 2);
        assert_eq!(v.num_twords(), 3);
        assert_eq!(v.iwords().count(), 2);
        assert_eq!(v.twords().count(), 3);
        let id = v.lookup("ZARA").unwrap();
        assert_eq!(v.resolve(id), Some("zara"));
        assert_eq!(v.classify_str("Laptop").1, WordKind::TWord);
        assert!(v.estimated_bytes() > 0);
    }

    #[test]
    fn from_sorted_parts_rebuilds_and_validates() {
        let mut v = Vocabulary::new();
        v.add_iword("zara").unwrap();
        v.add_tword("pants");
        v.add_iword("apple").unwrap();
        v.add_tword("phone");
        let interner = v.interner().clone();
        let iwords: Vec<WordId> = v.iwords().collect();
        let twords: Vec<WordId> = v.twords().collect();
        let back = Vocabulary::from_sorted_parts(interner.clone(), iwords.clone(), twords.clone())
            .unwrap();
        assert_eq!(back.num_iwords(), 2);
        assert_eq!(back.num_twords(), 2);
        assert_eq!(back.classify_str("zara").1, WordKind::IWord);
        assert_eq!(back.classify_str("phone").1, WordKind::TWord);

        // Unsorted, unknown and overlapping lists are rejected.
        let mut unsorted = iwords.clone();
        unsorted.reverse();
        assert!(Vocabulary::from_sorted_parts(interner.clone(), unsorted, twords.clone()).is_err());
        assert!(
            Vocabulary::from_sorted_parts(interner.clone(), vec![WordId(99)], twords.clone())
                .is_err()
        );
        let mut overlap = twords.clone();
        overlap.extend(iwords.iter().copied());
        overlap.sort();
        assert!(Vocabulary::from_sorted_parts(interner, iwords, overlap).is_err());
    }

    #[test]
    fn re_adding_an_iword_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.add_iword("zara").unwrap();
        let b = v.add_iword("zara").unwrap();
        assert_eq!(a, b);
        assert_eq!(v.num_iwords(), 1);
    }
}
