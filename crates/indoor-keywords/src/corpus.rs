//! Document corpus types feeding the keyword extraction pipeline.
//!
//! The paper crawls ≈2074 shop-description documents for 1225 brands and
//! extracts t-words from them (§V-A1). The corpus here is the in-memory
//! equivalent: one or more free-text documents per brand (i-word).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A free-text document describing a brand / store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// The brand (i-word) the document describes.
    pub brand: String,
    /// Raw description text.
    pub text: String,
}

impl Document {
    /// Creates a document.
    pub fn new(brand: impl Into<String>, text: impl Into<String>) -> Self {
        Document {
            brand: brand.into(),
            text: text.into(),
        }
    }
}

/// A corpus of brand documents.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    documents: Vec<Document>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Adds a document.
    pub fn push(&mut self, doc: Document) {
        self.documents.push(doc);
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Iterates over the documents.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.documents.iter()
    }

    /// Number of distinct brands covered by the corpus.
    pub fn num_brands(&self) -> usize {
        self.by_brand().len()
    }

    /// Groups the document texts by brand, concatenating multiple documents
    /// of the same brand.
    pub fn by_brand(&self) -> BTreeMap<String, String> {
        let mut out: BTreeMap<String, String> = BTreeMap::new();
        for doc in &self.documents {
            let slot = out.entry(doc.brand.to_lowercase()).or_default();
            if !slot.is_empty() {
                slot.push(' ');
            }
            slot.push_str(&doc.text);
        }
        out
    }
}

impl FromIterator<Document> for Corpus {
    fn from_iter<T: IntoIterator<Item = Document>>(iter: T) -> Self {
        Corpus {
            documents: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_groups_documents_by_brand() {
        let mut c = Corpus::new();
        assert!(c.is_empty());
        c.push(Document::new("Apple", "laptops and phones"));
        c.push(Document::new("apple", "watches and tablets"));
        c.push(Document::new("Costa", "coffee and pastries"));
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_brands(), 2);
        let grouped = c.by_brand();
        assert!(grouped["apple"].contains("laptops"));
        assert!(grouped["apple"].contains("watches"));
        assert!(grouped["costa"].contains("coffee"));
        assert_eq!(c.iter().count(), 3);
    }

    #[test]
    fn corpus_from_iterator() {
        let c: Corpus = vec![Document::new("a", "x"), Document::new("b", "y")]
            .into_iter()
            .collect();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
