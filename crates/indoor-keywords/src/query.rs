//! Query keyword lists and their prepared (candidate-expanded) form.

use crate::directory::KeywordDirectory;
use crate::error::KeywordError;
use crate::intern::WordId;
use crate::similarity::CandidateSet;
use crate::vocab::WordKind;
use crate::Result;
use indoor_space::PartitionId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The raw query keyword list `QW` as supplied by the user. Words are plain
/// strings; whether each is an i-word or a t-word is recognised automatically
/// against the venue vocabulary (§V-A1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct QueryKeywords {
    words: Vec<String>,
}

impl QueryKeywords {
    /// Creates a query keyword list. Fails on an empty list.
    pub fn new<I, S>(words: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let words: Vec<String> = words.into_iter().map(Into::into).collect();
        if words.is_empty() {
            return Err(KeywordError::EmptyQuery);
        }
        Ok(QueryKeywords { words })
    }

    /// The raw keyword strings.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// `|QW|`.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// One query keyword after preparation against a venue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreparedWord {
    /// Raw string as given by the user.
    pub raw: String,
    /// Interned id when the word exists in the venue vocabulary.
    pub id: Option<WordId>,
    /// Classification against the vocabulary.
    pub kind: WordKind,
    /// The candidate i-word set `κ(wQ)`; empty for unknown words.
    pub candidates: CandidateSet,
}

/// A query keyword list prepared against a venue: every keyword is classified
/// and expanded into its candidate i-word set (`K(QW)` in Example 4), and the
/// union of candidate i-words `Wci` (Algorithm 1 line 2) is precomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreparedQuery {
    words: Vec<PreparedWord>,
    all_candidates: BTreeSet<WordId>,
    tau: f64,
}

impl PreparedQuery {
    /// Prepares a query keyword list against a venue's keyword directory with
    /// similarity threshold `tau`.
    pub fn prepare(query: &QueryKeywords, directory: &KeywordDirectory, tau: f64) -> Result<Self> {
        let mut words = Vec::with_capacity(query.len());
        let mut all_candidates = BTreeSet::new();
        for raw in query.words() {
            let (id, kind) = directory.classify(raw);
            let candidates = match id {
                Some(word_id) => {
                    CandidateSet::build(word_id, directory.vocab(), directory.mappings(), tau)?
                }
                None => CandidateSet::default(),
            };
            all_candidates.extend(candidates.iwords());
            words.push(PreparedWord {
                raw: raw.clone(),
                id,
                kind,
                candidates,
            });
        }
        Ok(PreparedQuery {
            words,
            all_candidates,
            tau,
        })
    }

    /// Assembles a prepared query from already-expanded words.
    ///
    /// Used by index-accelerated preparation (`indoor-index`), which builds
    /// each word's [`CandidateSet`] from posting lists instead of a
    /// vocabulary scan. The candidate-union `Wci` is derived here exactly as
    /// [`PreparedQuery::prepare`] derives it, so a `PreparedQuery` built
    /// from equivalent words is indistinguishable from a scan-prepared one.
    pub fn from_words(words: Vec<PreparedWord>, tau: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&tau) {
            return Err(KeywordError::InvalidThreshold(tau));
        }
        let mut all_candidates = BTreeSet::new();
        for w in &words {
            all_candidates.extend(w.candidates.iwords());
        }
        Ok(PreparedQuery {
            words,
            all_candidates,
            tau,
        })
    }

    /// Number of query keywords `|QW|`.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the query has no keywords.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The similarity threshold the query was prepared with.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The prepared words in query order.
    pub fn words(&self) -> &[PreparedWord] {
        &self.words
    }

    /// The union of all candidate i-words, `Wci` of Algorithm 1 line 2.
    pub fn candidate_iwords(&self) -> &BTreeSet<WordId> {
        &self.all_candidates
    }

    /// Whether the i-word is a candidate match of any query keyword.
    pub fn is_candidate_iword(&self, iword: WordId) -> bool {
        self.all_candidates.contains(&iword)
    }

    /// The similarity of `iword` for the `idx`-th query keyword, if it is one
    /// of that keyword's candidates.
    pub fn similarity(&self, idx: usize, iword: WordId) -> Option<f64> {
        self.words.get(idx)?.candidates.similarity(iword)
    }

    /// The maximum possible keyword relevance, `|QW| + 1` (reached when every
    /// keyword matches an i-word with similarity 1; see Definition 6).
    pub fn max_relevance(&self) -> f64 {
        self.len() as f64 + 1.0
    }

    /// The key partitions of the query: every partition identified by any
    /// candidate i-word (`⋃_{wQ} I2P(κ(wQ).Wi)`, Algorithm 1 line 3 before the
    /// start/terminal adjustment).
    pub fn key_partitions(&self, directory: &KeywordDirectory) -> BTreeSet<PartitionId> {
        let mut out = BTreeSet::new();
        for &iw in &self.all_candidates {
            out.extend(directory.partitions_of(iw).iter().copied());
        }
        out
    }

    /// The key partitions that can cover the `idx`-th query keyword.
    pub fn key_partitions_for_word(
        &self,
        idx: usize,
        directory: &KeywordDirectory,
    ) -> BTreeSet<PartitionId> {
        let mut out = BTreeSet::new();
        if let Some(w) = self.words.get(idx) {
            for iw in w.candidates.iwords() {
                out.extend(directory.partitions_of(iw).iter().copied());
            }
        }
        out
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .words
                .iter()
                .map(|w| w.raw.capacity() + w.candidates.len() * 16 + 64)
                .sum::<usize>()
            + self.all_candidates.len() * std::mem::size_of::<WordId>() * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_directory() -> KeywordDirectory {
        let mut dir = KeywordDirectory::new();
        let costa = dir.add_iword("costa").unwrap();
        let apple = dir.add_iword("apple").unwrap();
        let starbucks = dir.add_iword("starbucks").unwrap();
        let samsung = dir.add_iword("samsung").unwrap();
        for t in ["coffee", "drinks", "macha"] {
            dir.add_tword_for(costa, t);
        }
        for t in ["phone", "mac", "laptop", "watch"] {
            dir.add_tword_for(apple, t);
        }
        for t in ["coffee", "macha", "latte", "drinks"] {
            dir.add_tword_for(starbucks, t);
        }
        for t in ["phone", "laptop", "earphone"] {
            dir.add_tword_for(samsung, t);
        }
        dir.name_partition(PartitionId(3), costa).unwrap();
        dir.name_partition(PartitionId(10), apple).unwrap();
        dir.name_partition(PartitionId(7), starbucks).unwrap();
        dir.name_partition(PartitionId(12), samsung).unwrap();
        dir
    }

    #[test]
    fn empty_query_is_rejected() {
        assert!(matches!(
            QueryKeywords::new(Vec::<String>::new()),
            Err(KeywordError::EmptyQuery)
        ));
        let q = QueryKeywords::new(["latte"]).unwrap();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.words(), &["latte".to_string()]);
    }

    #[test]
    fn example_4_preparation() {
        let dir = example_directory();
        let q = QueryKeywords::new(["latte", "apple"]).unwrap();
        let prepared = PreparedQuery::prepare(&q, &dir, 0.5).unwrap();
        assert_eq!(prepared.len(), 2);
        assert!((prepared.tau() - 0.5).abs() < 1e-12);
        assert!((prepared.max_relevance() - 3.0).abs() < 1e-12);

        // κ(latte) = {(starbucks, 1), (costa, 0.75)}
        let starbucks = dir.lookup("starbucks").unwrap();
        let costa = dir.lookup("costa").unwrap();
        let apple = dir.lookup("apple").unwrap();
        assert_eq!(prepared.words()[0].kind, WordKind::TWord);
        assert!((prepared.similarity(0, starbucks).unwrap() - 1.0).abs() < 1e-9);
        assert!((prepared.similarity(0, costa).unwrap() - 0.75).abs() < 1e-9);
        assert!(prepared.similarity(0, apple).is_none());
        // κ(apple) = {(apple, 1)}
        assert_eq!(prepared.words()[1].kind, WordKind::IWord);
        assert!((prepared.similarity(1, apple).unwrap() - 1.0).abs() < 1e-9);

        // Wci = {starbucks, costa, apple}
        assert_eq!(prepared.candidate_iwords().len(), 3);
        assert!(prepared.is_candidate_iword(costa));
        assert!(!prepared.is_candidate_iword(dir.lookup("samsung").unwrap()));

        // Key partitions: v3 (costa), v7 (starbucks), v10 (apple).
        let keys = prepared.key_partitions(&dir);
        assert_eq!(
            keys,
            [PartitionId(3), PartitionId(7), PartitionId(10)]
                .into_iter()
                .collect()
        );
        let latte_keys = prepared.key_partitions_for_word(0, &dir);
        assert_eq!(latte_keys.len(), 2);
        assert!(prepared.key_partitions_for_word(5, &dir).is_empty());
        assert!(prepared.estimated_bytes() > 0);
    }

    #[test]
    fn unknown_words_yield_empty_candidates() {
        let dir = example_directory();
        let q = QueryKeywords::new(["nonexistent", "latte"]).unwrap();
        let prepared = PreparedQuery::prepare(&q, &dir, 0.1).unwrap();
        assert_eq!(prepared.words()[0].kind, WordKind::Unknown);
        assert!(prepared.words()[0].candidates.is_empty());
        assert!(prepared.words()[0].id.is_none());
        // The other word still works.
        assert!(!prepared.words()[1].candidates.is_empty());
    }
}
