//! Keyword extraction: a RAKE-style scorer combined with TF-IDF ranking.
//!
//! The paper feeds crawled shop documents into RAKE (Rose et al., 2010) and
//! keeps, per brand, up to 60 extracted keywords with the highest TF-IDF
//! values as t-words (§V-A1). This module reproduces that pipeline on any
//! in-memory [`Corpus`]:
//!
//! 1. tokenize and drop stop words,
//! 2. build RAKE candidate phrases (maximal stop-word-free token runs) and
//!    score each content word by `degree / frequency`,
//! 3. compute TF-IDF of every content word per brand document,
//! 4. rank words by the product of RAKE score and TF-IDF and keep the top
//!    `max_keywords_per_brand`.

use crate::corpus::Corpus;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A small English stop-word list; enough for the synthetic corpora used in
/// the reproduction.
const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "in",
    "is", "it", "its", "of", "on", "or", "our", "that", "the", "their", "this", "to", "we", "with",
    "you", "your", "all", "also", "more", "most", "other", "over", "under", "they", "them", "than",
    "then", "there", "here", "was", "were", "will", "can", "may", "offer", "offers", "best", "new",
    "every", "each", "into", "out", "up", "down", "about", "after", "before", "between", "both",
    "during", "only", "own", "same", "so", "some", "such", "too", "very", "just", "now", "while",
    "where", "which", "who", "whom", "why", "how", "not", "no",
];

/// Configuration for the extraction pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtractionConfig {
    /// Maximum number of keywords kept per brand (the paper keeps 60).
    pub max_keywords_per_brand: usize,
    /// Minimum token length to be considered a keyword.
    pub min_word_len: usize,
    /// Minimum number of occurrences across the brand's documents.
    pub min_frequency: usize,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            max_keywords_per_brand: 60,
            min_word_len: 3,
            min_frequency: 1,
        }
    }
}

/// The extraction pipeline.
#[derive(Debug, Clone, Default)]
pub struct ExtractionPipeline {
    config: ExtractionConfig,
}

impl ExtractionPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: ExtractionConfig) -> Self {
        ExtractionPipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExtractionConfig {
        &self.config
    }

    /// Tokenizes text into lowercase alphanumeric tokens.
    pub fn tokenize(text: &str) -> Vec<String> {
        text.to_lowercase()
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// Whether a token is a stop word.
    pub fn is_stop_word(token: &str) -> bool {
        STOP_WORDS.contains(&token)
    }

    /// RAKE content-word scores (`degree / frequency`) for one document's
    /// token stream.
    fn rake_scores(tokens: &[String]) -> HashMap<String, f64> {
        // Split into candidate phrases at stop words.
        let mut phrases: Vec<Vec<&str>> = Vec::new();
        let mut current: Vec<&str> = Vec::new();
        for t in tokens {
            if Self::is_stop_word(t) {
                if !current.is_empty() {
                    phrases.push(std::mem::take(&mut current));
                }
            } else {
                current.push(t.as_str());
            }
        }
        if !current.is_empty() {
            phrases.push(current);
        }
        let mut freq: HashMap<&str, f64> = HashMap::new();
        let mut degree: HashMap<&str, f64> = HashMap::new();
        for phrase in &phrases {
            let deg = (phrase.len().saturating_sub(1)) as f64;
            for &w in phrase {
                *freq.entry(w).or_insert(0.0) += 1.0;
                *degree.entry(w).or_insert(0.0) += deg;
            }
        }
        freq.into_iter()
            .map(|(w, f)| {
                let d = degree.get(w).copied().unwrap_or(0.0);
                (w.to_string(), (d + f) / f)
            })
            .collect()
    }

    /// Runs the full pipeline: per brand, the ranked keyword list (highest
    /// combined RAKE × TF-IDF score first), truncated to the configured
    /// maximum. The brand name's own tokens are removed from its keywords so
    /// i-words and t-words stay disjoint.
    pub fn extract(&self, corpus: &Corpus) -> BTreeMap<String, Vec<String>> {
        let grouped = corpus.by_brand();
        let num_docs = grouped.len().max(1) as f64;

        // Document frequency of every content token.
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut tokenized: BTreeMap<&String, Vec<String>> = BTreeMap::new();
        for (brand, text) in &grouped {
            let tokens = Self::tokenize(text);
            let distinct: HashSet<&String> = tokens
                .iter()
                .filter(|t| !Self::is_stop_word(t) && t.len() >= self.config.min_word_len)
                .collect();
            for t in distinct {
                *doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
            tokenized.insert(brand, tokens);
        }

        let mut out = BTreeMap::new();
        for (brand, text) in &grouped {
            let tokens = &tokenized[brand];
            let brand_tokens: HashSet<String> = Self::tokenize(brand).into_iter().collect();
            let rake = Self::rake_scores(tokens);
            // Term frequency within the brand document.
            let mut tf: HashMap<&str, usize> = HashMap::new();
            for t in tokens {
                if !Self::is_stop_word(t) {
                    *tf.entry(t.as_str()).or_insert(0) += 1;
                }
            }
            let mut scored: Vec<(f64, String)> = tf
                .iter()
                .filter(|(w, &count)| {
                    w.len() >= self.config.min_word_len
                        && count >= self.config.min_frequency
                        && !brand_tokens.contains(**w)
                })
                .map(|(w, &count)| {
                    let df = doc_freq.get(*w).copied().unwrap_or(1) as f64;
                    let idf = (num_docs / df).ln() + 1.0;
                    let tfidf = count as f64 * idf;
                    let rake_score = rake.get(*w).copied().unwrap_or(1.0);
                    (tfidf * rake_score, w.to_string())
                })
                .collect();
            scored.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            });
            let keywords: Vec<String> = scored
                .into_iter()
                .take(self.config.max_keywords_per_brand)
                .map(|(_, w)| w)
                .collect();
            let _ = text;
            out.insert(brand.clone(), keywords);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Document;

    fn coffee_corpus() -> Corpus {
        vec![
            Document::new(
                "costa",
                "Costa serves rich espresso coffee, creamy mocha and flat white. \
                 Fresh pastries and sandwiches are available with your coffee.",
            ),
            Document::new(
                "starbucks",
                "Starbucks offers coffee, latte, mocha and cold brew. Seasonal \
                 drinks and pastries complete the coffee experience.",
            ),
            Document::new(
                "apple",
                "Apple sells the latest laptop, smartphone, tablet and watch. \
                 Accessories such as earphone and charger are in stock.",
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn tokenize_and_stop_words() {
        let tokens = ExtractionPipeline::tokenize("The BEST Coffee, in-town!");
        assert_eq!(tokens, vec!["the", "best", "coffee", "in", "town"]);
        assert!(ExtractionPipeline::is_stop_word("the"));
        assert!(!ExtractionPipeline::is_stop_word("coffee"));
    }

    #[test]
    fn extraction_produces_relevant_keywords_per_brand() {
        let pipeline = ExtractionPipeline::new(ExtractionConfig::default());
        let keywords = pipeline.extract(&coffee_corpus());
        assert_eq!(keywords.len(), 3);
        assert!(keywords["costa"].iter().any(|k| k == "coffee"));
        assert!(keywords["costa"].iter().any(|k| k == "mocha"));
        assert!(keywords["apple"].iter().any(|k| k == "laptop"));
        assert!(keywords["apple"].iter().any(|k| k == "smartphone"));
        // Brand names never appear among their own keywords.
        assert!(!keywords["costa"].iter().any(|k| k == "costa"));
        assert!(!keywords["apple"].iter().any(|k| k == "apple"));
        // Stop words never appear.
        assert!(!keywords["starbucks"].iter().any(|k| k == "and"));
    }

    #[test]
    fn max_keywords_is_respected() {
        let pipeline = ExtractionPipeline::new(ExtractionConfig {
            max_keywords_per_brand: 3,
            ..Default::default()
        });
        let keywords = pipeline.extract(&coffee_corpus());
        for (_, kws) in keywords {
            assert!(kws.len() <= 3);
        }
    }

    #[test]
    fn min_word_len_filters_short_tokens() {
        let pipeline = ExtractionPipeline::new(ExtractionConfig {
            min_word_len: 6,
            ..Default::default()
        });
        let keywords = pipeline.extract(&coffee_corpus());
        for (_, kws) in keywords {
            assert!(kws.iter().all(|k| k.len() >= 6));
        }
    }

    #[test]
    fn discriminative_words_rank_above_common_ones() {
        // "coffee" appears in both coffee brands, "espresso" only in costa;
        // espresso should rank above coffee for costa thanks to IDF.
        let pipeline = ExtractionPipeline::new(ExtractionConfig::default());
        let keywords = pipeline.extract(&coffee_corpus());
        let costa = &keywords["costa"];
        let pos_espresso = costa.iter().position(|k| k == "espresso");
        let pos_coffee = costa.iter().position(|k| k == "coffee");
        assert!(pos_espresso.is_some());
        assert!(pos_coffee.is_some());
        assert!(pos_espresso.unwrap() < pos_coffee.unwrap());
    }

    #[test]
    fn empty_corpus_yields_empty_output() {
        let pipeline = ExtractionPipeline::default();
        assert!(pipeline.extract(&Corpus::new()).is_empty());
        assert_eq!(pipeline.config().max_keywords_per_brand, 60);
    }
}
