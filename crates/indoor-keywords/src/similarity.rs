//! Jaccard similarity and the candidate i-word set `κ(wQ)` of Definition 4.

use crate::error::KeywordError;
use crate::intern::WordId;
use crate::mappings::KeywordMappings;
use crate::vocab::{Vocabulary, WordKind};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Jaccard similarity `|a ∩ b| / |a ∪ b|` between two word sets. Empty union
/// yields 0.
pub fn jaccard(a: &BTreeSet<WordId>, b: &BTreeSet<WordId>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// [`jaccard`] with the first set held as a sorted, duplicate-free slice
/// (the posting-table representation). Same counts, same division — the
/// result is bit-identical to the `BTreeSet` form.
pub fn jaccard_sorted(a: &[WordId], b: &BTreeSet<WordId>) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "slice must be a set");
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.iter().filter(|w| b.contains(w)).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// One entry of a candidate i-word set: a matching i-word and its similarity
/// score with the query keyword (`(wi, s)` in Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateEntry {
    /// The matching i-word.
    pub iword: WordId,
    /// Similarity score in `(0, 1]`.
    pub similarity: f64,
}

/// The candidate i-word set `κ(wQ)` of one query keyword.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CandidateSet {
    /// The query keyword this set was derived for.
    pub query_word: WordId,
    /// Matching i-words with their similarity scores, keyed by i-word for
    /// O(log n) membership tests (`κ(wQ).Wi` lookups).
    entries: BTreeMap<WordId, f64>,
}

impl CandidateSet {
    /// Builds `κ(wQ)` for a query keyword per Definition 4.
    ///
    /// * If `wQ` is an i-word the only candidate is `wQ` itself with score 1.
    /// * If `wQ` is a t-word, every direct matching i-word (`T2I(wQ)`) scores
    ///   1, and every indirect matching i-word scores its Jaccard similarity
    ///   between its own t-words and the union of t-words of the direct
    ///   matches; entries with similarity `≤ τ` are dropped ("to avoid long
    ///   tails").
    /// * Unknown words yield an empty candidate set (the query keyword simply
    ///   cannot be covered).
    pub fn build(
        query_word: WordId,
        vocab: &Vocabulary,
        mappings: &KeywordMappings,
        tau: f64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&tau) {
            return Err(KeywordError::InvalidThreshold(tau));
        }
        let mut entries = BTreeMap::new();
        match vocab.classify(query_word) {
            WordKind::IWord => {
                entries.insert(query_word, 1.0);
            }
            WordKind::TWord => {
                let direct: BTreeSet<WordId> =
                    mappings.t2i(query_word).cloned().unwrap_or_default();
                // Union of the t-words of each direct matching i-word.
                let mut union: BTreeSet<WordId> = BTreeSet::new();
                for &iw in &direct {
                    if let Some(tw) = mappings.i2t(iw) {
                        union.extend(tw.iter().copied());
                    }
                }
                for &iw in &direct {
                    entries.insert(iw, 1.0);
                }
                // Indirect matches: any other i-word whose t-words overlap the
                // union, scored by Jaccard similarity against the union.
                for iw in vocab.iwords() {
                    if entries.contains_key(&iw) {
                        continue;
                    }
                    let Some(tw) = mappings.i2t(iw) else { continue };
                    if tw.intersection(&union).next().is_none() {
                        continue;
                    }
                    let s = jaccard(tw, &union);
                    if s > tau {
                        entries.insert(iw, s);
                    }
                }
            }
            WordKind::Unknown => {}
        }
        Ok(CandidateSet {
            query_word,
            entries,
        })
    }

    /// Assembles a candidate set from precomputed `(i-word, similarity)`
    /// entries.
    ///
    /// This is the constructor used by index-accelerated candidate
    /// generation (`indoor-index`), which enumerates the same Definition-4
    /// entries without scanning the whole vocabulary. Callers are
    /// responsible for supplying exactly the entries [`CandidateSet::build`]
    /// would produce; `build` remains the reference implementation and the
    /// two are cross-checked by tests.
    pub fn from_entries(query_word: WordId, entries: BTreeMap<WordId, f64>) -> Self {
        CandidateSet {
            query_word,
            entries,
        }
    }

    /// The matching i-words (`κ(wQ).Wi`).
    pub fn iwords(&self) -> impl Iterator<Item = WordId> + '_ {
        self.entries.keys().copied()
    }

    /// Similarity of a matching i-word, if present.
    pub fn similarity(&self, iword: WordId) -> Option<f64> {
        self.entries.get(&iword).copied()
    }

    /// Whether the i-word is a candidate match.
    pub fn contains(&self, iword: WordId) -> bool {
        self.entries.contains_key(&iword)
    }

    /// Number of candidate i-words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the candidate set is empty (the query word can never be
    /// covered in this venue).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(i-word, similarity)` entries.
    pub fn entries(&self) -> impl Iterator<Item = CandidateEntry> + '_ {
        self.entries
            .iter()
            .map(|(&iword, &similarity)| CandidateEntry { iword, similarity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the running example of §III (Example 4):
    ///   costa:     {coffee, drinks, macha}
    ///   apple:     {phone, mac, laptop, watch}
    ///   starbucks: {coffee, macha, latte, drinks}
    ///   samsung:   {phone, laptop, earphone}
    fn example_setup() -> (Vocabulary, KeywordMappings) {
        let mut v = Vocabulary::new();
        let mut m = KeywordMappings::new();
        let names = ["costa", "apple", "starbucks", "samsung"];
        let twords: [&[&str]; 4] = [
            &["coffee", "drinks", "macha"],
            &["phone", "mac", "laptop", "watch"],
            &["coffee", "macha", "latte", "drinks"],
            &["phone", "laptop", "earphone"],
        ];
        for (name, tws) in names.iter().zip(twords.iter()) {
            let iw = v.add_iword(name).unwrap();
            for t in tws.iter() {
                let (tw, _) = v.add_tword(t);
                m.associate(iw, tw);
            }
        }
        (v, m)
    }

    #[test]
    fn jaccard_basics() {
        let a: BTreeSet<WordId> = [WordId(1), WordId(2), WordId(3)].into_iter().collect();
        let b: BTreeSet<WordId> = [WordId(2), WordId(3), WordId(4)].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-9);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-9);
        let empty = BTreeSet::new();
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&empty, &empty), 0.0);
    }

    #[test]
    fn example_4_latte_candidates() {
        let (v, m) = example_setup();
        let latte = v.lookup("latte").unwrap();
        let set = CandidateSet::build(latte, &v, &m, 0.5).unwrap();
        // Direct match: starbucks with score 1. Indirect: costa with 3/4.
        let starbucks = v.lookup("starbucks").unwrap();
        let costa = v.lookup("costa").unwrap();
        assert_eq!(set.len(), 2);
        assert!((set.similarity(starbucks).unwrap() - 1.0).abs() < 1e-9);
        assert!((set.similarity(costa).unwrap() - 0.75).abs() < 1e-9);
        // apple and samsung share no t-word with the union: not candidates.
        assert!(!set.contains(v.lookup("apple").unwrap()));
        assert!(!set.contains(v.lookup("samsung").unwrap()));
    }

    #[test]
    fn example_4_apple_candidates() {
        let (v, m) = example_setup();
        let apple = v.lookup("apple").unwrap();
        let set = CandidateSet::build(apple, &v, &m, 0.5).unwrap();
        assert_eq!(set.len(), 1);
        assert!((set.similarity(apple).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(set.iwords().collect::<Vec<_>>(), vec![apple]);
    }

    #[test]
    fn threshold_drops_weak_indirect_matches() {
        let (v, m) = example_setup();
        let phone = v.lookup("phone").unwrap();
        // Direct: apple, samsung. Union = {phone, mac, laptop, watch, earphone}.
        // No other i-word shares a t-word, so candidates are just the two.
        let set = CandidateSet::build(phone, &v, &m, 0.05).unwrap();
        assert_eq!(set.len(), 2);
        // With coffee the direct matches are costa and starbucks; union =
        // {coffee, drinks, macha, latte}. costa itself is a direct match;
        // starbucks direct; no indirect survive τ = 0.9 anyway.
        let coffee = v.lookup("coffee").unwrap();
        let strict = CandidateSet::build(coffee, &v, &m, 0.9).unwrap();
        assert_eq!(strict.len(), 2);
        for e in strict.entries() {
            assert!((e.similarity - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn indirect_matches_appear_below_one() {
        let (v, m) = example_setup();
        let earphone = v.lookup("earphone").unwrap();
        // Direct: samsung. Union = {phone, laptop, earphone}.
        // apple = {phone, mac, laptop, watch} shares phone+laptop with the
        // union: jaccard = 2 / 5 = 0.4.
        let set = CandidateSet::build(earphone, &v, &m, 0.1).unwrap();
        let apple = v.lookup("apple").unwrap();
        let samsung = v.lookup("samsung").unwrap();
        assert!((set.similarity(samsung).unwrap() - 1.0).abs() < 1e-9);
        assert!((set.similarity(apple).unwrap() - 0.4).abs() < 1e-9);
        // A higher threshold prunes apple.
        let set = CandidateSet::build(earphone, &v, &m, 0.5).unwrap();
        assert!(!set.contains(apple));
    }

    #[test]
    fn unknown_word_and_invalid_threshold() {
        let (mut v, m) = example_setup();
        let unknown = v.add_tword("unrelated").0;
        let set = CandidateSet::build(unknown, &v, &m, 0.1).unwrap();
        assert!(set.is_empty());
        assert!(CandidateSet::build(unknown, &v, &m, 1.5).is_err());
        assert!(CandidateSet::build(unknown, &v, &m, -0.1).is_err());
    }
}
