//! The IKRQ query type (Problem 1).

use crate::error::EngineError;
use crate::Result;
use indoor_keywords::QueryKeywords;
use indoor_space::IndoorPoint;
use serde::{Deserialize, Serialize};

/// Default trade-off parameter between keyword relevance and spatial
/// proximity (Definition 7). The synthetic experiments of the paper default
/// to a balanced 0.5; the real-data experiments use 0.7.
pub const DEFAULT_ALPHA: f64 = 0.5;

/// Default similarity threshold `τ` for candidate i-word sets (Definition 4).
pub const DEFAULT_TAU: f64 = 0.1;

/// An indoor top-k keyword-aware routing query
/// `IKRQ(ps, pt, ∆, QW, k)` (Problem 1), plus the two model parameters `α`
/// (ranking trade-off, Definition 7) and `τ` (candidate similarity threshold,
/// Definition 4) that the paper treats as system-wide settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IkrqQuery {
    /// Start point `ps`.
    pub start: IndoorPoint,
    /// Terminal point `pt`.
    pub terminal: IndoorPoint,
    /// Distance constraint `∆` in metres.
    pub delta: f64,
    /// Query keyword list `QW`.
    pub keywords: QueryKeywords,
    /// Number of routes to return.
    pub k: usize,
    /// Ranking trade-off parameter `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Candidate similarity threshold `τ ∈ [0, 1]`.
    pub tau: f64,
}

impl IkrqQuery {
    /// Creates a query with default `α` and `τ`.
    pub fn new(
        start: IndoorPoint,
        terminal: IndoorPoint,
        delta: f64,
        keywords: QueryKeywords,
        k: usize,
    ) -> Self {
        IkrqQuery {
            start,
            terminal,
            delta,
            keywords,
            k,
            alpha: DEFAULT_ALPHA,
            tau: DEFAULT_TAU,
        }
    }

    /// Sets `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets `τ`.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// `|QW|`.
    pub fn num_keywords(&self) -> usize {
        self.keywords.len()
    }

    /// Validates the query parameters (not the venue-dependent parts, which
    /// [`crate::SearchContext::prepare`] checks).
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(EngineError::InvalidK(self.k));
        }
        if !(self.delta.is_finite() && self.delta > 0.0) {
            return Err(EngineError::InvalidDelta(self.delta));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(EngineError::InvalidAlpha(self.alpha));
        }
        if !(0.0..=1.0).contains(&self.tau) {
            return Err(EngineError::InvalidTau(self.tau));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::FloorId;

    fn sample(delta: f64, k: usize, alpha: f64, tau: f64) -> IkrqQuery {
        IkrqQuery {
            start: IndoorPoint::from_xy(0.0, 0.0, FloorId(0)),
            terminal: IndoorPoint::from_xy(10.0, 10.0, FloorId(0)),
            delta,
            keywords: QueryKeywords::new(["coffee"]).unwrap(),
            k,
            alpha,
            tau,
        }
    }

    #[test]
    fn valid_query_passes() {
        let q = sample(100.0, 3, 0.5, 0.1);
        assert!(q.validate().is_ok());
        assert_eq!(q.num_keywords(), 1);
    }

    #[test]
    fn builder_style_setters() {
        let q = IkrqQuery::new(
            IndoorPoint::from_xy(0.0, 0.0, FloorId(0)),
            IndoorPoint::from_xy(1.0, 1.0, FloorId(0)),
            50.0,
            QueryKeywords::new(["latte", "apple"]).unwrap(),
            7,
        )
        .with_alpha(0.7)
        .with_tau(0.2);
        assert_eq!(q.alpha, 0.7);
        assert_eq!(q.tau, 0.2);
        assert_eq!(q.k, 7);
        assert_eq!(q.num_keywords(), 2);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            sample(100.0, 0, 0.5, 0.1).validate(),
            Err(EngineError::InvalidK(0))
        ));
        assert!(matches!(
            sample(-5.0, 1, 0.5, 0.1).validate(),
            Err(EngineError::InvalidDelta(_))
        ));
        assert!(matches!(
            sample(f64::INFINITY, 1, 0.5, 0.1).validate(),
            Err(EngineError::InvalidDelta(_))
        ));
        assert!(matches!(
            sample(100.0, 1, 1.5, 0.1).validate(),
            Err(EngineError::InvalidAlpha(_))
        ));
        assert!(matches!(
            sample(100.0, 1, 0.5, 7.0).validate(),
            Err(EngineError::InvalidTau(_))
        ));
    }
}
