//! The five pruning rules of §IV-A, represented as an enum for statistics
//! and reporting. The rules themselves are applied inline by the expansion
//! strategies (they need search state); this module gives them identity and
//! counts how often each one fires.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The pruning rules of §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruneRule {
    /// Pruning Rule 1: a partial route whose distance plus the lower-bound
    /// distance from its tail to `pt` exceeds `∆`.
    PartialRouteDistance,
    /// Pruning Rule 2: a door whose lower-bound `ps`-to-door plus door-to-`pt`
    /// distance exceeds `∆`.
    DoorDistance,
    /// Pruning Rule 3: a partition whose lower-bound detour distance
    /// `δ(ps, v, pt)` exceeds `∆`.
    PartitionDistance,
    /// Pruning Rule 4: a partial route whose upper-bound ranking score does
    /// not exceed the current k-th best score (`kbound`).
    KBound,
    /// Pruning Rule 5: a partial route that is not prime against an already
    /// seen homogeneous route.
    Prime,
    /// Not a numbered pruning rule: an expansion rejected because it would
    /// violate the regularity principle (including the Lemma 2 loop check).
    Regularity,
    /// Not a numbered pruning rule: an expansion rejected because the partial
    /// route itself already exceeds `∆` (the hard query constraint).
    DistanceConstraint,
}

impl PruneRule {
    /// All rule variants in display order.
    pub const ALL: [PruneRule; 7] = [
        PruneRule::PartialRouteDistance,
        PruneRule::DoorDistance,
        PruneRule::PartitionDistance,
        PruneRule::KBound,
        PruneRule::Prime,
        PruneRule::Regularity,
        PruneRule::DistanceConstraint,
    ];

    /// Short label used in metric dumps.
    pub fn label(self) -> &'static str {
        match self {
            PruneRule::PartialRouteDistance => "rule1_partial_route_distance",
            PruneRule::DoorDistance => "rule2_door_distance",
            PruneRule::PartitionDistance => "rule3_partition_distance",
            PruneRule::KBound => "rule4_kbound",
            PruneRule::Prime => "rule5_prime",
            PruneRule::Regularity => "regularity",
            PruneRule::DistanceConstraint => "distance_constraint",
        }
    }

    fn index(self) -> usize {
        match self {
            PruneRule::PartialRouteDistance => 0,
            PruneRule::DoorDistance => 1,
            PruneRule::PartitionDistance => 2,
            PruneRule::KBound => 3,
            PruneRule::Prime => 4,
            PruneRule::Regularity => 5,
            PruneRule::DistanceConstraint => 6,
        }
    }
}

impl fmt::Display for PruneRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-rule pruning counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    counts: [u64; 7],
}

impl PruneStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        PruneStats::default()
    }

    /// Records one firing of a rule.
    pub fn record(&mut self, rule: PruneRule) {
        self.counts[rule.index()] += 1;
    }

    /// Number of times a rule fired.
    pub fn count(&self, rule: PruneRule) -> u64 {
        self.counts[rule.index()]
    }

    /// Total prunings across all rules.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total prunings from the five numbered rules only.
    pub fn total_numbered(&self) -> u64 {
        PruneRule::ALL
            .iter()
            .filter(|r| !matches!(r, PruneRule::Regularity | PruneRule::DistanceConstraint))
            .map(|&r| self.count(r))
            .sum()
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &PruneStats) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for PruneStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for rule in PruneRule::ALL {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", rule.label(), self.count(rule))?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_rule() {
        let mut s = PruneStats::new();
        s.record(PruneRule::Prime);
        s.record(PruneRule::Prime);
        s.record(PruneRule::KBound);
        s.record(PruneRule::Regularity);
        assert_eq!(s.count(PruneRule::Prime), 2);
        assert_eq!(s.count(PruneRule::KBound), 1);
        assert_eq!(s.count(PruneRule::PartialRouteDistance), 0);
        assert_eq!(s.total(), 4);
        assert_eq!(s.total_numbered(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PruneStats::new();
        a.record(PruneRule::DoorDistance);
        let mut b = PruneStats::new();
        b.record(PruneRule::DoorDistance);
        b.record(PruneRule::PartitionDistance);
        a.merge(&b);
        assert_eq!(a.count(PruneRule::DoorDistance), 2);
        assert_eq!(a.count(PruneRule::PartitionDistance), 1);
    }

    #[test]
    fn labels_and_display() {
        for rule in PruneRule::ALL {
            assert!(!rule.label().is_empty());
            assert_eq!(rule.to_string(), rule.label());
        }
        let mut s = PruneStats::new();
        s.record(PruneRule::KBound);
        assert!(s.to_string().contains("rule4_kbound=1"));
    }
}
