//! The prime-route hash table `Hprime` and the `prime_check` /
//! `prime_update` functions (Algorithms 3 and 4).
//!
//! Two routes are *homogeneous* when they share head, tail and key-partition
//! sequence (Definition 2); among homogeneous routes only the shortest — the
//! *prime* route (Definition 3) — may survive. During the search all expanded
//! routes share the head `ps`, so the homogeneity key is the pair
//! `(R.tail, KP(R))`, which this module encodes into a compact byte string.

use bytes::{BufMut, Bytes, BytesMut};
use indoor_space::{DoorId, PartitionId};
use std::collections::HashMap;

/// Tolerance when comparing route distances: a route is only considered
/// *prime against* another when it is strictly shorter by more than this
/// epsilon. In particular a route never prunes itself when its own distance
/// was already recorded by `prime_update` (the paper's pseudocode uses a
/// strict `>` comparison in both Algorithm 3 and 4, which taken literally
/// would prune the very route that created the entry; see DESIGN.md).
const DISTANCE_EPSILON: f64 = 1e-9;

/// Compact homogeneity key: tail item plus key-partition sequence.
///
/// Definition 2 compares routes by head, tail and key-partition sequence.
/// During the search every route shares the head `ps`, so the key reduces to
/// the tail and `KP(R)`. The tail of a *partial* route is its last door
/// (`Some(door)`); every *complete* route ends at the terminal point `pt`, so
/// complete routes pass `None` and are compared against each other purely by
/// their key-partition sequences — a partial route never shadows its own
/// completion.
fn encode_key(tail: Option<DoorId>, key_partitions: &[PartitionId]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 4 * key_partitions.len());
    buf.put_u32_le(tail.map(|d| d.0 + 1).unwrap_or(0));
    for v in key_partitions {
        buf.put_u32_le(v.0);
    }
    buf.freeze()
}

/// The prime-route table `Hprime`: for every homogeneity class seen so far,
/// the distance of the shortest (prime) representative.
#[derive(Debug, Clone, Default)]
pub struct PrimeTable {
    entries: HashMap<Bytes, f64>,
    approx_bytes: usize,
}

impl PrimeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PrimeTable::default()
    }

    /// `prime_check` (Algorithm 3): returns `true` when a route with tail
    /// `tail`, key partitions `key_partitions` and distance `distance` is (so
    /// far) prime — i.e. no strictly shorter homogeneous route has been
    /// recorded — and `false` when it should be pruned by Pruning Rule 5.
    pub fn check(
        &self,
        tail: Option<DoorId>,
        key_partitions: &[PartitionId],
        distance: f64,
    ) -> bool {
        match self.entries.get(&encode_key(tail, key_partitions)) {
            None => true,
            Some(&best) => best + DISTANCE_EPSILON >= distance,
        }
    }

    /// `prime_update` (Algorithm 4): records `distance` as the new prime
    /// distance of the homogeneity class when it improves on the stored one.
    /// Returns `true` when the entry was created or improved.
    pub fn update(
        &mut self,
        tail: Option<DoorId>,
        key_partitions: &[PartitionId],
        distance: f64,
    ) -> bool {
        let key = encode_key(tail, key_partitions);
        match self.entries.get_mut(&key) {
            None => {
                // Per-entry overhead: key bytes + value + hash-map slot.
                self.approx_bytes += key.len() + std::mem::size_of::<(Bytes, f64)>() + 16;
                self.entries.insert(key, distance);
                true
            }
            Some(best) => {
                if distance < *best {
                    *best = distance;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Number of homogeneity classes recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated heap size in bytes (used for the memory metric); maintained
    /// incrementally so sampling it every iteration is O(1).
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.approx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(ids: &[u32]) -> Vec<PartitionId> {
        ids.iter().map(|&i| PartitionId(i)).collect()
    }

    #[test]
    fn fresh_class_is_prime() {
        let t = PrimeTable::new();
        assert!(t.check(Some(DoorId(5)), &kp(&[1, 2, 3]), 12.5));
        assert!(t.is_empty());
    }

    #[test]
    fn shorter_homogeneous_route_prunes_longer_one() {
        let mut t = PrimeTable::new();
        assert!(t.update(Some(DoorId(5)), &kp(&[1, 2]), 12.5));
        // Example 8: R3* = (ps,d2,d5) with 12.5 m is prime against
        // R4* = (ps,d3,d5,d5) with 23.2 m, so the latter fails the check.
        assert!(!t.check(Some(DoorId(5)), &kp(&[1, 2]), 23.2));
        // The shorter route itself still passes (it is the recorded one).
        assert!(t.check(Some(DoorId(5)), &kp(&[1, 2]), 12.5));
        // An even shorter homogeneous route passes and improves the entry.
        assert!(t.check(Some(DoorId(5)), &kp(&[1, 2]), 10.0));
        assert!(t.update(Some(DoorId(5)), &kp(&[1, 2]), 10.0));
        assert!(!t.update(Some(DoorId(5)), &kp(&[1, 2]), 11.0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_tails_or_key_sequences_are_independent() {
        let mut t = PrimeTable::new();
        t.update(Some(DoorId(5)), &kp(&[1, 2]), 5.0);
        assert!(t.check(Some(DoorId(6)), &kp(&[1, 2]), 50.0));
        assert!(t.check(Some(DoorId(5)), &kp(&[2, 1]), 50.0));
        assert!(t.check(Some(DoorId(5)), &kp(&[1, 2, 3]), 50.0));
        assert!(t.check(None, &kp(&[1, 2]), 50.0));
        t.update(Some(DoorId(6)), &kp(&[1, 2]), 5.0);
        t.update(None, &kp(&[]), 0.0);
        assert_eq!(t.len(), 3);
        assert!(t.estimated_bytes() > 0);
    }

    #[test]
    fn key_encoding_distinguishes_no_tail_from_door_zero() {
        let mut t = PrimeTable::new();
        t.update(None, &kp(&[1]), 1.0);
        assert!(t.check(Some(DoorId(0)), &kp(&[1]), 100.0));
        t.update(Some(DoorId(0)), &kp(&[1]), 2.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn equal_distance_does_not_prune() {
        // Two homogeneous routes of exactly equal length: neither is prime
        // against the other (Definition 3 requires strictly smaller), so the
        // check accepts the second one.
        let mut t = PrimeTable::new();
        t.update(Some(DoorId(3)), &kp(&[4]), 7.0);
        assert!(t.check(Some(DoorId(3)), &kp(&[4]), 7.0));
    }
}
