//! Top-k result maintenance, the `kbound`, and the homogeneous-rate metric
//! of §V-A4.

use crate::metrics::SearchMetrics;
use indoor_space::{DoorId, PartitionId, Route};
use serde::{Deserialize, Serialize};

/// One route in the result set, with the quantities of Definition 6/7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRoute {
    /// The complete route from `ps` to `pt`.
    pub route: Route,
    /// Route distance `δ(R)`.
    pub distance: f64,
    /// Keyword relevance `ρ(R)`.
    pub relevance: f64,
    /// Ranking score `ψ(R)`.
    pub score: f64,
    /// Homogeneity key of the route: tail door and key-partition sequence.
    /// Two result routes with equal keys are homogeneous (Definition 2).
    pub homogeneity_key: (Option<DoorId>, Vec<PartitionId>),
}

/// The top-k result set of a search run.
///
/// When `enforce_prime` is set (all variants except ToE\P), homogeneous
/// routes replace each other so only the prime representative remains; when
/// it is not, homogeneous routes coexist and the
/// [`TopKResults::homogeneous_rate`] metric becomes meaningful (Fig. 16 and
/// Fig. 20 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKResults {
    k: usize,
    enforce_prime: bool,
    entries: Vec<ResultRoute>,
}

impl TopKResults {
    /// Creates an empty result set for a given `k`.
    pub fn new(k: usize, enforce_prime: bool) -> Self {
        TopKResults {
            k,
            enforce_prime,
            entries: Vec::with_capacity(k + 1),
        }
    }

    /// The `k` of the query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The routes currently held, best score first.
    pub fn routes(&self) -> &[ResultRoute] {
        &self.entries
    }

    /// Number of routes currently held (≤ k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no route has been found yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The best route, if any.
    pub fn best(&self) -> Option<&ResultRoute> {
        self.entries.first()
    }

    /// The current `kbound`: the k-th highest ranking score among the routes
    /// found so far, or 0 when fewer than `k` routes are known (Algorithm 1
    /// line 5 initialises it to 0).
    pub fn kbound(&self) -> f64 {
        if self.entries.len() >= self.k {
            self.entries[self.k - 1].score
        } else {
            0.0
        }
    }

    /// Offers a complete route to the result set. Returns `true` when the
    /// result set changed.
    pub fn offer(&mut self, candidate: ResultRoute) -> bool {
        if self.enforce_prime {
            // Replace an existing homogeneous route when the candidate is
            // prime against it (strictly shorter); otherwise reject the
            // candidate so the result set stays diverse.
            if let Some(pos) = self
                .entries
                .iter()
                .position(|e| e.homogeneity_key == candidate.homogeneity_key)
            {
                if candidate.distance < self.entries[pos].distance {
                    self.entries.remove(pos);
                } else {
                    return false;
                }
            }
        }
        // Reject candidates that cannot enter the top-k.
        if self.entries.len() >= self.k {
            let worst = self.entries.last().expect("non-empty").score;
            if candidate.score <= worst {
                return false;
            }
        }
        self.entries.push(candidate);
        self.entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    a.distance
                        .partial_cmp(&b.distance)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        });
        self.entries.truncate(self.k);
        true
    }

    /// The fraction of returned routes that have at least one other
    /// homogeneous route in the result set (the homogeneous rate of §V-A4).
    /// Always 0 when prime enforcement is on.
    pub fn homogeneous_rate(&self) -> f64 {
        if self.entries.len() <= 1 {
            return 0.0;
        }
        let homogeneous = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                self.entries
                    .iter()
                    .enumerate()
                    .any(|(j, o)| *i != j && o.homogeneity_key == e.homogeneity_key)
            })
            .count();
        homogeneous as f64 / self.entries.len() as f64
    }

    /// Estimated heap size in bytes.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .entries
                .iter()
                .map(|e| {
                    e.route.estimated_bytes()
                        + e.homogeneity_key.1.capacity() * std::mem::size_of::<PartitionId>()
                        + std::mem::size_of::<ResultRoute>()
                })
                .sum::<usize>()
    }
}

/// The outcome of one search run: the result set plus the metrics, labelled
/// with the variant that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Label of the algorithm variant (Table III notation).
    pub label: String,
    /// The top-k routes.
    pub results: TopKResults,
    /// Search metrics.
    pub metrics: SearchMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::{FloorId, IndoorPoint};

    fn entry(score: f64, distance: f64, key_tail: u32, key_parts: &[u32]) -> ResultRoute {
        ResultRoute {
            route: Route::from_point(IndoorPoint::from_xy(0.0, 0.0, FloorId(0))),
            distance,
            relevance: 1.0,
            score,
            homogeneity_key: (
                Some(DoorId(key_tail)),
                key_parts.iter().map(|&p| PartitionId(p)).collect(),
            ),
        }
    }

    #[test]
    fn keeps_top_k_by_score() {
        let mut r = TopKResults::new(2, true);
        assert!(r.is_empty());
        assert_eq!(r.kbound(), 0.0);
        assert!(r.offer(entry(0.3, 10.0, 1, &[1])));
        assert_eq!(r.kbound(), 0.0, "kbound stays 0 until k routes are known");
        assert!(r.offer(entry(0.5, 12.0, 2, &[2])));
        assert!((r.kbound() - 0.3).abs() < 1e-12);
        // A better route evicts the worst.
        assert!(r.offer(entry(0.7, 20.0, 3, &[3])));
        assert_eq!(r.len(), 2);
        assert!((r.kbound() - 0.5).abs() < 1e-12);
        assert!((r.best().unwrap().score - 0.7).abs() < 1e-12);
        // A route worse than the current k-th is rejected.
        assert!(!r.offer(entry(0.2, 5.0, 4, &[4])));
        assert_eq!(r.k(), 2);
        assert!(r.estimated_bytes() > 0);
    }

    #[test]
    fn prime_enforcement_replaces_homogeneous_routes() {
        let mut r = TopKResults::new(3, true);
        assert!(r.offer(entry(0.6, 30.0, 1, &[1, 2])));
        // A homogeneous but longer route is rejected even though its score
        // would fit.
        assert!(!r.offer(entry(0.55, 35.0, 1, &[1, 2])));
        assert_eq!(r.len(), 1);
        // A homogeneous shorter (prime) route replaces the stored one.
        assert!(r.offer(entry(0.65, 25.0, 1, &[1, 2])));
        assert_eq!(r.len(), 1);
        assert!((r.best().unwrap().distance - 25.0).abs() < 1e-12);
        assert_eq!(r.homogeneous_rate(), 0.0);
    }

    #[test]
    fn without_prime_enforcement_homogeneous_routes_coexist() {
        let mut r = TopKResults::new(4, false);
        assert!(r.offer(entry(0.6, 30.0, 1, &[1, 2])));
        assert!(r.offer(entry(0.55, 35.0, 1, &[1, 2])));
        assert!(r.offer(entry(0.5, 40.0, 2, &[1, 3])));
        assert_eq!(r.len(), 3);
        // Two of the three routes are homogeneous with another one.
        assert!((r.homogeneous_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_rate_of_singletons_is_zero() {
        let mut r = TopKResults::new(4, false);
        assert_eq!(r.homogeneous_rate(), 0.0);
        r.offer(entry(0.6, 30.0, 1, &[1]));
        assert_eq!(r.homogeneous_rate(), 0.0);
    }
}
