//! # ikrq-core
//!
//! The Indoor Top-k Keyword-aware Routing Query engine — the primary
//! contribution of the reproduced paper (Feng et al., ICDE 2020).
//!
//! Given a start point `ps`, a terminal point `pt`, a distance constraint
//! `∆`, a query keyword list `QW` and `k`, an [`IkrqQuery`] asks for the `k`
//! *regular* and *prime* routes from `ps` to `pt` whose distance is at most
//! `∆` and whose ranking score
//!
//! ```text
//! ψ(R) = α · ρ(R) / (|QW| + 1) + (1 − α) · (∆ − δ(R)) / ∆
//! ```
//!
//! is maximal (Problem 1, Definition 7). The engine implements the paper's
//! unified search framework (Algorithm 1) with both expansion strategies:
//!
//! * **ToE** — topology-oriented expansion (Algorithm 2): expand door by door
//!   over the indoor topology;
//! * **KoE** — keyword-oriented expansion (Algorithm 6): jump directly to key
//!   partitions that cover still-uncovered query keywords;
//!
//! together with the five pruning rules of §IV-A, the prime-route machinery
//! of §II-B (Algorithms 3/4), the connect step (Algorithm 5), the ablation
//! variants of Table III (ToE\D, ToE\B, ToE\P, KoE\D, KoE\B, KoE*), and a
//! naive exhaustive baseline for correctness checking.
//!
//! # Serving queries
//!
//! The primary entry point is the service layer: an [`IkrqService`] hosts
//! any number of named venues and answers [`SearchRequest`] envelopes —
//! venue id + query + [`ExecOptions`] — one at a time or as a parallel
//! batch:
//!
//! ```
//! use ikrq_core::{IkrqService, SearchRequest, VariantConfig};
//! use indoor_keywords::QueryKeywords;
//!
//! let example = indoor_data::paper_example_venue();
//! let service = IkrqService::new();
//! service
//!     .register_venue(
//!         "fig1",
//!         example.venue.space.clone(),
//!         example.venue.directory.clone(),
//!     )
//!     .unwrap();
//!
//! let request = SearchRequest::builder("fig1")
//!     .from(example.ps)
//!     .to(example.pt)
//!     .delta(400.0)
//!     .keywords(QueryKeywords::new(["latte", "apple"]).unwrap())
//!     .k(3)
//!     .variant(VariantConfig::koe())
//!     .build()
//!     .unwrap();
//!
//! let response = service.search(&request).unwrap();
//! println!("{} routes in {:.2} ms", response.results.len(), response.timing.total_ms);
//!
//! // Throughput path: many requests fan out over all cores, results come
//! // back in request order.
//! let responses = service.search_batch(&[request.clone(), request]);
//! assert_eq!(responses.len(), 2);
//! ```
//!
//! Single-venue embedders can hold an [`IkrqEngine`] directly and call
//! [`IkrqEngine::execute`] with [`ExecOptions`]. (The deprecated one-shot
//! `IkrqEngine::search*` shims of 0.2 have been removed.) See
//! `examples/quickstart.rs` in the workspace root for a complete
//! walk-through, and the `ikrq-server` crate for the HTTP/JSON front end
//! that ships these envelopes over the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod connect;
pub mod context;
pub mod engine;
pub mod error;
pub mod extensions;
pub mod framework;
pub mod koe;
pub mod metrics;
pub mod precompute;
pub mod prime;
pub mod pruning;
pub mod query;
pub mod request;
pub mod results;
pub mod score;
pub mod service;
pub mod stamp;
pub mod toe;
pub mod variants;

pub use baseline::ExhaustiveBaseline;
pub use cache::{CacheConfig, CacheStats, ResponseCache};
pub use context::SearchContext;
pub use engine::{DocumentStats, IkrqEngine, IndexMode, IndexStats};
pub use error::EngineError;
pub use extensions::{
    PopularityModel, PopularityRanked, RoutePopularity, SoftDeltaConfig, SoftOutcome, SoftRoute,
    UniformPopularity, VisitCountPopularity,
};
pub use metrics::SearchMetrics;
pub use precompute::PrecomputedPaths;
pub use prime::PrimeTable;
pub use pruning::{PruneRule, PruneStats};
pub use query::IkrqQuery;
pub use request::{
    ExecOptions, MetricsDetail, ResponseTiming, SearchRequest, SearchRequestBuilder,
    SearchResponse, VenueSummary, API_VERSION,
};
pub use results::{ResultRoute, SearchOutcome, TopKResults};
pub use score::RankingModel;
pub use service::{IkrqService, VenueRegistry};
pub use stamp::Stamp;
pub use variants::{AlgorithmKind, VariantConfig};

/// Result alias for fallible engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::{
        AlgorithmKind, ExecOptions, ExhaustiveBaseline, IkrqEngine, IkrqQuery, IkrqService,
        MetricsDetail, PruneRule, RankingModel, ResultRoute, SearchMetrics, SearchOutcome,
        SearchRequest, SearchRequestBuilder, SearchResponse, TopKResults, VariantConfig,
        VenueRegistry,
    };
}
