//! The [`IkrqEngine`] facade: owns a venue (space + keyword directory) and
//! answers IKRQ queries with any algorithm variant.

use crate::context::SearchContext;
use crate::framework::Search;
use crate::precompute::PrecomputedPaths;
use crate::query::IkrqQuery;
use crate::request::ExecOptions;
use crate::results::SearchOutcome;
use crate::variants::VariantConfig;
use crate::Result;
use indoor_index::{IndexCounterSnapshot, VenueIndex};
use indoor_keywords::KeywordDirectory;
use indoor_space::IndoorSpace;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

/// Whether an engine answers queries through the venue index or the original
/// linear scans. Accelerated is the default; Scan is the `--index false`
/// fallback kept for cross-checking (the two produce byte-identical
/// results — the scan path is the executable specification of the index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Build a [`VenueIndex`] at engine construction and consult it for
    /// keyword candidate generation and KoE region pruning.
    #[default]
    Accelerated,
    /// Original behaviour: vocabulary scans and per-partition bounds.
    Scan,
}

impl IndexMode {
    /// Stable wire label, used by `/v1/stats` and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            IndexMode::Accelerated => "accelerated",
            IndexMode::Scan => "scan",
        }
    }
}

/// How the venue document this engine serves was turned into its in-memory
/// model, shaped for `/v1/stats`. Recorded by whoever loads the venue (the
/// CLI maps `indoor_persist::DocumentLoadStats` here); engines built
/// directly from in-memory models have none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentStats {
    /// File format version the venue was loaded from (`2` columnar binary,
    /// `1` record binary, `0` JSON).
    pub format_version: u16,
    /// Whether the model was adopted from a columnar document section
    /// rather than rebuilt from records.
    pub adopted_columnar: bool,
    /// Microseconds spent decoding bytes into records or columns.
    pub decode_micros: u64,
    /// Microseconds spent turning the decoded form into the model.
    pub adopt_micros: u64,
    /// Why a columnar file fell back to the record rebuild, when it did.
    pub degraded: Option<String>,
}

/// Point-in-time index observability for one engine, shaped for `/v1/stats`.
#[derive(Debug, Clone, Copy)]
pub struct IndexStats {
    /// Index build wall-clock time in microseconds (decode time when the
    /// index was loaded from a persisted section).
    pub build_micros: u64,
    /// Estimated index heap footprint in bytes.
    pub estimated_bytes: usize,
    /// Whether the index was loaded from a persisted venue file rather than
    /// built from the venue at engine construction.
    pub loaded_from_disk: bool,
    /// Cumulative usage counters since engine construction.
    pub counters: IndexCounterSnapshot,
}

/// The query engine for one venue.
///
/// The engine owns the immutable space model and keyword directory, the
/// optional venue index (built eagerly at construction in
/// [`IndexMode::Accelerated`], so its build time is a constructor-time cost
/// and not query jitter), and the per-door-row KoE* distance cache (created
/// on first use behind a [`OnceLock`]; individual rows materialise lazily).
#[derive(Debug)]
pub struct IkrqEngine {
    space: Arc<IndoorSpace>,
    directory: KeywordDirectory,
    index: Option<Arc<VenueIndex>>,
    precomputed: OnceLock<Arc<PrecomputedPaths>>,
    /// Explicit KoE* row-cache capacity (`--koe-rows-cap`); `None` sizes the
    /// cache from the default byte budget when the cache is first created.
    koe_rows_cap: Option<usize>,
    /// How the venue document was loaded, when the engine came from one.
    document_stats: Option<DocumentStats>,
}

impl IkrqEngine {
    /// Creates an engine for a venue with the default (index-accelerated)
    /// query path.
    pub fn new(space: IndoorSpace, directory: KeywordDirectory) -> Self {
        Self::with_index_mode(space, directory, IndexMode::default())
    }

    /// Creates an engine with an explicit index mode. [`IndexMode::Scan`]
    /// preserves the original linear-scan behaviour exactly.
    pub fn with_index_mode(
        space: IndoorSpace,
        directory: KeywordDirectory,
        mode: IndexMode,
    ) -> Self {
        let space = Arc::new(space);
        let index = match mode {
            IndexMode::Accelerated => Some(Arc::new(VenueIndex::build(&space, &directory))),
            IndexMode::Scan => None,
        };
        IkrqEngine {
            space,
            directory,
            index,
            precomputed: OnceLock::new(),
            koe_rows_cap: None,
            document_stats: None,
        }
    }

    /// Creates an accelerated engine around an index that was loaded from a
    /// persisted venue file instead of built here. The caller is responsible
    /// for the binding discipline: the index must have been validated
    /// against this exact directory (see
    /// `indoor_persist::PrebuiltIndex::into_index`).
    pub fn with_prebuilt_index(
        space: IndoorSpace,
        directory: KeywordDirectory,
        index: VenueIndex,
    ) -> Self {
        IkrqEngine {
            space: Arc::new(space),
            directory,
            index: Some(Arc::new(index)),
            precomputed: OnceLock::new(),
            koe_rows_cap: None,
            document_stats: None,
        }
    }

    /// Records how the venue document behind this engine was loaded, for
    /// `/v1/stats` observability. Called by the loader that built the
    /// engine; replaces any earlier record.
    pub fn set_document_stats(&mut self, stats: DocumentStats) {
        self.document_stats = Some(stats);
    }

    /// How the venue document was loaded, when the engine came from one.
    pub fn document_stats(&self) -> Option<&DocumentStats> {
        self.document_stats.as_ref()
    }

    /// Sets an explicit KoE* row-cache capacity. Must be called before the
    /// first KoE* query creates the cache; later calls are ignored (the
    /// `OnceLock`ed cache keeps the capacity it was created with).
    pub fn set_koe_rows_cap(&mut self, capacity: usize) {
        self.koe_rows_cap = Some(capacity.max(1));
    }

    /// The KoE* row-cache capacity: the explicit override when set,
    /// otherwise the default budget-derived capacity for this venue.
    pub fn koe_rows_capacity(&self) -> usize {
        self.koe_rows_cap
            .unwrap_or_else(|| indoor_index::LazyDoorRows::default_capacity(self.space.num_doors()))
    }

    /// KoE* row-cache counters (capacity, resident rows, hits, misses,
    /// evictions). Reports an all-zero snapshot with the configured capacity
    /// before the first KoE* query creates the cache.
    pub fn koe_rows_stats(&self) -> indoor_index::RowCacheStats {
        match self.precomputed.get() {
            Some(p) => p.cache_stats(),
            None => indoor_index::RowCacheStats {
                capacity: self.koe_rows_capacity(),
                resident: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            },
        }
    }

    /// The venue's space model.
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// The venue's keyword directory.
    pub fn directory(&self) -> &KeywordDirectory {
        &self.directory
    }

    /// The engine's index mode.
    pub fn index_mode(&self) -> IndexMode {
        if self.index.is_some() {
            IndexMode::Accelerated
        } else {
            IndexMode::Scan
        }
    }

    /// The venue index, when the engine runs accelerated.
    pub fn index(&self) -> Option<&VenueIndex> {
        self.index.as_deref()
    }

    /// Index observability snapshot, when the engine runs accelerated.
    pub fn index_stats(&self) -> Option<IndexStats> {
        self.index.as_deref().map(|index| IndexStats {
            build_micros: index.build_micros(),
            estimated_bytes: index.estimated_bytes(),
            loaded_from_disk: index.loaded_from_disk(),
            counters: index.counters().snapshot(),
        })
    }

    /// Forces the KoE* row cache to materialise every door row now
    /// (otherwise rows materialise as KoE* queries touch them) and returns
    /// its memory footprint in bytes.
    pub fn prepare_precomputed_paths(&self) -> usize {
        self.precomputed_paths().warm()
    }

    /// Number of KoE* distance rows materialised so far (0 before any KoE*
    /// query touches the cache). The row cache is lazy, so this stays
    /// proportional to the doors actually visited unless the whole matrix is
    /// warmed with [`IkrqEngine::prepare_precomputed_paths`].
    pub fn precomputed_rows(&self) -> usize {
        self.precomputed.get().map_or(0, |p| p.materialized_rows())
    }

    /// Estimated heap footprint of the KoE* row cache in bytes.
    pub fn precomputed_bytes(&self) -> usize {
        self.precomputed.get().map_or(0, |p| p.estimated_bytes())
    }

    fn precomputed_paths(&self) -> Arc<PrecomputedPaths> {
        Arc::clone(self.precomputed.get_or_init(|| {
            let space = Arc::clone(&self.space);
            Arc::new(match self.koe_rows_cap {
                Some(cap) => PrecomputedPaths::with_capacity(space, cap),
                None => PrecomputedPaths::new(space),
            })
        }))
    }

    /// Answers a query under per-request [`ExecOptions`] (variant, metrics
    /// detail, expansion budget). This is the engine-level entry point the
    /// service layer uses; multi-venue callers should go through
    /// [`crate::IkrqService`].
    pub fn execute(&self, query: &IkrqQuery, options: &ExecOptions) -> Result<SearchOutcome> {
        options.validate()?;
        let config = options.effective_variant();
        let ctx = SearchContext::prepare_with_index(
            &self.space,
            &self.directory,
            self.index.as_deref(),
            query,
        )?;
        if let Some(index) = self.index.as_deref() {
            index
                .counters()
                .queries_accelerated
                .fetch_add(1, Ordering::Relaxed);
        }
        let precomputed = config
            .use_precomputed_paths
            .then(|| self.precomputed_paths());
        let search = Search::new(&ctx, config, precomputed.as_deref());
        Ok(search.run())
    }

    /// Runs every variant of Table III on the same query, in the paper's
    /// order, returning one outcome per variant.
    pub fn search_all_variants(&self, query: &IkrqQuery) -> Result<Vec<SearchOutcome>> {
        VariantConfig::all_variants()
            .into_iter()
            .map(|config| self.execute(query, &ExecOptions::with_variant(config)))
            .collect()
    }
}
