//! The [`IkrqEngine`] facade: owns a venue (space + keyword directory) and
//! answers IKRQ queries with any algorithm variant.

use crate::context::SearchContext;
use crate::framework::Search;
use crate::precompute::PrecomputedPaths;
use crate::query::IkrqQuery;
use crate::request::ExecOptions;
use crate::results::SearchOutcome;
use crate::variants::VariantConfig;
use crate::Result;
use indoor_keywords::KeywordDirectory;
use indoor_space::IndoorSpace;
use std::sync::{Arc, OnceLock};

/// The query engine for one venue.
///
/// The engine owns the immutable space model and keyword directory and caches
/// the all-pairs precomputation needed by the KoE* variant (built lazily on
/// first use, shared across queries). The cache is a [`OnceLock`], so once
/// built, concurrent queries read it without any lock traffic.
#[derive(Debug)]
pub struct IkrqEngine {
    space: IndoorSpace,
    directory: KeywordDirectory,
    precomputed: OnceLock<Arc<PrecomputedPaths>>,
}

impl IkrqEngine {
    /// Creates an engine for a venue.
    pub fn new(space: IndoorSpace, directory: KeywordDirectory) -> Self {
        IkrqEngine {
            space,
            directory,
            precomputed: OnceLock::new(),
        }
    }

    /// The venue's space model.
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// The venue's keyword directory.
    pub fn directory(&self) -> &KeywordDirectory {
        &self.directory
    }

    /// Forces the KoE* all-pairs precomputation now (otherwise it happens on
    /// the first KoE* query) and returns its memory footprint in bytes.
    pub fn prepare_precomputed_paths(&self) -> usize {
        self.precomputed_paths().estimated_bytes()
    }

    fn precomputed_paths(&self) -> Arc<PrecomputedPaths> {
        Arc::clone(
            self.precomputed
                .get_or_init(|| Arc::new(PrecomputedPaths::build(&self.space))),
        )
    }

    /// Answers a query under per-request [`ExecOptions`] (variant, metrics
    /// detail, expansion budget). This is the engine-level entry point the
    /// service layer uses; multi-venue callers should go through
    /// [`crate::IkrqService`].
    pub fn execute(&self, query: &IkrqQuery, options: &ExecOptions) -> Result<SearchOutcome> {
        options.validate()?;
        let config = options.effective_variant();
        let ctx = SearchContext::prepare(&self.space, &self.directory, query)?;
        let precomputed = config
            .use_precomputed_paths
            .then(|| self.precomputed_paths());
        let search = Search::new(&ctx, config, precomputed.as_deref());
        Ok(search.run())
    }

    /// Runs every variant of Table III on the same query, in the paper's
    /// order, returning one outcome per variant.
    pub fn search_all_variants(&self, query: &IkrqQuery) -> Result<Vec<SearchOutcome>> {
        VariantConfig::all_variants()
            .into_iter()
            .map(|config| self.execute(query, &ExecOptions::with_variant(config)))
            .collect()
    }
}
