//! Error type of the IKRQ engine.

use std::fmt;

/// Errors produced while validating or executing an IKRQ.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Space-model error bubbled up from `indoor-space`.
    Space(indoor_space::SpaceError),
    /// Keyword error bubbled up from `indoor-keywords`.
    Keyword(indoor_keywords::KeywordError),
    /// `k` must be at least 1.
    InvalidK(usize),
    /// The distance constraint must be positive and finite.
    InvalidDelta(f64),
    /// The trade-off parameter `α` must lie in `[0, 1]`.
    InvalidAlpha(f64),
    /// The similarity threshold `τ` must lie in `[0, 1]`.
    InvalidTau(f64),
    /// The start or terminal point lies outside the venue.
    PointOutsideVenue(&'static str),
    /// The distance constraint is smaller than the lower-bound distance from
    /// the start to the terminal point, so no route can qualify.
    UnsatisfiableConstraint {
        /// The constraint `∆`.
        delta: f64,
        /// The lower-bound s-to-t distance.
        lower_bound: f64,
    },
    /// A parameter of one of the optional extensions (soft distance
    /// constraint, popularity re-ranking) is out of range.
    InvalidExtensionParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A service-level request envelope is malformed (missing field, empty
    /// venue id, zero budget, duplicate registration, ...).
    InvalidRequest(String),
    /// A request addressed a venue id that is not registered with the
    /// service.
    UnknownVenue(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Space(e) => write!(f, "space error: {e}"),
            EngineError::Keyword(e) => write!(f, "keyword error: {e}"),
            EngineError::InvalidK(k) => write!(f, "k must be >= 1, got {k}"),
            EngineError::InvalidDelta(d) => {
                write!(f, "distance constraint must be positive, got {d}")
            }
            EngineError::InvalidAlpha(a) => write!(f, "alpha must be in [0,1], got {a}"),
            EngineError::InvalidTau(t) => write!(f, "tau must be in [0,1], got {t}"),
            EngineError::PointOutsideVenue(which) => {
                write!(f, "{which} point lies outside every partition")
            }
            EngineError::UnsatisfiableConstraint { delta, lower_bound } => write!(
                f,
                "distance constraint {delta} is below the s-to-t lower bound {lower_bound}"
            ),
            EngineError::InvalidExtensionParameter { name, value } => {
                write!(f, "extension parameter {name} is out of range: {value}")
            }
            EngineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            EngineError::UnknownVenue(id) => write!(f, "unknown venue `{id}`"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Space(e) => Some(e),
            EngineError::Keyword(e) => Some(e),
            _ => None,
        }
    }
}

impl From<indoor_space::SpaceError> for EngineError {
    fn from(e: indoor_space::SpaceError) -> Self {
        EngineError::Space(e)
    }
}

impl From<indoor_keywords::KeywordError> for EngineError {
    fn from(e: indoor_keywords::KeywordError) -> Self {
        EngineError::Keyword(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let cases = vec![
            EngineError::InvalidK(0),
            EngineError::InvalidDelta(-1.0),
            EngineError::InvalidAlpha(2.0),
            EngineError::InvalidTau(-0.5),
            EngineError::PointOutsideVenue("start"),
            EngineError::UnsatisfiableConstraint {
                delta: 10.0,
                lower_bound: 20.0,
            },
            EngineError::InvalidRequest("missing start point".into()),
            EngineError::UnknownVenue("ghost".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
            assert!(std::error::Error::source(&c).is_none());
        }
        let e: EngineError = indoor_space::SpaceError::Unreachable.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: EngineError = indoor_keywords::KeywordError::EmptyQuery.into();
        assert!(e.to_string().contains("keyword"));
    }
}
