//! Multi-venue query serving: the [`VenueRegistry`] and the [`IkrqService`].
//!
//! The service hosts many named venues (each an [`Arc<IkrqEngine>`] whose
//! KoE* precompute is shared and lock-free after first build) and answers
//! [`SearchRequest`] envelopes one at a time ([`IkrqService::search`]) or as
//! a parallel batch ([`IkrqService::search_batch`]). Batch execution fans
//! requests out over scoped threads and returns responses in request order,
//! so a batch is observationally identical to a sequential loop — just
//! faster on multi-core hosts.

use crate::engine::IkrqEngine;
use crate::error::EngineError;
use crate::request::{
    MetricsDetail, ResponseTiming, SearchRequest, SearchResponse, VenueSummary, API_VERSION,
};
use crate::Result;
use indoor_keywords::KeywordDirectory;
use indoor_space::IndoorSpace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A concurrent map from venue ids to engines.
///
/// Registration is expected at startup / topology changes; lookups are the
/// hot path and only take the read lock briefly to clone an `Arc`.
///
/// The registry also keeps a monotonically increasing **epoch** that is
/// bumped by every successful [`VenueRegistry::register`] and
/// [`VenueRegistry::remove`]. Response caches embed the epoch in their keys
/// (see [`crate::SearchRequest::cache_key`]), so any topology change
/// instantly orphans every cached response without a purge pass.
#[derive(Debug, Default)]
pub struct VenueRegistry {
    venues: RwLock<BTreeMap<String, Arc<IkrqEngine>>>,
    epoch: AtomicU64,
}

impl VenueRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        VenueRegistry::default()
    }

    /// Registers an engine under an id. Rejects empty ids and duplicates.
    pub fn register(&self, id: impl Into<String>, engine: Arc<IkrqEngine>) -> Result<()> {
        let id = id.into();
        if id.trim().is_empty() {
            return Err(EngineError::InvalidRequest(
                "venue id must not be empty".into(),
            ));
        }
        let mut venues = self.venues.write().expect("registry lock");
        if venues.contains_key(&id) {
            return Err(EngineError::InvalidRequest(format!(
                "venue `{id}` is already registered"
            )));
        }
        venues.insert(id, engine);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Atomically swaps the engine under an already-registered id — the hot
    /// venue reload primitive. Unlike a `remove` + `register` pair there is
    /// no window where the venue is unregistered, so concurrent searches
    /// never observe a transient `unknown_venue`. The epoch is bumped once,
    /// orphaning every cached response keyed on the old topology. Returns
    /// the replaced engine; errors if the id was never registered (reload
    /// does not create venues).
    pub fn replace(&self, id: &str, engine: Arc<IkrqEngine>) -> Result<Arc<IkrqEngine>> {
        let mut venues = self.venues.write().expect("registry lock");
        let Some(slot) = venues.get_mut(id) else {
            return Err(EngineError::UnknownVenue(id.to_string()));
        };
        let previous = std::mem::replace(slot, engine);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(previous)
    }

    /// Removes a venue, returning its engine if it was registered.
    pub fn remove(&self, id: &str) -> Option<Arc<IkrqEngine>> {
        let removed = self.venues.write().expect("registry lock").remove(id);
        if removed.is_some() {
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        removed
    }

    /// The current topology epoch: starts at 0 and increases on every
    /// successful registration or removal.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The engine hosting `id`, if registered.
    pub fn get(&self, id: &str) -> Option<Arc<IkrqEngine>> {
        self.venues.read().expect("registry lock").get(id).cloned()
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.venues
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered venues.
    pub fn len(&self) -> usize {
        self.venues.read().expect("registry lock").len()
    }

    /// Whether no venue is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The multi-venue query service: the primary entry point of `ikrq-core`.
///
/// ```
/// use ikrq_core::{IkrqService, SearchRequest};
/// use indoor_keywords::QueryKeywords;
///
/// let example = indoor_data::paper_example_venue();
/// let service = IkrqService::new();
/// service
///     .register_venue("fig1", example.venue.space.clone(), example.venue.directory.clone())
///     .unwrap();
/// let request = SearchRequest::builder("fig1")
///     .from(example.ps)
///     .to(example.pt)
///     .delta(400.0)
///     .keywords(QueryKeywords::new(["latte", "apple"]).unwrap())
///     .k(3)
///     .build()
///     .unwrap();
/// let response = service.search(&request).unwrap();
/// assert!(!response.results.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct IkrqService {
    registry: VenueRegistry,
}

impl IkrqService {
    /// A service with an empty registry.
    pub fn new() -> Self {
        IkrqService::default()
    }

    /// A service hosting the venues of an existing registry.
    pub fn with_registry(registry: VenueRegistry) -> Self {
        IkrqService { registry }
    }

    /// The venue registry.
    pub fn registry(&self) -> &VenueRegistry {
        &self.registry
    }

    /// Builds an engine for a venue and registers it. Returns the engine so
    /// callers can e.g. force the KoE* precompute up front.
    pub fn register_venue(
        &self,
        id: impl Into<String>,
        space: IndoorSpace,
        directory: KeywordDirectory,
    ) -> Result<Arc<IkrqEngine>> {
        let engine = Arc::new(IkrqEngine::new(space, directory));
        self.registry.register(id, Arc::clone(&engine))?;
        Ok(engine)
    }

    /// Registers an existing engine under an id.
    pub fn register_engine(&self, id: impl Into<String>, engine: Arc<IkrqEngine>) -> Result<()> {
        self.registry.register(id, engine)
    }

    /// The engine hosting a venue id.
    pub fn venue(&self, id: &str) -> Result<Arc<IkrqEngine>> {
        self.registry
            .get(id)
            .ok_or_else(|| EngineError::UnknownVenue(id.to_string()))
    }

    /// Ids of all hosted venues, sorted.
    pub fn venue_ids(&self) -> Vec<String> {
        self.registry.ids()
    }

    /// Answers one request.
    pub fn search(&self, request: &SearchRequest) -> Result<SearchResponse> {
        let started = Instant::now();
        request.validate()?;
        let engine = self.venue(&request.venue)?;
        let outcome = engine.execute(&request.query, &request.options)?;
        let search_ms = outcome.metrics.elapsed_millis();
        let metrics = match request.options.metrics {
            MetricsDetail::None => None,
            MetricsDetail::Timing => {
                let mut headline = crate::metrics::SearchMetrics::new();
                headline.elapsed = outcome.metrics.elapsed;
                headline.peak_memory_bytes = outcome.metrics.peak_memory_bytes;
                Some(headline)
            }
            MetricsDetail::Full => Some(outcome.metrics),
        };
        Ok(SearchResponse {
            api_version: API_VERSION,
            venue: VenueSummary {
                id: request.venue.clone(),
                partitions: engine.space().num_partitions(),
                doors: engine.space().num_doors(),
            },
            variant: outcome.label,
            results: outcome.results,
            metrics,
            timing: ResponseTiming {
                total_ms: started.elapsed().as_secs_f64() * 1e3,
                search_ms,
            },
        })
    }

    /// Answers a batch of requests in parallel, returning one result per
    /// request **in request order** regardless of completion order. This is
    /// the service's throughput primitive: requests fan out over scoped
    /// worker threads (one per available core, capped by the batch size) and
    /// each worker pulls the next unclaimed request.
    pub fn search_batch(&self, requests: &[SearchRequest]) -> Vec<Result<SearchResponse>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(requests.len());
        if workers <= 1 {
            return requests
                .iter()
                .map(|request| self.search(request))
                .collect();
        }

        let next = std::sync::atomic::AtomicUsize::new(0);
        let completed: Mutex<Vec<(usize, Result<SearchResponse>)>> =
            Mutex::new(Vec::with_capacity(requests.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= requests.len() {
                        break;
                    }
                    let outcome = self.search(&requests[index]);
                    completed.lock().expect("batch lock").push((index, outcome));
                });
            }
        });

        let mut completed = completed.into_inner().expect("batch lock");
        completed.sort_by_key(|(index, _)| *index);
        debug_assert_eq!(completed.len(), requests.len());
        completed.into_iter().map(|(_, outcome)| outcome).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_rejects_empty_and_duplicate_ids() {
        let registry = VenueRegistry::new();
        assert!(registry.is_empty());
        assert_eq!(registry.epoch(), 0);
        let example = indoor_data::paper_example_venue();
        let engine = Arc::new(IkrqEngine::new(
            example.venue.space.clone(),
            example.venue.directory.clone(),
        ));
        assert!(matches!(
            registry.register("", Arc::clone(&engine)),
            Err(EngineError::InvalidRequest(_))
        ));
        assert_eq!(registry.epoch(), 0, "rejected registrations do not bump");
        registry.register("a", Arc::clone(&engine)).unwrap();
        assert_eq!(registry.epoch(), 1);
        assert!(matches!(
            registry.register("a", Arc::clone(&engine)),
            Err(EngineError::InvalidRequest(_))
        ));
        assert_eq!(registry.epoch(), 1);
        assert_eq!(registry.ids(), vec!["a".to_string()]);
        assert!(registry.get("a").is_some());
        assert!(registry.get("b").is_none());
        assert!(registry.remove("a").is_some());
        assert!(registry.is_empty());
        assert_eq!(registry.epoch(), 2);
        assert!(registry.remove("a").is_none());
        assert_eq!(registry.epoch(), 2, "no-op removals do not bump");
    }

    #[test]
    fn replace_swaps_in_place_and_bumps_epoch_once() {
        let registry = VenueRegistry::new();
        let example = indoor_data::paper_example_venue();
        let engine = || {
            Arc::new(IkrqEngine::new(
                example.venue.space.clone(),
                example.venue.directory.clone(),
            ))
        };
        assert!(matches!(
            registry.replace("a", engine()),
            Err(EngineError::UnknownVenue(id)) if id == "a"
        ));
        assert_eq!(registry.epoch(), 0, "failed replacements do not bump");
        let first = engine();
        registry.register("a", Arc::clone(&first)).unwrap();
        assert_eq!(registry.epoch(), 1);
        let replaced = registry.replace("a", engine()).unwrap();
        assert!(Arc::ptr_eq(&replaced, &first), "returns the old engine");
        assert_eq!(registry.epoch(), 2, "one bump, not remove+register's two");
        assert_eq!(registry.len(), 1, "no unregistered window side effects");
    }

    #[test]
    fn unknown_venues_are_reported() {
        let service = IkrqService::new();
        let example = indoor_data::paper_example_venue();
        let request = SearchRequest::builder("ghost")
            .from(example.ps)
            .to(example.pt)
            .delta(400.0)
            .keywords(indoor_keywords::QueryKeywords::new(["latte"]).unwrap())
            .build()
            .unwrap();
        assert!(matches!(
            service.search(&request),
            Err(EngineError::UnknownVenue(id)) if id == "ghost"
        ));
    }
}
